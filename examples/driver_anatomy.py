#!/usr/bin/env python
"""Anatomy of a run: narrate the driver's work from its own trace.

Companion to ``docs/driver_pipeline.md``: runs a small kernel with full
instrumentation and reconstructs, from the recorded event streams, the
story the paper tells in Sections III-V - batches drained, bins
serviced, pages prefetched, replays issued, blocks evicted, and where
every simulated microsecond went.

Run:  python examples/driver_anatomy.py
"""

import numpy as np

from repro.experiments.runner import ExperimentSetup, simulate
from repro.trace.analysis import (
    bin_size_distribution,
    prefetch_ratio,
    refault_distances,
    vablock_residency_lifetimes,
)
from repro.units import MiB, ns_to_us
from repro.workloads.synthetic import RandomAccess


def main() -> None:
    # an oversubscribed random kernel: every subsystem fires
    setup = ExperimentSetup().with_gpu(memory_bytes=32 * MiB)
    data_bytes = int(32 * MiB * 1.25)
    result = simulate(RandomAccess(data_bytes), setup, record_trace=True)
    trace = result.trace

    print("=" * 68)
    print(f"random page-touch, {data_bytes // MiB} MiB data on a 32 MiB GPU")
    print("=" * 68)

    c = result.counters
    print("\n-- fault stream (Section III-C) --")
    print(f"  enqueued by the GPU      : {c['faults.enqueued']:>8}")
    print(f"  coalesced in uTLBs       : {c['faults.coalesced_utlb']:>8}")
    print(f"  read by the driver       : {c['faults.read']:>8}")
    print(f"  filtered as duplicates   : {c['faults.duplicate']:>8}")
    print(f"  serviced                 : {c['faults.serviced']:>8}")
    print(f"  batches / replays        : {c['batches.count']:>5} / {c['replays.issued']}")

    print("\n-- servicing (Sections III-D, IV) --")
    bins = bin_size_distribution(trace)
    print(f"  VABlock bins serviced    : {bins.size:>8}")
    print(f"  demand pages per bin     : mean {bins.mean():.1f}, max {bins.max()}")
    print(f"  prefetched share of H2D  : {prefetch_ratio(trace):>7.1%}")
    print(f"  PMA calls (cached after) : {c['pma.calls']:>8}")

    print("\n-- oversubscription (Section V) --")
    print(f"  evictions                : {c['evictions.count']:>8}")
    print(f"  pages dropped / written  : {c['evictions.pages_dropped']:>8}"
          f" / {c['evictions.pages_dirty']}")
    lifetimes = vablock_residency_lifetimes(trace)
    if lifetimes.size:
        print(f"  block residency lifetime : median {ns_to_us(np.median(lifetimes)):.0f} us")
    distances = refault_distances(trace)
    soon = (distances >= 0) & (distances < 2000)
    if distances.size:
        print(f"  evict-then-refault <2000 : {soon.mean():>7.1%} of evictions")

    print("\n-- where the time went --")
    print(result.breakdown().render("  driver categories (Fig. 3)"))
    print()
    print(result.service_breakdown().render("  service sub-costs (Fig. 4)"))
    print(
        f"\n  data moved H2D/D2H: {result.dma.h2d_bytes >> 20} / "
        f"{result.dma.d2h_bytes >> 20} MiB "
        f"({result.dma.total_bytes / data_bytes:.1f}x the data - the "
        "Section V amplification)"
    )


if __name__ == "__main__":
    main()
