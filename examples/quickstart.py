#!/usr/bin/env python
"""Quickstart: simulate a UVM kernel and read the paper's instrumentation.

This is the five-minute tour of the library:

1. pick a workload (here: the paper's "regular" page-touch kernel),
2. configure the platform (GPU memory, driver policy knobs),
3. run the simulation,
4. read the results the way the paper does - total time, the
   preprocess/service/replay-policy breakdown (Fig. 3), the service
   sub-breakdown (Fig. 4), and the fault/migration counters (Tables I-II).

Run:  python examples/quickstart.py
"""

from repro import ExperimentSetup, RegularAccess, simulate
from repro.units import MiB, human_size


def main() -> None:
    # -- 1. a workload: each GPU thread touches one page of a managed buffer.
    workload = RegularAccess(16 * MiB)

    # -- 2. the platform: a scaled Titan V (64 MiB so runs are instant;
    #       pass memory_bytes=12 << 30 for the full card) with the stock
    #       driver defaults: 256-fault batches, batch-flush replay policy,
    #       tree prefetcher at density threshold 51.
    setup = ExperimentSetup().with_gpu(memory_bytes=64 * MiB)

    # -- 3. run.
    result = simulate(workload, setup)

    # -- 4. read the instrumentation.
    print(f"workload: {workload.describe()}")
    print(f"GPU memory: {human_size(setup.gpu.memory_bytes)}")
    print(f"total simulated time: {result.total_time_us:,.1f} us\n")

    print(result.breakdown().render("driver time by category (the paper's Fig. 3 split)"))
    print()
    print(result.service_breakdown().render("fault service sub-costs (Fig. 4 split)"))
    print()

    print("key counters:")
    for key in (
        "faults.read",
        "faults.serviced",
        "faults.duplicate",
        "pages.prefetch_h2d",
        "replays.issued",
        "evictions.count",
    ):
        print(f"  {key:24s} {result.counters[key]}")

    # How effective was the prefetcher?  Re-run with it disabled and
    # compute Table I's fault-reduction metric.
    no_pf = simulate(workload, setup.with_driver(prefetch_enabled=False))
    reduction = 100.0 * (no_pf.faults_read - result.faults_read) / no_pf.faults_read
    print(
        f"\nfault reduction from prefetching: {no_pf.faults_read} -> "
        f"{result.faults_read} ({reduction:.1f}% - Table I's coverage metric)"
    )
    speedup = no_pf.total_time_ns / result.total_time_ns
    print(f"prefetching speedup: {speedup:.2f}x")


if __name__ == "__main__":
    main()
