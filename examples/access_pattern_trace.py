#!/usr/bin/env python
"""Tracing page-level access patterns (the paper's Fig. 7 methodology).

With prefetching disabled, every first touch of a page faults, so the
driver's fault log *is* the application's page-granularity access
pattern.  This example traces three contrasting workloads and renders
their (fault occurrence, page index) scatters as ASCII plots:

* ``stream`` - the triad's three-range braid (page dependencies force a
  strict fault ordering),
* ``sgemm`` - banded, reuse-heavy (the reuse is invisible: resident
  pages never re-fault),
* ``hpgmg`` - multigrid levels with random-like coarse segments.

Run:  python examples/access_pattern_trace.py
"""

from repro.experiments.fig7 import run_fig7
from repro.experiments.runner import ExperimentSetup
from repro.units import MiB


def main() -> None:
    setup = ExperimentSetup().with_gpu(memory_bytes=128 * MiB)
    result = run_fig7(setup, workloads=("stream", "sgemm", "hpgmg"), data_fraction=0.25)
    for panel in result.panels:
        print(panel.render(width=76, height=16))
        n = panel.pattern.n_faults
        ranges = ", ".join(panel.pattern.range_names)
        print(f"  {n} unique faults; allocations: {ranges}")
        print()
    print(
        "Horizontal dashes mark cudaMallocManaged() boundaries (the black\n"
        "lines in the paper's figure); each '*' is one serviced fault."
    )


if __name__ == "__main__":
    main()
