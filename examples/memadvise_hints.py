#!/usr/bin/env python
"""UVM's three access behaviours, head to head (paper Section III-A).

The paper studies paged migration; UVM also offers remote mapping
(zero-copy) and read-only duplication via ``cudaMemAdvise`` hints.  This
example shows when each wins:

1. sparse single-touch over a buffer 3x the GPU - migration wastes 2 MB
   allocations on 4 KB touches and thrashes; zero-copy just reads,
2. dense in-core streaming - migration amortizes; zero-copy pays the
   interconnect per access,
3. a GPU-compute / host-inspect / GPU-reuse loop - duplication makes
   the host reads free instead of ping-ponging pages.

Run:  python examples/memadvise_hints.py
"""

import numpy as np

from repro.core.driver import UvmDriver
from repro.gpu.device import GpuDeviceConfig
from repro.gpu.warp import WarpStream
from repro.mem.address_space import AddressSpace
from repro.mem.advise import MemAdvise
from repro.sim.rng import SimRng
from repro.units import MiB
from repro.workloads.base import HostAccess, KernelPhase


def run(advise, pages, data_mib, gpu_mib=32, host_reads=False, label=""):
    space = AddressSpace()
    buf = space.malloc_managed(data_mib * MiB, name="data")
    if advise is not None:
        space.mem_advise("data", advise)
    phases = [
        KernelPhase(
            streams=[
                WarpStream(i, np.array([int(p)], dtype=np.int64))
                for i, p in enumerate(pages)
            ]
        )
    ]
    if host_reads:
        phases.append(
            KernelPhase(
                streams=[
                    WarpStream(10_000 + i, np.array([int(p)], dtype=np.int64))
                    for i, p in enumerate(pages)
                ],
                host_before=HostAccess(pages=buf.pages(), writes=False),
            )
        )
    driver = UvmDriver(
        space=space,
        phases=phases,
        gpu_config=GpuDeviceConfig(memory_bytes=gpu_mib * MiB),
        rng=SimRng(9),
    )
    result = driver.run()
    print(
        f"  {label:12s} {result.total_time_ns / 1000.0:10.1f} us   "
        f"moved={result.dma.total_bytes >> 20:4d} MiB  "
        f"evictions={result.evictions:4d}  host faults={result.counters['host.faults']:4d}"
    )
    return result


def main() -> None:
    rng = np.random.default_rng(7)

    print("1. sparse single-touch, buffer = 3x GPU memory")
    sparse = np.arange(0, 96 * 256, 512) + rng.integers(0, 512, size=48)
    run(None, sparse, 96, label="migrate")
    run(MemAdvise.PINNED_HOST, sparse, 96, label="pinned host")
    print("   -> zero-copy avoids 2 MB allocations per 4 KB touch entirely.\n")

    print("2. dense in-core streaming")
    dense = np.arange(16 * 256)
    run(None, dense, 16, label="migrate")
    run(MemAdvise.PINNED_HOST, dense, 16, label="pinned host")
    print("   -> migration amortizes; per-access interconnect trips do not.\n")

    print("3. GPU compute, host inspects everything, GPU re-reads")
    run(None, dense, 16, host_reads=True, label="migrate")
    run(MemAdvise.READ_MOSTLY, dense, 16, host_reads=True, label="read mostly")
    print(
        "   -> duplication keeps the host copy valid: no CPU faults, no\n"
        "      migration ping-pong, and the second kernel's data is warm."
    )


if __name__ == "__main__":
    main()
