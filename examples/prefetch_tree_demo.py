#!/usr/bin/env python
"""The density-tree prefetcher, step by step (the paper's Fig. 6).

Walks the two-stage prefetcher on a single VABlock:

* stage one upgrades each faulted 4 KB page to its 64 KB big page,
* stage two grows the largest enclosing subtree whose access density
  beats the threshold (default 51%), with chosen regions "set to max"
  so later faults cascade.

The demo shows (a) the paper's small 8-leaf illustration, (b) a
cascade on a full 512-leaf VABlock, and (c) what the 1% "aggressive"
threshold does - fetch the entire block off a single fault, the setting
Section IV-C says rivals explicit transfer for undersubscribed runs.

Run:  python examples/prefetch_tree_demo.py
"""

import numpy as np

from repro.core.prefetch import TreePrefetcher
from repro.experiments.fig6 import run_fig6


def small_example() -> None:
    """The Fig. 6-style 8-leaf tree (big pages disabled via size 1)."""
    print("=" * 70)
    print("8-leaf illustration, threshold 51% (cf. paper Fig. 6)")
    print("=" * 70)
    pf = TreePrefetcher(threshold=51, pages_per_vablock=8, pages_per_big_page=1)
    # five leaves resident/faulted in the right places: the new fault's
    # chain passes at every level and the whole block is fetched.
    resident = np.array([1, 1, 1, 1, 0, 1, 1, 0], dtype=bool)
    fault = np.array([4])
    for line in pf.describe_tree(resident, fault):
        print(" ", line)
    decision = pf.compute(resident, fault)
    print(f"  fault at leaf 4 -> region of {decision.max_region} leaves, "
          f"prefetching leaves {decision.prefetch_offsets.tolist()}")
    print()


def full_block_cascade() -> None:
    print("=" * 70)
    print("512-leaf VABlock cascade, threshold 51%")
    print("=" * 70)
    result = run_fig6()
    print(result.render())
    print()


def aggressive_threshold() -> None:
    print("=" * 70)
    print("threshold 1% - a single fault fetches the whole VABlock")
    print("=" * 70)
    pf = TreePrefetcher(threshold=1)
    resident = np.zeros(512, dtype=bool)
    decision = pf.compute(resident, np.array([137]))
    print(f"  one fault at leaf 137: region={decision.max_region} leaves, "
          f"prefetched={decision.count} pages "
          f"(stage one: {decision.upgraded}, tree: {decision.tree_added})")
    print("  -> the Section IV-C setting whose performance 'rivals the")
    print("     performance of an explicit direct transfer'.")


def main() -> None:
    small_example()
    full_block_cascade()
    aggressive_threshold()


if __name__ == "__main__":
    main()
