#!/usr/bin/env python
"""The four fault-replay policies head to head (paper Section III-E).

Runs the same kernel under Block, Batch, Batch-flush (the driver
default), and Once, and prints the trade-off the paper describes: how
often replays are issued, how many duplicate faults the driver must
filter, and where the time goes.

Run:  python examples/replay_policy_comparison.py
"""

from repro import ExperimentSetup, RegularAccess, simulate
from repro.core.replay import ReplayPolicyKind
from repro.trace.export import render_series
from repro.units import MiB


def main() -> None:
    setup = ExperimentSetup().with_gpu(memory_bytes=128 * MiB)
    workload_bytes = 32 * MiB
    rows = []
    for policy in ReplayPolicyKind:
        cfg = setup.with_driver(
            replay_policy=policy,
            prefetch_enabled=False,  # isolate the policy cost, as Fig. 3/5 do
        )
        run = simulate(RegularAccess(workload_bytes), cfg)
        rows.append(
            (
                policy.value,
                run.counters["replays.issued"],
                run.counters["faults.read"],
                run.counters["faults.duplicate"],
                run.timer.total_ns("preprocess") / 1000.0,
                run.timer.total_ns("replay_policy") / 1000.0,
                run.total_time_us,
            )
        )
    print(
        render_series(
            rows,
            headers=(
                "policy",
                "replays",
                "faults read",
                "duplicates",
                "preprocess(us)",
                "replay(us)",
                "total(us)",
            ),
            title=f"replay policies on regular {workload_bytes // MiB} MiB (prefetch off)",
        )
    )
    print(
        "\nThe paper's trade-off, reproduced: Block replays earliest and most\n"
        "often; Batch drops the flush cost but reads duplicate faults instead\n"
        "(larger pre-processing, Fig. 5); Batch-flush pays queue management to\n"
        "keep the buffer clean (Fig. 3); Once stalls warps the longest."
    )


if __name__ == "__main__":
    main()
