#!/usr/bin/env python
"""Oversubscription study: the paper's Section V in one script.

Sweeps SGEMM across the GPU-memory boundary and reports the quantities
behind Fig. 10 and Table II (compute rate, evictions, pages evicted per
fault), then demonstrates two of the paper's Section VI-B improvement
paths on an oversubscribed irregular workload:

* flexible allocation granularity (smaller VABlocks tame the random
  access transfer blow-up),
* access-counter-aware eviction (fixes the fault-only LRU's
  evict-the-hottest pathology on SGEMM).

Run:  python examples/oversubscription_study.py   (takes ~a minute)
"""

from repro import SgemmWorkload, simulate
from repro.experiments.common import gemm_wave_setup
from repro.experiments.fig10 import run_fig10
from repro.ext.flexible_granularity import run_granularity_ablation


def gemm_sweep() -> None:
    print("=" * 72)
    print("SGEMM across the memory boundary (Fig. 10 / Table II quantities)")
    print("=" * 72)
    result = run_fig10(ratios=(0.6, 0.95, 1.2, 1.5, 1.9))
    print(result.render())
    peak = result.peak_row
    print(
        f"\ncompute rate peaks at n={peak.n} "
        f"({peak.oversubscription:.0%} of GPU memory) and degrades beyond -"
        "\nthe paper's >120% cliff, driven by evict-before-use.\n"
    )


def granularity() -> None:
    print("=" * 72)
    print("Section VI-B: flexible allocation granularity")
    print("=" * 72)
    print(run_granularity_ablation().render())
    print(
        "\nSmaller granules cut the allocated-but-unused waste of 2 MB\n"
        "blocks under irregular access - the paper's hypothesis, quantified.\n"
    )


def access_counter_eviction() -> None:
    print("=" * 72)
    print("Section VI-B: access-counter-aware eviction vs fault-driven LRU")
    print("=" * 72)
    base = gemm_wave_setup()
    counter = base.with_gpu(track_access_counters=True).with_driver(
        eviction_policy="access_counter"
    )
    workload = SgemmWorkload(n=2816)
    for label, setup in (("fault-driven LRU", base), ("access counters", counter)):
        run = simulate(SgemmWorkload(n=workload.n), setup)
        print(
            f"  {label:18s}: {run.total_time_us / 1000:8.1f} ms, "
            f"{run.evictions:5d} evictions, "
            f"{run.pages_evicted:7d} pages evicted"
        )
    print(
        "\nThe counters see *all* accesses, not just faulting ones, so hot\n"
        "fully-resident blocks stop sinking to the LRU tail (Section VI-A's\n"
        "documented pathology)."
    )


def main() -> None:
    gemm_sweep()
    granularity()
    access_counter_eviction()


if __name__ == "__main__":
    main()
