"""Deterministic fault injection (chaos) for the simulator and service.

Four injector families, one seeded plan (see ``docs/robustness.md``):

* **model** - faults inside the simulated UVM runtime (fault-buffer
  overflow, DMA transfer failure, PMA allocation failure), armed via
  zero-cost hook sentinels in the driver pipeline,
* **process** - serve-worker faults (SIGKILL, hang, slow start),
* **storage** - result-store faults (torn JSON, truncated npz, stale
  tmp debris),
* **network** - HTTP-boundary faults between named endpoints (refused
  connects, directed partitions, delayed / torn / truncated responses),
  armed per-process via :func:`install_network_chaos`.

Activated by the ``UVMREPRO_CHAOS`` environment variable (plan file
path or inline JSON).  Every decision is deterministic: attempt-level
choices hash ``(seed, point, job key, attempt)``; in-run model faults
draw from a dedicated :class:`~repro.sim.rng.SimRng` fork; network
schedules run off the owning process's monotonic clock and journal
append count.
"""

from repro.chaos.injector import (
    ChaosAllocationFailure,
    ChaosInjector,
    ChaosTransferError,
    make_injector,
    model_injection,
)
from repro.chaos.network import (
    CALLER_HEADER,
    ChaosPartitionError,
    NetworkInjector,
    PartitionRule,
    endpoint_of_url,
    install_network_chaos,
    local_endpoint,
    network_injector,
    reset_network_chaos,
)
from repro.chaos.plan import (
    ALL_POINTS,
    ENV_VAR,
    FAMILY_MODEL,
    FAMILY_NETWORK,
    FAMILY_PROCESS,
    FAMILY_STORAGE,
    MODEL_BUFFER_OVERFLOW,
    MODEL_DMA_FAIL,
    MODEL_PMA_FAIL,
    MODEL_POINTS,
    NETWORK_CONNECT_REFUSE,
    NETWORK_DELAY,
    NETWORK_DISCONNECT,
    NETWORK_PARTITION,
    NETWORK_POINTS,
    NETWORK_TRUNCATE,
    PROCESS_GATEWAY_KILL,
    PROCESS_HANG,
    PROCESS_KILL,
    PROCESS_SERVICE_KILL,
    PROCESS_SHARD_KILL,
    PROCESS_SLOW_START,
    STORAGE_STALE_TMP,
    STORAGE_TORN_JSON,
    STORAGE_TRUNCATED_NPZ,
    FaultPlan,
    FaultSpec,
    active_plan,
    family_of,
    plan_from_env,
    set_active_plan,
)

__all__ = [
    "ALL_POINTS",
    "CALLER_HEADER",
    "ENV_VAR",
    "FAMILY_MODEL",
    "FAMILY_NETWORK",
    "FAMILY_PROCESS",
    "FAMILY_STORAGE",
    "MODEL_BUFFER_OVERFLOW",
    "MODEL_DMA_FAIL",
    "MODEL_PMA_FAIL",
    "MODEL_POINTS",
    "NETWORK_CONNECT_REFUSE",
    "NETWORK_DELAY",
    "NETWORK_DISCONNECT",
    "NETWORK_PARTITION",
    "NETWORK_POINTS",
    "NETWORK_TRUNCATE",
    "PROCESS_GATEWAY_KILL",
    "PROCESS_HANG",
    "PROCESS_KILL",
    "PROCESS_SERVICE_KILL",
    "PROCESS_SHARD_KILL",
    "PROCESS_SLOW_START",
    "STORAGE_STALE_TMP",
    "STORAGE_TORN_JSON",
    "STORAGE_TRUNCATED_NPZ",
    "ChaosAllocationFailure",
    "ChaosInjector",
    "ChaosPartitionError",
    "ChaosTransferError",
    "FaultPlan",
    "FaultSpec",
    "NetworkInjector",
    "PartitionRule",
    "active_plan",
    "endpoint_of_url",
    "family_of",
    "install_network_chaos",
    "local_endpoint",
    "make_injector",
    "model_injection",
    "network_injector",
    "plan_from_env",
    "reset_network_chaos",
    "set_active_plan",
]
