"""Deterministic fault injection (chaos) for the simulator and service.

Three injector families, one seeded plan (see ``docs/robustness.md``):

* **model** - faults inside the simulated UVM runtime (fault-buffer
  overflow, DMA transfer failure, PMA allocation failure), armed via
  zero-cost hook sentinels in the driver pipeline,
* **process** - serve-worker faults (SIGKILL, hang, slow start),
* **storage** - result-store faults (torn JSON, truncated npz, stale
  tmp debris).

Activated by the ``UVMREPRO_CHAOS`` environment variable (plan file
path or inline JSON).  Every decision is deterministic: attempt-level
choices hash ``(seed, point, job key, attempt)``; in-run model faults
draw from a dedicated :class:`~repro.sim.rng.SimRng` fork.
"""

from repro.chaos.injector import (
    ChaosAllocationFailure,
    ChaosInjector,
    ChaosTransferError,
    make_injector,
    model_injection,
)
from repro.chaos.plan import (
    ALL_POINTS,
    ENV_VAR,
    FAMILY_MODEL,
    FAMILY_PROCESS,
    FAMILY_STORAGE,
    MODEL_BUFFER_OVERFLOW,
    MODEL_DMA_FAIL,
    MODEL_PMA_FAIL,
    MODEL_POINTS,
    PROCESS_GATEWAY_KILL,
    PROCESS_HANG,
    PROCESS_KILL,
    PROCESS_SERVICE_KILL,
    PROCESS_SHARD_KILL,
    PROCESS_SLOW_START,
    STORAGE_STALE_TMP,
    STORAGE_TORN_JSON,
    STORAGE_TRUNCATED_NPZ,
    FaultPlan,
    FaultSpec,
    active_plan,
    family_of,
    plan_from_env,
    set_active_plan,
)

__all__ = [
    "ALL_POINTS",
    "ENV_VAR",
    "FAMILY_MODEL",
    "FAMILY_PROCESS",
    "FAMILY_STORAGE",
    "MODEL_BUFFER_OVERFLOW",
    "MODEL_DMA_FAIL",
    "MODEL_PMA_FAIL",
    "MODEL_POINTS",
    "PROCESS_GATEWAY_KILL",
    "PROCESS_HANG",
    "PROCESS_KILL",
    "PROCESS_SERVICE_KILL",
    "PROCESS_SHARD_KILL",
    "PROCESS_SLOW_START",
    "STORAGE_STALE_TMP",
    "STORAGE_TORN_JSON",
    "STORAGE_TRUNCATED_NPZ",
    "ChaosAllocationFailure",
    "ChaosInjector",
    "ChaosTransferError",
    "FaultPlan",
    "FaultSpec",
    "active_plan",
    "family_of",
    "make_injector",
    "model_injection",
    "plan_from_env",
    "set_active_plan",
]
