"""Model-level fault injector for the simulated UVM runtime.

The injector follows the UVMSAN hook pattern (:mod:`repro.checks.sanitizer`):
:func:`make_injector` returns ``None`` unless model-family chaos is
active, so every call site reduces to one ``is not None`` check and a
fault-free run pays nothing and draws nothing.

When active, the injector is constructed with a dedicated ``chaos``
fork of the run's :class:`~repro.sim.rng.SimRng`, so per-opportunity
probability draws never perturb the workload/scheduler streams and the
injected run is itself bit-deterministic: same plan + same seed =>
faults fire at exactly the same simulated instants.

Model injection is *scoped*, not ambient: a plan in ``UVMREPRO_CHAOS``
only arms the injector inside a :func:`model_injection` block (the
serve worker's probe attempt) or when the plan opts into
``activate="always"``.  That is what preserves the headline guarantee -
degraded attempts are exercised and discarded, and the stored result
always comes from a fault-free run.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.chaos.plan import FAMILY_MODEL, FaultPlan, FaultSpec, active_plan
from repro.errors import ChaosError
from repro.sim.rng import SimRng


class ChaosAllocationFailure(ChaosError):
    """An injected PMA allocation failure (carries the wasted call cost)."""

    def __init__(self, cost_ns: int, message: str) -> None:
        super().__init__(message)
        self.cost_ns = int(cost_ns)


class ChaosTransferError(ChaosError):
    """An injected DMA failure that exhausted the in-driver retry bound."""


class ChaosInjector:
    """Per-run fire bookkeeping for the model-level injection points."""

    __slots__ = ("plan", "fired", "_rng")

    def __init__(self, plan: FaultPlan, rng: SimRng) -> None:
        self.plan = plan
        #: point -> times fired this run (folded into RunResult counters).
        self.fired: dict[str, int] = {}
        self._rng = rng.fork("chaos")

    def fire(self, point: str) -> Optional[FaultSpec]:
        """One injection opportunity at ``point``; spec when it fires.

        Honours the spec's per-run ``max_fires`` budget and, for
        probabilities below 1, draws from the dedicated chaos RNG
        stream (probability 1 consumes no randomness at all).
        """
        spec = self.plan.spec_for(point)
        if spec is None:
            return None
        count = self.fired.get(point, 0)
        if count >= spec.max_fires:
            return None
        if spec.probability < 1.0 and self._rng.uniform() >= spec.probability:
            return None
        self.fired[point] = count + 1
        return spec

    def fired_total(self) -> int:
        return sum(self.fired.values())


# -- activation scope ---------------------------------------------------------

_scoped_plan: Optional[FaultPlan] = None


@contextmanager
def model_injection(plan: FaultPlan) -> Iterator[None]:
    """Arm model-level injection for drivers built inside the block."""
    global _scoped_plan
    previous = _scoped_plan
    _scoped_plan = plan
    try:
        yield
    finally:
        _scoped_plan = previous


def make_injector(rng: SimRng) -> Optional[ChaosInjector]:
    """The driver's constructor hook: an injector, or ``None``.

    Returns an injector only when a plan with model-family faults is
    armed - via :func:`model_injection` (the probe path), or via an
    environment plan that opts into ``"activate": "always"`` in its
    args on any model spec (expert mode for ad-hoc ``uvmrepro run``
    exploration; results then reflect the degraded runtime).
    """
    plan = _scoped_plan
    if plan is None:
        env_plan = active_plan()
        if env_plan is not None and any(
            spec.family == FAMILY_MODEL and spec.args.get("activate") == "always"
            for spec in env_plan.faults
        ):
            plan = env_plan
    if plan is None or not plan.has_family(FAMILY_MODEL):
        return None
    return ChaosInjector(plan, rng)
