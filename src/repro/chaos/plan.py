"""Fault plans: the declarative description of what chaos to inject.

A :class:`FaultPlan` is a seeded list of :class:`FaultSpec` entries, one
per injection point, loaded from the ``UVMREPRO_CHAOS`` environment
variable (a path to a JSON file, or inline JSON).  Every decision the
plan makes is a pure function of ``(plan seed, injection point, scope,
trial)`` - no wall clock, no process state - so a worker process, the
supervisor, and a test can all evaluate the same plan and agree on
exactly which attempt fails where.  Model-level injectors additionally
draw per-opportunity randomness from :class:`repro.sim.rng.SimRng`
(a dedicated ``chaos`` fork of the run's generator tree), keeping the
simulation itself bit-deterministic under injection.

Injection points come in four families (see ``docs/robustness.md``):

* ``model.*``   - faults inside the simulated UVM runtime,
* ``process.*`` - faults of the serve worker processes,
* ``storage.*`` - faults of the on-disk result store,
* ``network.*`` - faults at the HTTP client/server boundary between
  named fleet endpoints (partitions, refused connects, slow or torn
  responses) - see :mod:`repro.chaos.network`.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional

from repro.errors import ConfigurationError

#: the environment switch: a path to a plan JSON file, or inline JSON
#: (starts with "{"); "" / "0" / unset disables chaos entirely.
ENV_VAR = "UVMREPRO_CHAOS"

# -- injection points ---------------------------------------------------------
#: simulated fault-buffer overflow: entries are dropped + a replay storm
#: forces stalled warps to re-raise them.
MODEL_BUFFER_OVERFLOW = "model.fault_buffer_overflow"
#: simulated DMA transfer failure with bounded in-driver retry.
MODEL_DMA_FAIL = "model.dma_transfer_fail"
#: simulated PMA allocation failure -> eviction pressure + retry.
MODEL_PMA_FAIL = "model.pma_alloc_fail"
#: SIGKILL the worker process (args: at="start"|"checkpoint",
#: after_saves=N for the checkpoint variant).
PROCESS_KILL = "process.worker_kill"
#: worker sleeps past its deadline (args: hang_s).
PROCESS_HANG = "process.worker_hang"
#: worker sleeps before executing (args: delay_s); non-fatal.
PROCESS_SLOW_START = "process.worker_slow_start"
#: SIGKILL the *service* process itself once its write-ahead journal
#: has durably appended ``after_records`` records (args: after_records,
#: default 1) - the crash the journal replay path must recover from.
PROCESS_SERVICE_KILL = "process.service_kill"
#: SIGKILL one named *shard* of a fleet (args: shard=<shard name>,
#: after_records=N): the shard whose ``--shard-name`` matches dies
#: after its journal's Nth append, so the gateway's quarantine +
#: re-route path is exercised against a real mid-load process loss.
PROCESS_SHARD_KILL = "process.shard_kill"
#: SIGKILL one named *gateway* (args: gateway=<gateway name>,
#: after_records=N): the gateway whose ``--gateway-name`` matches dies
#: after its membership journal's Nth append - and because per-key
#: migration cursor records flow through that journal, N can land the
#: kill *mid arc-migration*, the crash the journaled cursor resume and
#: gateway-replication failover must survive.
PROCESS_GATEWAY_KILL = "process.gateway_kill"
#: result JSON written torn (truncated, non-atomic).
STORAGE_TORN_JSON = "storage.torn_json"
#: trace npz written truncated.
STORAGE_TRUNCATED_NPZ = "storage.truncated_npz"
#: a stale ``*.tmp`` file is left behind (crashed-writer debris).
STORAGE_STALE_TMP = "storage.stale_tmp"
#: outbound connects from this endpoint are refused before the socket
#: opens (args: none beyond the shared attempt/fire budgets) - the
#: client sees ``ConnectionRefusedError`` and exercises its failover.
NETWORK_CONNECT_REFUSE = "network.connect_refuse"
#: directed link cuts between named endpoints (args: ``rules``, a list
#: of ``{"src": pat, "dst": pat, "after_s"|"after_appends", "heal_after_s"}``
#: objects; one spec carries the whole partition schedule).  Enforced on
#: both sides of the link inside whichever process the rule names, so a
#: single process can be fully isolated with no cross-process state.
NETWORK_PARTITION = "network.partition"
#: the server sleeps ``args["delay_s"]`` before writing the response.
NETWORK_DELAY = "network.delay"
#: the server sends headers plus a partial body then drops the
#: connection (the peer sees ``RemoteDisconnected``/``IncompleteRead``).
NETWORK_DISCONNECT = "network.disconnect"
#: the server advertises the full Content-Length but writes
#: ``args["drop_bytes"]`` (default 1) fewer bytes before closing.
NETWORK_TRUNCATE = "network.truncate"

ALL_POINTS = (
    MODEL_BUFFER_OVERFLOW,
    MODEL_DMA_FAIL,
    MODEL_PMA_FAIL,
    PROCESS_KILL,
    PROCESS_HANG,
    PROCESS_SLOW_START,
    PROCESS_SERVICE_KILL,
    PROCESS_SHARD_KILL,
    PROCESS_GATEWAY_KILL,
    STORAGE_TORN_JSON,
    STORAGE_TRUNCATED_NPZ,
    STORAGE_STALE_TMP,
    NETWORK_CONNECT_REFUSE,
    NETWORK_PARTITION,
    NETWORK_DELAY,
    NETWORK_DISCONNECT,
    NETWORK_TRUNCATE,
)

FAMILY_MODEL = "model"
FAMILY_PROCESS = "process"
FAMILY_STORAGE = "storage"
FAMILY_NETWORK = "network"

#: the model-family points (the serve worker probes these per attempt).
MODEL_POINTS = (MODEL_BUFFER_OVERFLOW, MODEL_DMA_FAIL, MODEL_PMA_FAIL)

#: the network-family points (armed by :func:`repro.chaos.network.
#: install_network_chaos` in each process that owns an endpoint name).
NETWORK_POINTS = (
    NETWORK_CONNECT_REFUSE,
    NETWORK_PARTITION,
    NETWORK_DELAY,
    NETWORK_DISCONNECT,
    NETWORK_TRUNCATE,
)


def family_of(point: str) -> str:
    return point.split(".", 1)[0]


@dataclass(frozen=True)
class FaultSpec:
    """One injection point's configuration inside a plan."""

    point: str
    #: per-decision fire probability (hash/SimRng draw; 1.0 = always).
    probability: float = 1.0
    #: model family: per-run fire budget (opportunities beyond it pass).
    max_fires: int = 1
    #: how many consecutive job *attempts* this fault perturbs; attempt
    #: ``attempts + 1`` is guaranteed clean, which is what lets the
    #: supervisor's bounded retries always reach a fault-free run.
    attempts: int = 1
    #: point-specific knobs (e.g. ``{"at": "checkpoint"}``).
    args: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.point not in ALL_POINTS:
            raise ConfigurationError(
                f"unknown injection point {self.point!r}; "
                f"choose from {sorted(ALL_POINTS)}"
            )
        if not 0.0 < self.probability <= 1.0:
            raise ConfigurationError("probability must be in (0, 1]")
        if self.max_fires < 1:
            raise ConfigurationError("max_fires must be >= 1")
        if self.attempts < 1:
            raise ConfigurationError("attempts must be >= 1")
        if not isinstance(self.args, dict):
            raise ConfigurationError("args must be an object")

    @property
    def family(self) -> str:
        return family_of(self.point)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of fault specs; the unit the env var activates."""

    seed: int = 0xC405
    faults: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        points = [f.point for f in self.faults]
        dupes = sorted({p for p in points if points.count(p) > 1})
        if dupes:
            raise ConfigurationError(f"duplicate injection points in plan: {dupes}")

    # -- queries --------------------------------------------------------------
    def spec_for(self, point: str) -> Optional[FaultSpec]:
        for spec in self.faults:
            if spec.point == point:
                return spec
        return None

    def has_family(self, fam: str) -> bool:
        return any(f.family == fam for f in self.faults)

    def family_specs(self, fam: str) -> tuple[FaultSpec, ...]:
        return tuple(f for f in self.faults if f.family == fam)

    # -- deterministic cross-process decisions --------------------------------
    def _draw(self, point: str, scope: str, trial: int) -> float:
        """Uniform [0, 1) draw as a pure function of the identifiers."""
        digest = hashlib.sha256(
            f"{self.seed}:{point}:{scope}:{trial}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / float(1 << 64)

    def should_fire(
        self, point: str, scope: str, trial: int = 0
    ) -> Optional[FaultSpec]:
        """Does ``point`` fire for attempt ``trial`` of job ``scope``?

        ``scope`` is the job's content key and ``trial`` its zero-based
        attempt index, so every process evaluating the plan - worker,
        supervisor, test - reaches the same verdict with no shared
        state.  Returns the spec when it fires, else ``None``.
        """
        spec = self.spec_for(point)
        if spec is None or trial >= spec.attempts:
            return None
        if spec.probability < 1.0 and self._draw(point, scope, trial) >= spec.probability:
            return None
        return spec

    # -- (de)serialization ----------------------------------------------------
    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        if not isinstance(payload, Mapping):
            raise ConfigurationError("chaos plan must be a JSON object")
        unknown = sorted(set(payload) - {"seed", "faults"})
        if unknown:
            raise ConfigurationError(f"unknown chaos plan fields: {unknown}")
        seed = payload.get("seed", 0xC405)
        if not isinstance(seed, int):
            raise ConfigurationError("chaos plan seed must be an integer")
        raw_faults = payload.get("faults", [])
        if not isinstance(raw_faults, (list, tuple)):
            raise ConfigurationError("chaos plan 'faults' must be an array")
        faults = []
        for raw in raw_faults:
            if not isinstance(raw, Mapping):
                raise ConfigurationError("each fault must be a JSON object")
            extra = sorted(
                set(raw) - {"point", "probability", "max_fires", "attempts", "args"}
            )
            if extra:
                raise ConfigurationError(f"unknown fault fields: {extra}")
            if "point" not in raw:
                raise ConfigurationError("each fault needs a 'point'")
            try:
                faults.append(FaultSpec(**dict(raw)))
            except TypeError as exc:
                raise ConfigurationError(f"bad fault spec: {exc}") from exc
        return cls(seed=seed, faults=tuple(faults))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid chaos plan JSON: {exc}") from exc
        return cls.from_dict(payload)

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "faults": [
                {
                    "point": f.point,
                    "probability": f.probability,
                    "max_fires": f.max_fires,
                    "attempts": f.attempts,
                    "args": dict(f.args),
                }
                for f in self.faults
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)


# -- environment activation ---------------------------------------------------

_cached_plan: Optional[FaultPlan] = None
_cache_valid = False


def plan_from_env() -> Optional[FaultPlan]:
    """Read ``UVMREPRO_CHAOS`` fresh (no cache); None when disabled.

    Worker processes call this at boot so a plan activated after the
    parent imported :mod:`repro.chaos` is still honoured.
    """
    raw = os.environ.get(ENV_VAR, "").strip()
    if raw in ("", "0", "off", "none", "disabled"):
        return None
    if raw.startswith("{"):
        return FaultPlan.from_json(raw)
    path = Path(raw)
    if not path.is_file():
        raise ConfigurationError(f"{ENV_VAR} names a missing plan file: {raw}")
    return FaultPlan.from_json(path.read_text(encoding="utf-8"))


def active_plan() -> Optional[FaultPlan]:
    """The process's active plan (cached; see :func:`set_active_plan`)."""
    global _cached_plan, _cache_valid
    if not _cache_valid:
        _cached_plan = plan_from_env()
        _cache_valid = True
    return _cached_plan


def set_active_plan(plan: Optional[FaultPlan], *, reset: bool = False) -> None:
    """Force the active plan (tests), or ``reset=True`` to re-read the
    environment on the next :func:`active_plan` call."""
    global _cached_plan, _cache_valid
    if reset:
        _cached_plan = None
        _cache_valid = False
    else:
        _cached_plan = plan
        _cache_valid = True
