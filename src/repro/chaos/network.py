"""Network-boundary chaos: deterministic partitions and torn responses.

The fourth injector family (see :mod:`repro.chaos.plan`): seeded,
reproducible faults at the stdlib HTTP client/server boundary between
*named* fleet endpoints.  Five points:

* ``network.connect_refuse`` - outbound connects refused before the
  socket opens (the client's failover path),
* ``network.partition``      - directed link cuts between named
  endpoints, armed by a wall-free schedule (monotonic seconds since
  install, or the local membership journal's Nth append) and optionally
  healed after a delay,
* ``network.delay``          - the server sleeps before responding,
* ``network.disconnect``     - headers + a partial body, then the
  connection drops (``RemoteDisconnected`` / ``IncompleteRead``),
* ``network.truncate``       - full ``Content-Length`` advertised,
  fewer bytes written.

The injector follows the zero-cost None-sentinel hook pattern used by
every other family: :func:`network_injector` returns ``None`` unless
:func:`install_network_chaos` armed a plan with network faults in this
process, so the fault-free hot path pays one global read per request.

**Identity model.**  Each process owns at most one endpoint name (its
``--shard-name`` / ``--gateway-name``), registered via
:func:`install_network_chaos`.  Partition rules name a source and a
destination pattern - an endpoint name, a ``host:port``, or ``"*"`` -
and are enforced *inside the process a side of the rule names*:
outbound cuts raise :class:`ChaosPartitionError` before connecting,
inbound cuts drop the request without a response (the caller, which
self-identifies through the ``X-Uvmrepro-Caller`` header, sees the peer
vanish).  A total partition of one process therefore needs no
cross-process coordination at all::

    {"point": "network.partition", "args": {"rules": [
        {"src": "gw0", "dst": "*", "after_appends": 7, "heal_after_s": 4.0},
        {"src": "*", "dst": "gw0", "after_appends": 7, "heal_after_s": 4.0}
    ]}}

Every schedule decision is a pure function of the plan plus this
process's monotonic clock / journal-append count - no wall clock, no
shared state - so a partition fires at the same logical point on every
run.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Mapping, Optional
from urllib.parse import urlsplit

from repro.chaos.plan import (
    FAMILY_NETWORK,
    NETWORK_CONNECT_REFUSE,
    NETWORK_DELAY,
    NETWORK_DISCONNECT,
    NETWORK_PARTITION,
    NETWORK_TRUNCATE,
    FaultPlan,
    active_plan,
)
from repro.errors import ConfigurationError

#: how callers self-identify so inbound partition rules can match them.
CALLER_HEADER = "X-Uvmrepro-Caller"


class ChaosPartitionError(ConnectionRefusedError):
    """An outbound connect suppressed by an armed network fault.

    Subclasses :class:`ConnectionRefusedError` (an ``OSError``) so the
    client's existing unreachable-endpoint handling - failover, retry,
    quarantine accounting - engages with no special cases.
    """


def endpoint_of_url(url: str) -> str:
    """The ``host:port`` identity of a base URL (lowercased)."""
    parts = urlsplit(url if "//" in url else f"//{url}")
    host = (parts.hostname or "").lower()
    try:
        port = parts.port
    except ValueError:
        port = None
    return f"{host}:{port}" if port is not None else host


@dataclass(frozen=True)
class PartitionRule:
    """One directed link cut in a ``network.partition`` schedule."""

    #: source endpoint pattern: a name, a ``host:port``, or ``"*"``.
    src: str
    #: destination endpoint pattern (same forms).
    dst: str
    #: arm the cut this many monotonic seconds after install.
    after_s: float = 0.0
    #: arm after the local membership journal's Nth append instead
    #: (mid-migration precision; see :meth:`NetworkInjector.note_append`).
    after_appends: Optional[int] = None
    #: un-cut the link this long after it armed (None = never heals).
    heal_after_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.src or not self.dst:
            raise ConfigurationError("partition rule needs 'src' and 'dst'")
        if self.after_s < 0:
            raise ConfigurationError("partition after_s must be >= 0")
        if self.after_appends is not None and self.after_appends < 1:
            raise ConfigurationError("partition after_appends must be >= 1")
        if self.heal_after_s is not None and self.heal_after_s <= 0:
            raise ConfigurationError("partition heal_after_s must be > 0")

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PartitionRule":
        if not isinstance(payload, Mapping):
            raise ConfigurationError("each partition rule must be a JSON object")
        known = {"src", "dst", "after_s", "after_appends", "heal_after_s"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(f"unknown partition rule fields: {unknown}")
        try:
            return cls(
                src=str(payload.get("src", "")),
                dst=str(payload.get("dst", "")),
                after_s=float(payload.get("after_s", 0.0)),
                after_appends=(
                    None
                    if payload.get("after_appends") is None
                    else int(payload["after_appends"])
                ),
                heal_after_s=(
                    None
                    if payload.get("heal_after_s") is None
                    else float(payload["heal_after_s"])
                ),
            )
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(f"bad partition rule: {exc}") from exc


def _matches(pattern: str, identities: tuple[str, ...]) -> bool:
    return pattern == "*" or pattern in identities


class NetworkInjector:
    """Evaluates one plan's network faults for one process's endpoint.

    Thread-safe; every HTTP worker thread of the process consults the
    same instance.  All counters it keeps are merged into the owning
    process's ``/metrics`` under ``chaos.network.*``.
    """

    def __init__(
        self,
        plan: FaultPlan,
        local: Optional[str],
        # the injector times arming/heal schedules against real elapsed
        # time at the HTTP boundary (operational shell, not sim core);
        # tests inject a fake clock through this parameter.
        clock=time.monotonic,  # lint: allow(determinism-wallclock)
    ) -> None:
        self.plan = plan
        self.local = local
        self._clock = clock
        self._t0 = clock()
        self._lock = threading.Lock()
        #: membership-journal appends observed (arms after_appends rules).
        self._appends = 0
        #: clock at which each rule index armed (appends-armed rules).
        self._armed_at: dict[int, float] = {}
        #: per-(point, peer) attempt ordinals for should_fire trials.
        self._trials: dict[tuple[str, str], int] = {}
        #: per-point fires already spent against the spec's max_fires.
        self._fired: dict[str, int] = {}
        self.counters: dict[str, int] = {}
        self._rules: tuple[PartitionRule, ...] = ()
        spec = plan.spec_for(NETWORK_PARTITION)
        if spec is not None:
            raw = spec.args.get("rules", [])
            if not isinstance(raw, (list, tuple)):
                raise ConfigurationError("network.partition args.rules must be an array")
            self._rules = tuple(PartitionRule.from_dict(r) for r in raw)

    # -- schedule -------------------------------------------------------------
    def note_append(self, total_records: int) -> None:
        """Feed the local membership journal's durable append count."""
        armed_now = []
        with self._lock:
            self._appends = max(self._appends, int(total_records))
            now = self._clock()
            for index, rule in enumerate(self._rules):
                if (
                    rule.after_appends is not None
                    and index not in self._armed_at
                    and self._appends >= rule.after_appends
                ):
                    self._armed_at[index] = now
                    armed_now.append(rule)
        for rule in armed_now:
            self._count("chaos.network.partitions_armed")

    def _rule_active_locked(self, index: int, rule: PartitionRule) -> bool:
        now = self._clock()
        if rule.after_appends is not None:
            armed_at = self._armed_at.get(index)
            if armed_at is None:
                return False
        else:
            armed_at = self._t0 + rule.after_s
            if now < armed_at:
                return False
        if rule.heal_after_s is not None and now >= armed_at + rule.heal_after_s:
            return False
        return True

    def _cut_locked(
        self, src_ids: tuple[str, ...], dst_ids: tuple[str, ...]
    ) -> bool:
        for index, rule in enumerate(self._rules):
            if not self._rule_active_locked(index, rule):
                continue
            if _matches(rule.src, src_ids) and _matches(rule.dst, dst_ids):
                return True
        return False

    # -- accounting -----------------------------------------------------------
    def _count(self, name: str, value: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def _next_trial_locked(self, point: str, peer: str) -> int:
        key = (point, peer)
        trial = self._trials.get(key, 0)
        self._trials[key] = trial + 1
        return trial

    def _fire(self, point: str, peer: str) -> Optional[dict[str, Any]]:
        """One budgeted deterministic decision for ``point`` vs ``peer``."""
        spec = self.plan.spec_for(point)
        if spec is None:
            return None
        with self._lock:
            if self._fired.get(point, 0) >= spec.max_fires:
                return None
            trial = self._next_trial_locked(point, peer)
        scope = f"{self.local or '?'}->{peer}"
        if self.plan.should_fire(point, scope, trial) is None:
            return None
        with self._lock:
            if self._fired.get(point, 0) >= spec.max_fires:
                return None
            self._fired[point] = self._fired.get(point, 0) + 1
        return dict(spec.args)

    # -- client side ----------------------------------------------------------
    def check_connect(self, url: str) -> None:
        """Raise :class:`ChaosPartitionError` when outbound to ``url``
        is cut or refused; called immediately before the real connect."""
        peer = endpoint_of_url(url)
        local_ids = (self.local,) if self.local else ()
        with self._lock:
            cut = self._cut_locked(local_ids, (peer, url.rstrip("/")))
        if cut:
            self._count("chaos.network.partition_refusals")
            raise ChaosPartitionError(
                f"chaos: outbound {self.local or '?'} -> {peer} partitioned"
            )
        if self._fire(NETWORK_CONNECT_REFUSE, peer) is not None:
            self._count("chaos.network.connects_refused")
            raise ChaosPartitionError(
                f"chaos: outbound connect {self.local or '?'} -> {peer} refused"
            )

    # -- server side ----------------------------------------------------------
    def drop_inbound(self, caller: Optional[str]) -> bool:
        """True when a request from ``caller`` must be dropped unanswered."""
        local_ids = (self.local,) if self.local else ()
        caller_ids = (caller,) if caller else ()
        with self._lock:
            cut = self._cut_locked(caller_ids, local_ids)
        if cut:
            self._count("chaos.network.inbound_drops")
        return cut

    def response_fault(self, caller: Optional[str]) -> Optional[dict[str, Any]]:
        """The fault to apply to this response, or None.

        At most one per response, first match wins: ``delay`` (sleep
        ``delay_s`` before writing), ``disconnect`` (write
        ``after_bytes`` then close), ``truncate`` (advertise the full
        length, write ``drop_bytes`` fewer).
        """
        peer = caller or "*"
        args = self._fire(NETWORK_DELAY, peer)
        if args is not None:
            self._count("chaos.network.delays")
            return {"kind": "delay", "delay_s": float(args.get("delay_s", 0.2))}
        args = self._fire(NETWORK_DISCONNECT, peer)
        if args is not None:
            self._count("chaos.network.disconnects")
            return {
                "kind": "disconnect",
                "after_bytes": (
                    None
                    if args.get("after_bytes") is None
                    else int(args["after_bytes"])
                ),
            }
        args = self._fire(NETWORK_TRUNCATE, peer)
        if args is not None:
            self._count("chaos.network.truncates")
            return {"kind": "truncate", "drop_bytes": int(args.get("drop_bytes", 1))}
        return None

    def snapshot_counters(self) -> dict[str, int]:
        with self._lock:
            return dict(self.counters)


# -- process-global sentinel --------------------------------------------------

_state_lock = threading.Lock()
_local_endpoint: Optional[str] = None
_injector: Optional[NetworkInjector] = None
_UNSET = object()


def local_endpoint() -> Optional[str]:
    """This process's registered endpoint name (None = anonymous)."""
    return _local_endpoint


def install_network_chaos(
    local: Optional[str] = None, plan: Any = _UNSET
) -> Optional[NetworkInjector]:
    """Register this process's endpoint name and arm network faults.

    Reads the active plan (or the one passed explicitly); installs an
    injector only when the plan carries network-family faults, so the
    fault-free path keeps its None sentinel.  Returns the injector (or
    None).  Registering ``local`` even without network faults is useful:
    the client stamps :data:`CALLER_HEADER` whenever a name is set, so
    a *remote* process's inbound rules can still match this caller.
    """
    global _local_endpoint, _injector
    resolved = active_plan() if plan is _UNSET else plan
    with _state_lock:
        if local is not None:
            _local_endpoint = local
        if resolved is None or not resolved.has_family(FAMILY_NETWORK):
            _injector = None
        else:
            _injector = NetworkInjector(resolved, _local_endpoint)
        return _injector


def network_injector() -> Optional[NetworkInjector]:
    """The armed injector, or None (the zero-cost common case)."""
    return _injector


def reset_network_chaos() -> None:
    """Drop the installed injector and endpoint name (tests)."""
    global _local_endpoint, _injector
    with _state_lock:
        _local_endpoint = None
        _injector = None
