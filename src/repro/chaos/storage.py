"""Storage-level fault actions: torn writes, truncation, tmp debris.

Each helper fabricates the on-disk state a specific crash would leave
behind - a JSON document cut mid-write, an npz payload missing its tail,
a temp file from a writer that died before ``os.replace`` - so the
recovery machinery (checksums + quarantine in
:class:`~repro.serve.store.ResultStore`, the startup tmp sweep, the
supervisor's retry path) is exercised against realistic debris rather
than hand-rolled mocks.

The torn/truncated helpers are called *instead of* a clean
``store.store`` and the caller then raises
:class:`~repro.errors.ChaosError`, so the attempt is retried and the
store converges to a clean, bit-identical entry.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from repro.trace.io import save_trace
from repro.trace.recorder import FinalizedTrace


def tear_json(store, key: str, doc: dict[str, Any]) -> None:
    """Write ``doc`` torn: truncated bytes straight to the final path.

    Emulates a writer that bypassed the atomic tempfile dance (or a
    filesystem that lost the tail on crash).  Readers must detect this
    via JSON decode failure and treat the entry as corrupt.
    """
    path = store.doc_path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    data = json.dumps(doc, sort_keys=True).encode("utf-8")
    path.write_bytes(data[: max(1, len(data) // 2)])


def truncate_npz(
    store,
    key: str,
    trace: FinalizedTrace,
    metadata: Optional[dict[str, Any]] = None,
) -> None:
    """Write the trace payload, then chop off its tail.

    A truncated zip container fails structurally on load; the reader
    must quarantine it instead of surfacing a raw ``zipfile`` error.
    """
    final = store.trace_path(key)
    final.parent.mkdir(parents=True, exist_ok=True)
    save_trace(trace, final, metadata=metadata)
    data = final.read_bytes()
    final.write_bytes(data[: max(1, len(data) // 2)])


def leave_stale_tmp(store, key: str) -> None:
    """Drop crashed-writer debris next to the entry.

    Mimics a worker that died between ``mkstemp`` and ``os.replace``.
    Harmless to readers; a restarted store's startup sweep must remove
    it so the tree does not accumulate garbage.
    """
    path = store.doc_path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    debris = path.parent / f".chaos-{key[:12]}.stale.tmp"
    debris.write_bytes(b"{\"torn\": tr")
