"""Process-level fault actions for serve workers.

These helpers are called from inside a worker process
(:func:`repro.serve.pool.worker_main`) once per task, after the STARTED
message is on the wire.  Which attempt they perturb is decided by the
plan's stateless :meth:`~repro.chaos.plan.FaultPlan.should_fire` - keyed
by the job's content key and attempt index - so a respawned worker
reaches the same verdict as the one that died, and the supervisor's
bounded retries are guaranteed a clean attempt once ``spec.attempts``
is exhausted.

``time.sleep`` / ``os.kill`` are actions, not wall-clock *reads*; the
module stays clean under the determinism lint rules.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Callable, Optional

from repro.chaos.plan import (
    PROCESS_GATEWAY_KILL,
    PROCESS_HANG,
    PROCESS_KILL,
    PROCESS_SERVICE_KILL,
    PROCESS_SHARD_KILL,
    PROCESS_SLOW_START,
    FaultPlan,
)


def apply_process_faults(plan: FaultPlan, scope: str, trial: int) -> None:
    """Run the fatal/latency process faults due for this attempt.

    ``worker_kill`` with ``at="start"`` (the default) SIGKILLs the
    process immediately - the supervisor observes a dead worker and
    requeues the job.  ``worker_hang`` sleeps past the job deadline so
    the supervisor's timeout path kills and retries.  ``worker_slow_start``
    is a non-fatal latency wobble before execution.
    """
    kill = plan.should_fire(PROCESS_KILL, scope, trial)
    if kill is not None and kill.args.get("at", "start") == "start":
        os.kill(os.getpid(), signal.SIGKILL)
    hang = plan.should_fire(PROCESS_HANG, scope, trial)
    if hang is not None:
        time.sleep(float(hang.args.get("hang_s", 3600.0)))
    slow = plan.should_fire(PROCESS_SLOW_START, scope, trial)
    if slow is not None:
        time.sleep(float(slow.args.get("delay_s", 0.25)))


def checkpoint_kill_hook(
    plan: FaultPlan, scope: str, trial: int
) -> Optional[Callable[[int], None]]:
    """A checkpointer ``on_save`` hook that kills mid-run, or ``None``.

    ``worker_kill`` with ``at="checkpoint"`` waits until the Nth
    checkpoint save (``after_saves``, default 1) has been durably
    written, then SIGKILLs - the canonical crash the resume path must
    survive: the retry attempt restores the snapshot and the final
    result must still be bit-identical to an uninterrupted run.
    """
    spec = plan.should_fire(PROCESS_KILL, scope, trial)
    if spec is None or spec.args.get("at", "start") != "checkpoint":
        return None
    after = int(spec.args.get("after_saves", 1))

    def hook(saves: int) -> None:
        if saves >= after:
            os.kill(os.getpid(), signal.SIGKILL)

    return hook


def journal_kill_hook(
    plan: FaultPlan, scope: str = "service", trial: int = 0
) -> Optional[Callable[[int], None]]:
    """A journal ``on_append`` hook that kills the service, or ``None``.

    ``service_kill`` SIGKILLs the *service process* (supervisor, HTTP
    threads, journal - everything) right after its write-ahead journal
    has durably appended the Nth record (``after_records``, default 1).
    Parameterizing N over every record ordinal of a reference run is the
    recovery test matrix: at each boundary the journal prefix must
    replay into an equivalent job table, terminal results intact and
    non-terminal jobs requeued.
    """
    spec = plan.should_fire(PROCESS_SERVICE_KILL, scope, trial)
    if spec is None:
        return None
    after = int(spec.args.get("after_records", 1))

    def hook(records: int) -> None:
        if records >= after:
            os.kill(os.getpid(), signal.SIGKILL)

    return hook


def gateway_kill_hook(
    plan: FaultPlan,
    gateway_name: Optional[str],
    scope: str = "gateway",
    trial: int = 0,
) -> Optional[Callable[[int], None]]:
    """A membership-journal ``on_append`` hook that kills one named
    gateway, or ``None``.

    ``gateway_kill`` targets the routing tier itself: the plan names a
    gateway (``args["gateway"]``), every gateway is started with the
    same ``UVMREPRO_CHAOS`` plan, and only the process whose
    ``--gateway-name`` matches arms the hook - after its membership
    journal durably appends the Nth record (``after_records``, default
    1) the gateway SIGKILLs itself.  Because per-key migration cursor
    records flow through the same journal, N chosen past a
    ``migration_start`` lands the kill *mid-migration*; clients must
    fail over to the replica gateway (which shares the view by epoch)
    and a restarted primary must resume the migration from its
    journaled cursor - with every job still completing bit-identical
    to a solo run.
    """
    if gateway_name is None:
        return None
    spec = plan.should_fire(PROCESS_GATEWAY_KILL, scope, trial)
    if spec is None or spec.args.get("gateway") != gateway_name:
        return None
    after = int(spec.args.get("after_records", 1))

    def hook(records: int) -> None:
        if records >= after:
            os.kill(os.getpid(), signal.SIGKILL)

    return hook


def shard_kill_hook(
    plan: FaultPlan,
    shard_name: Optional[str],
    scope: str = "service",
    trial: int = 0,
) -> Optional[Callable[[int], None]]:
    """A journal ``on_append`` hook that kills one named shard, or ``None``.

    ``shard_kill`` is :data:`PROCESS_SERVICE_KILL`'s fleet sibling: the
    plan names a target (``args["shard"]``), every shard of the fleet
    is started with the same ``UVMREPRO_CHAOS`` plan, and only the
    process whose ``--shard-name`` matches arms the hook - after its
    write-ahead journal durably appends the Nth record
    (``after_records``, default 1) the shard SIGKILLs itself.  The
    gateway must then quarantine it, re-route its keys to the next ring
    replica, and still land results bit-identical to a fault-free run.
    """
    if shard_name is None:
        return None
    spec = plan.should_fire(PROCESS_SHARD_KILL, scope, trial)
    if spec is None or spec.args.get("shard") != shard_name:
        return None
    after = int(spec.args.get("after_records", 1))

    def hook(records: int) -> None:
        if records >= after:
            os.kill(os.getpid(), signal.SIGKILL)

    return hook
