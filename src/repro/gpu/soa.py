"""Struct-of-arrays (SoA) phase engine: the vectorized GPU hot path.

The scalar execution model (:class:`~repro.gpu.warp.WarpStream` +
:class:`~repro.gpu.scheduler.BlockScheduler`) pays a Python call and
several small-array numpy dispatches per stream per phase - ~2M calls on
an oversubscribed SGEMM run.  This module holds the *same* state in flat
numpy arrays - one concatenated page/write array for all streams, with
per-stream cursors into it - and advances an entire phase's wavefront
with batched operations.

Equivalence with the scalar engine is exact, not statistical:

* within one phase the selected streams are independent (advancing one
  stream reads only the shared residency masks, which the phase does not
  mutate), so batch-advancing them and then emitting faults sequentially
  in the original jittered order produces the identical fault sequence,
* the scheduler consumes the identical RNG draws (one ``jitter_order``
  at construction, nothing else), dispatches in the same order, and
  assigns the same round-robin SM ids,
* uTLB coalescing and fault-buffer capacity drops are applied in the
  emission loop exactly as the scalar loop interleaves them.

``tests/integration/test_engine_equivalence.py`` pins this down against
the scalar reference for every workload family x replay policy x
prefetch setting.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import SimulationError
from repro.gpu.warp import WarpStream
from repro.sim.rng import SimRng

# int8 state codes (mirrors repro.gpu.warp.StreamState)
PENDING = 0
RUNNABLE = 1
STALLED = 2
DONE = 3

#: first scan window per unresolved stream; grows geometrically so short
#: hops stay cheap while long resident runs advance at full numpy speed.
START_WINDOW = 64
MAX_WINDOW = 8192  # lint: allow(units-magic-literal) scan-window entries, not bytes


class SoaStreams:
    """All warp-stream state as flat arrays.

    Per-stream page sequences are concatenated into ``pages_flat`` /
    ``writes_flat``; ``start``/``end`` delimit each stream's span and
    ``pos`` is the absolute cursor of its next access.  Streams without a
    writes mask get an all-False span, which makes the permission check
    ``where(writes, write_ok, read_ok)`` degenerate to ``read_ok`` -
    byte-identical to the scalar ``check_writes`` guard.
    """

    def __init__(self, streams: Sequence[WarpStream]) -> None:
        n = len(streams)
        self.n = n
        lengths = np.fromiter((len(s.pages) for s in streams), dtype=np.int64, count=n)
        start = np.zeros(n, dtype=np.int64)
        if n > 1:
            np.cumsum(lengths[:-1], out=start[1:])
        total = int(lengths.sum()) if n else 0
        self.start = start
        self.end = start + lengths
        if n:
            self.pages_flat = np.concatenate(
                [s.pages for s in streams] or [np.empty(0, dtype=np.int64)]
            )
        else:
            self.pages_flat = np.empty(0, dtype=np.int64)
        self.writes_flat = np.zeros(total, dtype=bool)
        for i, s in enumerate(streams):
            if s.writes is not None:
                self.writes_flat[start[i] : self.end[i]] = s.writes
        self.pos = start.copy()
        self.state = np.full(n, PENDING, dtype=np.int8)
        self.stalled_on = np.full(n, -1, dtype=np.int64)
        self.sm_id = np.full(n, -1, dtype=np.int64)
        self.stream_ids = np.fromiter(
            (s.stream_id for s in streams), dtype=np.int64, count=n
        )
        self.flops = np.fromiter(
            (s.flops_per_access for s in streams), dtype=np.float64, count=n
        )
        self.faults_raised = np.zeros(n, dtype=np.int64)
        #: reusable per-window scan scratch (see :func:`advance_batch`);
        #: keyed by window width, rows grown to the high-water mark.
        self._scratch: dict[int, dict[str, np.ndarray]] = {}

    def scan_scratch(self, k: int, width: int) -> dict[str, np.ndarray]:
        """Preallocated ``k x width`` scan buffers for one gallop round.

        The hot loop in :func:`advance_batch` previously allocated five
        fresh ``k x W`` arrays per round; reusing high-water-sized
        buffers removes that churn (the returned views alias scratch -
        valid until the next call with the same ``width``).
        """
        bufs = self._scratch.get(width)
        if bufs is None or bufs["idx"].shape[0] < k:
            bufs = {
                "idx": np.empty((k, width), dtype=np.int64),
                "pg": np.empty((k, width), dtype=np.int64),
                "ok": np.empty((k, width), dtype=bool),
                "wr": np.empty((k, width), dtype=bool),
                "wok": np.empty((k, width), dtype=bool),
                "valid": np.empty((k, width), dtype=bool),
                "arange": np.arange(width, dtype=np.int64),
            }
            self._scratch[width] = bufs
        return bufs


def advance_batch(
    soa: SoaStreams,
    sel: np.ndarray,
    read_ok: np.ndarray,
    write_ok: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Advance the selected streams to their next miss or completion.

    Returns ``(pos0, pos1, miss)`` aligned with ``sel``: the absolute
    cursor before and after, and the missing page per stream (``-1`` for
    streams that ran to completion).  ``soa.pos`` is updated in place;
    state transitions are the caller's job (they depend on emission).

    The scan gallops: each round gathers a ``k x W`` window of upcoming
    accesses for the still-unresolved streams, tests the access masks in
    one shot, and finds each stream's first miss with a single
    ``argmin`` + gather (no separate ``.all()`` pass).  ``W`` grows
    geometrically so streams that stall quickly never pay for a wide
    window while long resident runs sweep at full numpy speed.
    """
    k = int(sel.size)
    pos0 = soa.pos[sel].copy()
    cur = pos0.copy()
    end = soa.end[sel]
    miss = np.full(k, -1, dtype=np.int64)
    pages = soa.pages_flat
    writes = soa.writes_flat
    check_writes = write_ok is not None and writes.size > 0
    live = np.flatnonzero(cur < end)
    width = START_WINDOW
    while live.size:
        n_live = int(live.size)
        c = cur[live]
        e = end[live]
        bufs = soa.scan_scratch(n_live, width)
        idx = bufs["idx"][:n_live]
        np.add(c[:, None], bufs["arange"], out=idx)
        valid = bufs["valid"][:n_live]
        np.less(idx, e[:, None], out=valid)
        # mode="clip" clamps to pages.size - 1, replacing the explicit
        # np.minimum pass (idx is always >= 0)
        pg = bufs["pg"][:n_live]
        np.take(pages, idx, out=pg, mode="clip")
        ok = bufs["ok"][:n_live]
        np.take(read_ok, pg, out=ok)
        if check_writes:
            wr = bufs["wr"][:n_live]
            np.take(writes, idx, out=wr, mode="clip")
            wok = bufs["wok"][:n_live]
            np.take(write_ok, pg, out=wok)
            np.copyto(ok, wok, where=wr)
        np.logical_not(valid, out=valid)
        np.logical_or(ok, valid, out=ok)
        first = ok.argmin(axis=1)
        missed = ~ok[np.arange(n_live), first]
        if missed.any():
            rows = live[missed]
            mpos = c[missed] + first[missed]
            cur[rows] = mpos
            miss[rows] = pages[mpos]
        swept = ~missed
        if swept.any():
            rows = live[swept]
            new_c = np.minimum(c[swept] + width, e[swept])
            cur[rows] = new_c
            live = rows[new_c < e[swept]]
        else:
            live = live[:0]
        if width < MAX_WINDOW:
            width = min(width * 4, MAX_WINDOW)
    soa.pos[sel] = cur
    return pos0, cur, miss


def span_indices(starts: np.ndarray, stops: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(start, stop)`` for each (start, stop) pair.

    Used to gather every retired access's flat index in one shot (for
    access counters and remote-traffic accounting) without a Python loop
    over streams.
    """
    lens = stops - starts
    nz = lens > 0
    if not nz.any():
        return np.empty(0, dtype=np.int64)
    s = starts[nz]
    ls = lens[nz]
    cs = np.cumsum(ls)
    offsets = np.concatenate((np.zeros(1, dtype=np.int64), cs[:-1]))
    return np.arange(cs[-1], dtype=np.int64) + np.repeat(s - offsets, ls)


class SoaBlockScheduler:
    """Array-backed block scheduler, RNG- and order-identical to the
    scalar :class:`~repro.gpu.scheduler.BlockScheduler`.

    Instead of rebuilding the active/runnable lists with O(active) list
    comprehensions every phase, it maintains the runnable set
    incrementally: the device reports completions and stalls
    (:meth:`mark_done` / :meth:`mark_stalled`), and the scheduler only
    compacts its active array when something actually finished.
    """

    def __init__(
        self,
        streams: Sequence[WarpStream],
        rng: SimRng,
        max_active: int = 2048,
        n_sms: int = 80,
        jitter: float = 0.08,
    ) -> None:
        if max_active <= 0:
            raise SimulationError(f"max_active must be positive, got {max_active}")
        if n_sms <= 0:
            raise SimulationError(f"n_sms must be positive, got {n_sms}")
        self.streams = list(streams)
        self.soa = SoaStreams(self.streams)
        self.max_active = max_active
        self.n_sms = n_sms
        # identical draw to the scalar scheduler: same window, same rng
        self._dispatch_order = rng.jitter_order(
            len(self.streams), window=max(8.0, jitter * 4 * max_active)
        )
        self._next_dispatch = 0
        self._active = np.empty(0, dtype=np.int64)
        self._dispatch_counter = 0
        self._n_done_active = 0  # DONE entries awaiting compaction
        self._n_stalled = 0
        self._n_done_total = 0

    # -- dispatch -----------------------------------------------------------
    def refill(self) -> int:
        """Dispatch pending streams up to the occupancy limit."""
        soa = self.soa
        if self._n_done_active:
            self._active = self._active[soa.state[self._active] != DONE]
            self._n_done_active = 0
        dispatched = 0
        need = self.max_active - self._active.size
        order = self._dispatch_order
        while need > 0 and self._next_dispatch < order.size:
            cand = order[self._next_dispatch : self._next_dispatch + need]
            self._next_dispatch += cand.size
            pending = cand[soa.state[cand] == PENDING]
            if pending.size:
                soa.state[pending] = RUNNABLE
                soa.sm_id[pending] = (
                    self._dispatch_counter + np.arange(pending.size)
                ) % self.n_sms
                self._dispatch_counter += int(pending.size)
                self._active = np.concatenate((self._active, pending))
                dispatched += int(pending.size)
                need -= int(pending.size)
        return dispatched

    # -- device feedback ----------------------------------------------------
    def mark_done(self, ids: np.ndarray) -> None:
        soa = self.soa
        soa.state[ids] = DONE
        soa.stalled_on[ids] = -1
        self._n_done_active += int(ids.size)
        self._n_done_total += int(ids.size)

    def mark_stalled(self, ids: np.ndarray, pages: np.ndarray) -> None:
        soa = self.soa
        soa.state[ids] = STALLED
        soa.stalled_on[ids] = pages
        soa.faults_raised[ids] += 1
        self._n_stalled += int(ids.size)

    # -- queries ------------------------------------------------------------
    def runnable_ids(self) -> np.ndarray:
        """Active streams able to advance, in dispatch order.

        Fast path: when nothing is stalled or finished the active array
        *is* the runnable set - no scan at all.
        """
        if self._n_stalled == 0 and self._n_done_active == 0:
            return self._active
        act = self._active
        return act[self.soa.state[act] == RUNNABLE]

    def has_stalled(self) -> bool:
        return self._n_stalled > 0

    def all_done(self) -> bool:
        return (
            self._next_dispatch >= self._dispatch_order.size
            and self._n_done_total == len(self.streams)
        )

    def wake_all_stalled(self) -> int:
        """Broadcast replay: every stalled warp retries (Section III-E)."""
        if self._n_stalled == 0:
            return 0
        soa = self.soa
        act = self._active
        ids = act[soa.state[act] == STALLED]
        soa.state[ids] = RUNNABLE
        soa.stalled_on[ids] = -1
        self._n_stalled = 0
        return int(ids.size)

    def progress(self) -> tuple[int, int]:
        """(streams done, total streams) - for progress reporting."""
        return self._n_done_total, len(self.streams)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        done, total = self.progress()
        active = self._active.size - self._n_done_active
        return f"SoaBlockScheduler(done={done}/{total}, active={active})"
