"""GPU-side models: fault generation, fault buffer, scheduler, DMA.

The paper's driver analysis treats the GPU as the *producer* of a page
fault stream with specific characteristics: faults arrive in parallel
from many SMs through per-GPC uTLBs, are serialized into a circular
hardware fault buffer, carry only the faulting address (origin erasure,
Section IV-A), and stalled warps resume only on replay notifications
(Section III-E).  This subpackage reproduces exactly that producer.
"""

from repro.gpu.fault_buffer import FaultBuffer, FaultEntry
from repro.gpu.warp import StreamState, WarpStream
from repro.gpu.scheduler import BlockScheduler
from repro.gpu.tlb import UTlbArray
from repro.gpu.dma import DmaEngine
from repro.gpu.device import GpuDevice, GpuDeviceConfig

__all__ = [
    "FaultBuffer",
    "FaultEntry",
    "WarpStream",
    "StreamState",
    "BlockScheduler",
    "UTlbArray",
    "DmaEngine",
    "GpuDevice",
    "GpuDeviceConfig",
]
