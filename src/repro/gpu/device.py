"""The GPU device: execution phases that produce the fault workload.

:class:`GpuDevice` ties the per-component models together: the block
scheduler advances warp streams against the current residency state; every
miss goes through the per-GPC uTLB filter and, if not coalesced, into the
hardware fault buffer.  The driver (in :mod:`repro.core.driver`) then
consumes that buffer - the exact producer/consumer split of Fig. 2.

A *GPU phase* is one pass in which every runnable stream advances to its
next far-fault (or completion).  Between phases the driver services
faults and issues replays; replays clear the uTLB pending filters and
wake stalled streams, possibly re-raising unsatisfied faults as
duplicates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.gpu.fault_buffer import FaultBuffer, FaultEntry
from repro.gpu.scheduler import BlockScheduler
from repro.gpu.soa import SoaBlockScheduler, advance_batch, span_indices
from repro.gpu.tlb import UTlbArray
from repro.gpu.warp import StreamState, WarpStream
from repro.sim.clock import SimClock
from repro.sim.rng import SimRng
from repro.units import GiB, MiB


@dataclass(frozen=True)
class GpuDeviceConfig:
    """Hardware parameters of the simulated GPU.

    Defaults model a scaled-down Titan V: the geometry ratios (SM count,
    GPC count, fault-buffer depth) match the paper's platform while the
    default memory capacity is reduced so experiments finish in CI time;
    pass ``memory_bytes=12 * GiB`` for the full card.
    """

    memory_bytes: int = 256 * MiB
    n_sms: int = 80
    n_gpcs: int = 6
    max_active_streams: int = 2048
    fault_buffer_capacity: int = 4096  # lint: allow(units-magic-literal) entry count, not bytes
    fault_ready_delay_ns: int = 1_500
    scheduler_jitter: float = 0.08
    track_access_counters: bool = False
    #: Aggregate compute throughput used to convert workload FLOPs into
    #: simulated time (Fig. 10's compute-rate denominator).  Scaled down
    #: from the Titan V's ~14 TFLOP/s in proportion to the scaled memory
    #: capacity so the paging/compute balance at the oversubscription
    #: cliff matches the paper's regime.
    compute_flops_per_s: float = 5.0e11
    #: Streams advanced per GPU phase.  Faults on real hardware arrive
    #: spread over time while the driver is servicing; bounding how many
    #: warps reach their next miss between driver passes models that
    #: temporal spread (and thereby the realistic refault/duplicate rate
    #: under the flushing replay policy).
    phase_width: int = 512
    #: Fault arrivals per microsecond of driver service time: while the
    #: driver works, SMs keep running and stalling.  Couples the fault
    #: backlog (and hence flush sizes, duplicates, and replay overhead)
    #: to how slow servicing is - the mechanism that makes random access
    #: pay a visibly larger replay-policy cost in Fig. 3.
    service_arrival_per_us: float = 0.6
    #: Local jitter of the within-phase advancement order (fraction of
    #: the runnable set): warps interleave nondeterministically but the
    #: dispatch wavefront is roughly preserved.
    phase_jitter: float = 0.1
    #: execution engine: "soa" is the vectorized struct-of-arrays phase
    #: engine (:mod:`repro.gpu.soa`); "scalar" is the per-stream
    #: reference implementation.  Results are bit-identical; "scalar"
    #: exists for the equivalence suite and debugging.
    engine: str = "soa"

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0:
            raise ConfigurationError("memory_bytes must be positive")
        if self.n_sms < self.n_gpcs:
            raise ConfigurationError("need at least one SM per GPC")
        if self.phase_width <= 0:
            raise ConfigurationError("phase_width must be positive")
        if self.engine not in ("soa", "scalar"):
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; expected 'soa' or 'scalar'"
            )


@dataclass
class GpuPhaseResult:
    """What one GPU phase produced."""

    faults_enqueued: int = 0
    faults_coalesced: int = 0
    faults_dropped: int = 0
    accesses_retired: int = 0
    streams_completed: int = 0
    flops_retired: float = 0.0
    #: retired accesses that hit remote (zero-copy) mappings and
    #: therefore crossed the interconnect instead of HBM.
    remote_accesses: int = 0


class GpuDevice:
    """Simulated GPU: schedules streams and raises far-faults."""

    def __init__(
        self,
        config: GpuDeviceConfig,
        streams: list[WarpStream],
        rng: SimRng,
        total_vablocks: int = 0,
    ) -> None:
        self.config = config
        self.rng = rng.fork("gpu")
        self._scheduler_cls = (
            SoaBlockScheduler if config.engine == "soa" else BlockScheduler
        )
        self.scheduler = self._scheduler_cls(
            streams,
            rng=self.rng.fork("scheduler"),
            max_active=config.max_active_streams,
            n_sms=config.n_sms,
            jitter=config.scheduler_jitter,
        )
        self.utlb = UTlbArray(
            n_gpcs=config.n_gpcs,
            sms_per_gpc=max(1, config.n_sms // config.n_gpcs),
        )
        self.fault_buffer = FaultBuffer(
            capacity=config.fault_buffer_capacity,
            ready_delay_ns=config.fault_ready_delay_ns,
        )
        #: Volta-style access counters per VABlock (Section VI-B), only
        #: populated when enabled; read by the access-counter-eviction
        #: extension.
        self.access_counters = (
            np.zeros(total_vablocks, dtype=np.int64)
            if config.track_access_counters and total_vablocks
            else None
        )
        self._pages_per_vablock: int | None = None
        self._kernel_counter = 1

    def set_vablock_geometry(self, pages_per_vablock: int) -> None:
        """Provide geometry for access-counter aggregation."""
        self._pages_per_vablock = pages_per_vablock

    # -- execution -----------------------------------------------------------
    def run_phase(
        self,
        read_ok: np.ndarray,
        clock: SimClock,
        max_streams: int | None = None,
        write_ok: np.ndarray | None = None,
        remote: np.ndarray | None = None,
    ) -> GpuPhaseResult:
        """Advance runnable streams to their next miss or completion.

        Streams are visited in dispatch order with local jitter: the
        block scheduler's wavefront is roughly preserved while faults
        from concurrent warps still interleave nondeterministically.
        ``max_streams`` overrides ``phase_width`` (used for arrivals that
        trickle in while the driver is servicing).  ``write_ok`` enables
        permission-aware access checks (read-mostly duplication);
        ``remote`` marks zero-copy pages so their traffic can be charged
        to the interconnect.
        """
        if self.config.engine == "soa":
            return self._run_phase_soa(read_ok, clock, max_streams, write_ok, remote)
        return self._run_phase_scalar(read_ok, clock, max_streams, write_ok, remote)

    def _run_phase_scalar(
        self,
        read_ok: np.ndarray,
        clock: SimClock,
        max_streams: int | None,
        write_ok: np.ndarray | None,
        remote: np.ndarray | None,
    ) -> GpuPhaseResult:
        """Reference implementation: one stream at a time."""
        result = GpuPhaseResult()
        self.scheduler.refill()
        runnable = self.scheduler.runnable()
        if not runnable:
            return result
        budget = self.config.phase_width if max_streams is None else max_streams
        if budget <= 0:
            return result
        order = self.rng.jitter_order(
            len(runnable),
            window=max(4.0, self.config.phase_jitter * self.config.max_active_streams),
        )
        if len(order) > budget:
            order = order[:budget]
        for idx in order:
            stream = runnable[int(idx)]
            if stream.state is not StreamState.RUNNABLE:
                continue
            pos_before = stream.pos
            missing = stream.advance(read_ok, write_ok=write_ok)
            self._record_accesses(stream, pos_before, stream.pos)
            retired = stream.pos - pos_before
            result.accesses_retired += retired
            if stream.flops_per_access:
                result.flops_retired += retired * stream.flops_per_access
            if remote is not None and retired:
                result.remote_accesses += int(
                    remote[stream.pages[pos_before : stream.pos]].sum()
                )
            if missing is None:
                result.streams_completed += 1
                continue
            if not self.utlb.should_raise(stream.sm_id, missing):
                result.faults_coalesced += 1
                continue
            entry = FaultEntry(
                page=missing,
                is_write=stream.next_is_write(),
                timestamp_ns=clock.now,
                gpc_id=self.utlb.gpc_of_sm(stream.sm_id),
                utlb_id=self.utlb.gpc_of_sm(stream.sm_id),
                stream_id=stream.stream_id,
                sm_id=stream.sm_id,
            )
            if self.fault_buffer.try_push(entry):
                result.faults_enqueued += 1
            else:
                # Buffer full: the hardware drops the record; the warp
                # stays stalled and will re-walk after the next replay,
                # so forget the uTLB pending state to allow the re-raise.
                self.utlb.forget(stream.sm_id, missing)
                result.faults_dropped += 1
        # Completed streams free SM slots; backfill for the next phase.
        self.scheduler.refill()
        return result

    def _run_phase_soa(
        self,
        read_ok: np.ndarray,
        clock: SimClock,
        max_streams: int | None,
        write_ok: np.ndarray | None,
        remote: np.ndarray | None,
    ) -> GpuPhaseResult:
        """Vectorized phase: batch-advance the wavefront, then emit
        faults sequentially in the same jittered order as the scalar
        loop (uTLB coalescing and buffer-capacity drops are stateful and
        order-dependent; the advances themselves are independent)."""
        result = GpuPhaseResult()
        sched = self.scheduler
        sched.refill()
        run_ids = sched.runnable_ids()
        if run_ids.size == 0:
            return result
        budget = self.config.phase_width if max_streams is None else max_streams
        if budget <= 0:
            return result
        order = self.rng.jitter_order(
            int(run_ids.size),
            window=max(4.0, self.config.phase_jitter * self.config.max_active_streams),
        )
        if order.size > budget:
            order = order[:budget]
        sel = run_ids[order]
        soa = sched.soa
        pos0, pos1, miss = advance_batch(soa, sel, read_ok, write_ok)
        retired = pos1 - pos0
        result.accesses_retired = int(retired.sum())
        nz = np.flatnonzero(soa.flops[sel])
        if nz.size:
            # accumulate in visit order, skipping zero-FLOP streams, so
            # the float sum is bitwise-identical to the scalar loop
            contrib = retired[nz] * soa.flops[sel[nz]]
            acc = 0.0
            for v in contrib.tolist():  # Python floats: same values, no
                acc += v  # per-element numpy scalar boxing
            result.flops_retired = acc
        if result.accesses_retired and (
            self.access_counters is not None or remote is not None
        ):
            touched = soa.pages_flat[span_indices(pos0, pos1)]
            if self.access_counters is not None:
                if self._pages_per_vablock is None:
                    raise ConfigurationError(
                        "access counters enabled but VABlock geometry not set"
                    )
                np.add.at(self.access_counters, touched // self._pages_per_vablock, 1)
            if remote is not None:
                result.remote_accesses = int(remote[touched].sum())
        done_mask = miss < 0
        n_done = int(done_mask.sum())
        if n_done:
            result.streams_completed = n_done
            sched.mark_done(sel[done_mask])
        if n_done < sel.size:
            f_rows = np.flatnonzero(~done_mask)
            f_ids = sel[f_rows]
            f_pages = miss[f_rows]
            sched.mark_stalled(f_ids, f_pages)
            utlb = self.utlb
            f_gpcs = (soa.sm_id[f_ids] // utlb.sms_per_gpc) % utlb.n_gpcs
            buf = self.fault_buffer
            # One vectorized pass replaces the per-entry
            # should_raise_gpc / push_fields / forget_gpc loop; drops
            # (buffer full) are resolved against the free-slot budget
            # with identical visit-order semantics.
            push_mask, n_coalesced, n_dropped = utlb.raise_batch(
                f_gpcs, f_pages, buf.free_slots
            )
            result.faults_coalesced += n_coalesced
            result.faults_dropped += n_dropped
            if n_dropped:
                buf.count_dropped(n_dropped)
            p_rows = np.flatnonzero(push_mask)
            if p_rows.size:
                p_gpcs = f_gpcs[p_rows]
                buf.push_arrays(
                    f_pages[p_rows],
                    soa.writes_flat[pos1[f_rows[p_rows]]],
                    clock.now,
                    p_gpcs,
                    p_gpcs,
                    soa.stream_ids[f_ids[p_rows]],
                    soa.sm_id[f_ids[p_rows]],
                )
                result.faults_enqueued += int(p_rows.size)
        sched.refill()
        return result

    def _record_accesses(self, stream: WarpStream, start: int, stop: int) -> None:
        if self.access_counters is None or stop <= start:
            return
        if self._pages_per_vablock is None:
            raise ConfigurationError(
                "access counters enabled but VABlock geometry not set"
            )
        touched = stream.pages[start:stop]
        np.add.at(self.access_counters, touched // self._pages_per_vablock, 1)

    def load_kernel(self, streams: list[WarpStream]) -> None:
        """Launch a new kernel: fresh scheduler, persistent device state.

        The fault buffer, uTLB filters, and access counters live across
        kernel launches (they are hardware); only the grid changes.  The
        previous kernel must have completed.
        """
        if not self.scheduler.all_done():
            raise ConfigurationError("loading a kernel while one is still running")
        self.scheduler = self._scheduler_cls(
            streams,
            rng=self.rng.fork(f"scheduler-k{self._kernel_counter}"),
            max_active=self.config.max_active_streams,
            n_sms=self.config.n_sms,
            jitter=self.config.scheduler_jitter,
        )
        self._kernel_counter += 1

    def deliver_replay(self) -> int:
        """A replay notification arrives: clear uTLB filters, wake warps."""
        self.utlb.on_replay()
        return self.scheduler.wake_all_stalled()

    def kernel_finished(self) -> bool:
        return self.scheduler.all_done()

    def has_stalled_streams(self) -> bool:
        return self.scheduler.has_stalled()
