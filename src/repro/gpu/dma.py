"""The DMA/copy-engine model for host-device transfers.

Fault servicing ends with the driver issuing copy commands that the GPU's
copy engines execute over the interconnect (Fig. 2 step 3).  The model
captures what dominates transfer cost in practice:

* a fixed per-transfer setup (command submission, doorbell, engine
  launch) - this is why the driver coalesces contiguous pages into as few
  transfers as possible and why "a batch containing fewer fully faulted
  VABlocks takes much less time" (Section III-D),
* wire time proportional to bytes at the interconnect bandwidth.

The engine also keeps lifetime transfer statistics: total H2D/D2H bytes
moved is the quantity behind the paper's "504 GB moved for a 32 GB random
problem" observation (Section V-A3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.costmodel import CostModel


@dataclass
class DmaStats:
    """Lifetime transfer totals."""

    h2d_bytes: int = 0
    d2h_bytes: int = 0
    h2d_transfers: int = 0
    d2h_transfers: int = 0
    #: injected-failure retries (chaos only; always 0 in clean runs).
    #: Retries re-send on the wire but do not inflate the byte totals -
    #: those model the *payload* the paper's "bytes moved" numbers count.
    chaos_retries: int = 0

    @property
    def total_bytes(self) -> int:
        return self.h2d_bytes + self.d2h_bytes


def contiguous_runs(pages: np.ndarray) -> int:
    """Number of maximal contiguous runs in a sorted page array.

    Each run becomes one DMA transfer; scattered pages each cost a
    transfer setup, which is the mechanical reason random access patterns
    pay more per byte (Section III-D insight one).
    """
    pages = np.asarray(pages, dtype=np.int64)
    if pages.size == 0:
        return 0
    if pages.size > 1 and (np.diff(pages) <= 0).any():
        raise ConfigurationError("contiguous_runs expects strictly ascending pages")
    return int((np.diff(pages) > 1).sum()) + 1


class DmaEngine:
    """Cost + accounting for host-device copies."""

    def __init__(self, cost: CostModel, page_size: int, chaos=None) -> None:
        self.cost = cost
        self.page_size = page_size
        self.stats = DmaStats()
        #: chaos injector (None unless model-level injection is armed);
        #: same zero-cost sentinel pattern as UVMSAN.
        self.chaos = chaos

    def _chaos_transfer_ns(self, nbytes: int, transfers: int) -> int:
        """Extra ns from an injected transfer failure (0 when inert).

        A fired ``model.dma_transfer_fail`` costs ``failures`` full
        re-issues of the transfer, modelling the driver's bounded
        in-engine retry; failures beyond ``max_retries`` escalate to
        :class:`~repro.chaos.injector.ChaosTransferError` (the attempt
        is then retried at the job level).
        """
        if self.chaos is None:
            return 0
        from repro.chaos.injector import ChaosTransferError
        from repro.chaos.plan import MODEL_DMA_FAIL

        spec = self.chaos.fire(MODEL_DMA_FAIL)
        if spec is None:
            return 0
        failures = int(spec.args.get("failures", 1))
        max_retries = int(spec.args.get("max_retries", 3))
        if failures > max_retries:
            raise ChaosTransferError(
                f"chaos: DMA transfer failed {failures} times "
                f"(in-driver retry bound {max_retries})"
            )
        self.stats.chaos_retries += failures
        return failures * self.cost.dma_transfer_ns(nbytes, transfers=transfers)

    def h2d_pages(self, pages: np.ndarray, staging_chunk_bytes: int = 2 << 20) -> int:
        """Copy host pages to device; returns simulated ns.

        ``pages`` must be sorted ascending.  The driver stages scattered
        source pages into contiguous staging buffers before the copy, so
        scattered pages within one service do NOT each pay a transfer
        setup: one chunked transfer per ``staging_chunk_bytes`` is issued
        (the per-page staging cost is charged separately by the
        servicer).  This is the coalescing that makes dense VABlock bins
        cheap - the per-*bin* setup is what scattered batches multiply.
        """
        pages = np.asarray(pages, dtype=np.int64)
        if pages.size == 0:
            return 0
        nbytes = int(pages.size) * self.page_size
        transfers = max(1, -(-nbytes // staging_chunk_bytes))
        self.stats.h2d_bytes += nbytes
        self.stats.h2d_transfers += transfers
        ns = self.cost.dma_transfer_ns(nbytes, transfers=transfers)
        if self.chaos is not None:
            ns += self._chaos_transfer_ns(nbytes, transfers)
        return ns

    def d2h_pages(self, pages: np.ndarray, staging_chunk_bytes: int = 2 << 20) -> int:
        """Copy device pages back to host (eviction write-back)."""
        pages = np.asarray(pages, dtype=np.int64)
        if pages.size == 0:
            return 0
        nbytes = int(pages.size) * self.page_size
        transfers = max(1, -(-nbytes // staging_chunk_bytes))
        self.stats.d2h_bytes += nbytes
        self.stats.d2h_transfers += transfers
        ns = self.cost.dma_transfer_ns(nbytes, transfers=transfers)
        if self.chaos is not None:
            ns += self._chaos_transfer_ns(nbytes, transfers)
        return ns

    def d2h_page_count(self, npages: int, runs: int = 1) -> int:
        """D2H cost for ``npages`` pages already known to be contiguous-ish."""
        if npages <= 0:
            return 0
        nbytes = npages * self.page_size
        self.stats.d2h_bytes += nbytes
        self.stats.d2h_transfers += runs
        ns = self.cost.dma_transfer_ns(nbytes, transfers=runs)
        if self.chaos is not None:
            ns += self._chaos_transfer_ns(nbytes, runs)
        return ns
