"""The hardware fault buffer and fault-pointer queue.

Section III-C, following NVIDIA's open-gpu documentation: *"the driver
uses a circular device-side queue to store a fault pointer when a fault
occurs.  The host can read these pointers, which subsequently point to
locations in the global GPU fault buffer that contain the full fault
information."*  Entries may not be immediately ready due to asynchrony,
forcing the driver to poll the "ready" field.

The simulator models:

* bounded capacity - when the buffer fills, further faulting warps simply
  remain stalled and re-fault after the next replay (hardware drops are
  counted, never lost: the warp still holds its access),
* per-entry ready times - an entry enqueued at time *t* becomes readable
  at *t + ready_delay*, producing the polling cost the paper attributes
  to pre-processing,
* flushes - the batch-flush replay policy empties the buffer remotely,
* duplicate entries - distinct uTLBs (or replays with outstanding
  faults) may enqueue the same page repeatedly; the buffer faithfully
  stores duplicates because deduplication is the *driver's* job.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FaultEntry:
    """One fault record as the hardware reports it.

    Note what is *absent*: no SM id, no thread id, no PC - the driver
    "lacks sufficient information for correlating faults with their
    generating GPU core/thread" (Section IV-A).  The GPC and uTLB ids are
    present (Section VI-B says tracing the originating GPC/uTLB is
    possible); the stream id is simulator-internal ground truth used only
    by the what-if origin-prefetcher extension and by trace analysis,
    never by the stock driver policies.
    """

    page: int
    is_write: bool
    timestamp_ns: int
    gpc_id: int
    utlb_id: int
    stream_id: int  # ground truth, hidden from stock driver policies
    sm_id: int = -1  # what-if origin info (Section VI-B), ditto


class FaultBuffer:
    """Circular fault buffer + pointer queue with ready-flag semantics."""

    def __init__(self, capacity: int, ready_delay_ns: int = 1_500) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"fault buffer capacity must be > 0, got {capacity}")
        if ready_delay_ns < 0:
            raise ConfigurationError("ready_delay_ns must be >= 0")
        self.capacity = capacity
        self.ready_delay_ns = ready_delay_ns
        self._queue: deque[FaultEntry] = deque()
        # lifetime statistics
        self.total_enqueued = 0
        self.total_dropped = 0
        self.total_flushed = 0
        self.high_watermark = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self._queue)

    def try_push(self, entry: FaultEntry) -> bool:
        """Enqueue a fault; returns False (drop) when the buffer is full.

        A dropped fault is not lost work: the stalled warp re-raises it
        after the next replay, exactly as real hardware behaves under
        fault-buffer pressure.
        """
        if len(self._queue) >= self.capacity:
            self.total_dropped += 1
            return False
        self._queue.append(entry)
        self.total_enqueued += 1
        self.high_watermark = max(self.high_watermark, len(self._queue))
        return True

    def peek(self) -> Optional[FaultEntry]:
        return self._queue[0] if self._queue else None

    def head_ready(self, now_ns: int) -> bool:
        """Whether the head entry's ready flag is already set."""
        if not self._queue:
            return False
        return now_ns >= self._queue[0].timestamp_ns + self.ready_delay_ns

    def pop_ready(self, now_ns: int) -> tuple[Optional[FaultEntry], int]:
        """Pop the head entry, polling until its ready flag is set.

        Returns ``(entry, polls)`` where ``polls`` is the number of poll
        iterations the driver had to spin before the entry was readable
        (0 when it was already ready).  Returns ``(None, 0)`` on empty.
        """
        if not self._queue:
            return None, 0
        entry = self._queue[0]
        ready_at = entry.timestamp_ns + self.ready_delay_ns
        polls = 0
        if now_ns < ready_at:
            # ceil((ready_at - now) / poll granularity) iterations; the
            # caller charges fault_poll_ns per iteration.
            delta = ready_at - now_ns
            polls = max(1, -(-delta // max(self.ready_delay_ns, 1)))
        self._queue.popleft()
        return entry, polls

    def flush(self) -> int:
        """Empty the buffer remotely (batch-flush policy); returns count."""
        n = len(self._queue)
        self._queue.clear()
        self.total_flushed += n
        return n

    def snapshot_pages(self) -> list[int]:
        """Pages of all queued entries, in order (for tests/analysis)."""
        return [e.page for e in self._queue]
