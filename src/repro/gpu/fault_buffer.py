"""The hardware fault buffer and fault-pointer queue.

Section III-C, following NVIDIA's open-gpu documentation: *"the driver
uses a circular device-side queue to store a fault pointer when a fault
occurs.  The host can read these pointers, which subsequently point to
locations in the global GPU fault buffer that contain the full fault
information."*  Entries may not be immediately ready due to asynchrony,
forcing the driver to poll the "ready" field.

The simulator models:

* bounded capacity - when the buffer fills, further faulting warps simply
  remain stalled and re-fault after the next replay (hardware drops are
  counted, never lost: the warp still holds its access),
* per-entry ready times - an entry enqueued at time *t* becomes readable
  at *t + ready_delay*, producing the polling cost the paper attributes
  to pre-processing,
* flushes - the batch-flush replay policy empties the buffer remotely,
* duplicate entries - distinct uTLBs (or replays with outstanding
  faults) may enqueue the same page repeatedly; the buffer faithfully
  stores duplicates because deduplication is the *driver's* job.

The storage is literally the circular buffer the docs describe: parallel
field arrays indexed by a head/size ring.  Producers push scalar fields
(:meth:`FaultBuffer.push_fields`); the driver drains whole batches as
field arrays (:meth:`FaultBuffer.drain_arrays`) so pre-processing never
materializes per-entry objects.  :class:`FaultEntry` remains the
per-entry view for tests and analysis code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FaultEntry:
    """One fault record as the hardware reports it.

    Note what is *absent*: no SM id, no thread id, no PC - the driver
    "lacks sufficient information for correlating faults with their
    generating GPU core/thread" (Section IV-A).  The GPC and uTLB ids are
    present (Section VI-B says tracing the originating GPC/uTLB is
    possible); the stream id is simulator-internal ground truth used only
    by the what-if origin-prefetcher extension and by trace analysis,
    never by the stock driver policies.
    """

    page: int
    is_write: bool
    timestamp_ns: int
    gpc_id: int
    utlb_id: int
    stream_id: int  # ground truth, hidden from stock driver policies
    sm_id: int = -1  # what-if origin info (Section VI-B), ditto


class FaultBuffer:
    """Circular fault buffer + pointer queue with ready-flag semantics."""

    def __init__(self, capacity: int, ready_delay_ns: int = 1_500) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"fault buffer capacity must be > 0, got {capacity}")
        if ready_delay_ns < 0:
            raise ConfigurationError("ready_delay_ns must be >= 0")
        self.capacity = capacity
        self.ready_delay_ns = ready_delay_ns
        self._page = np.zeros(capacity, dtype=np.int64)
        self._write = np.zeros(capacity, dtype=bool)
        self._ts = np.zeros(capacity, dtype=np.int64)
        self._gpc = np.zeros(capacity, dtype=np.int64)
        self._utlb = np.zeros(capacity, dtype=np.int64)
        self._stream = np.zeros(capacity, dtype=np.int64)
        self._sm = np.zeros(capacity, dtype=np.int64)
        self._head = 0
        self._size = 0
        # lifetime statistics
        self.total_enqueued = 0
        self.total_dropped = 0
        self.total_flushed = 0
        self.high_watermark = 0

    def __len__(self) -> int:
        return self._size

    @property
    def free_slots(self) -> int:
        return self.capacity - self._size

    # -- producer side -------------------------------------------------------
    def push_fields(
        self,
        page: int,
        is_write: bool,
        timestamp_ns: int,
        gpc_id: int,
        utlb_id: int,
        stream_id: int,
        sm_id: int = -1,
    ) -> bool:
        """Enqueue one fault record; returns False (drop) when full.

        A dropped fault is not lost work: the stalled warp re-raises it
        after the next replay, exactly as real hardware behaves under
        fault-buffer pressure.
        """
        if self._size >= self.capacity:
            self.total_dropped += 1
            return False
        i = self._head + self._size
        if i >= self.capacity:
            i -= self.capacity
        self._page[i] = page
        self._write[i] = is_write
        self._ts[i] = timestamp_ns
        self._gpc[i] = gpc_id
        self._utlb[i] = utlb_id
        self._stream[i] = stream_id
        self._sm[i] = sm_id
        self._size += 1
        self.total_enqueued += 1
        if self._size > self.high_watermark:
            self.high_watermark = self._size
        return True

    def push_arrays(
        self,
        pages: np.ndarray,
        writes: np.ndarray,
        timestamp_ns: int,
        gpcs: np.ndarray,
        utlbs: np.ndarray,
        streams: np.ndarray,
        sms: np.ndarray,
    ) -> int:
        """Enqueue a batch of fault records sharing one timestamp.

        The caller guarantees the batch fits (``len(pages) <=``
        :attr:`free_slots`) - capacity drops are resolved *before* the
        write by :meth:`~repro.gpu.tlb.UTlbArray.raise_batch` and
        reported through :meth:`count_dropped`.  Semantically identical
        to a :meth:`push_fields` loop, minus the per-entry Python calls.
        """
        n = int(pages.size)
        if n == 0:
            return 0
        if n > self.free_slots:
            raise ConfigurationError(
                f"batch of {n} fault records exceeds {self.free_slots} free slots"
            )
        tail = self._head + self._size
        if tail >= self.capacity:
            tail -= self.capacity
        idx = tail + np.arange(n, dtype=np.int64)
        if tail + n > self.capacity:
            idx[idx >= self.capacity] -= self.capacity
        self._page[idx] = pages
        self._write[idx] = writes
        self._ts[idx] = timestamp_ns
        self._gpc[idx] = gpcs
        self._utlb[idx] = utlbs
        self._stream[idx] = streams
        self._sm[idx] = sms
        self._size += n
        self.total_enqueued += n
        if self._size > self.high_watermark:
            self.high_watermark = self._size
        return n

    def count_dropped(self, n: int) -> None:
        """Account capacity drops resolved outside :meth:`push_fields`."""
        self.total_dropped += int(n)

    def try_push(self, entry: FaultEntry) -> bool:
        """Enqueue a :class:`FaultEntry`; returns False (drop) when full."""
        return self.push_fields(
            entry.page,
            entry.is_write,
            entry.timestamp_ns,
            entry.gpc_id,
            entry.utlb_id,
            entry.stream_id,
            entry.sm_id,
        )

    # -- consumer side -------------------------------------------------------
    def _entry_at(self, i: int) -> FaultEntry:
        return FaultEntry(
            page=int(self._page[i]),
            is_write=bool(self._write[i]),
            timestamp_ns=int(self._ts[i]),
            gpc_id=int(self._gpc[i]),
            utlb_id=int(self._utlb[i]),
            stream_id=int(self._stream[i]),
            sm_id=int(self._sm[i]),
        )

    def _ring_indices(self, n: int) -> np.ndarray:
        idx = self._head + np.arange(n, dtype=np.int64)
        if self._head + n > self.capacity:
            idx[idx >= self.capacity] -= self.capacity
        return idx

    def peek(self) -> Optional[FaultEntry]:
        return self._entry_at(self._head) if self._size else None

    def head_ready(self, now_ns: int) -> bool:
        """Whether the head entry's ready flag is already set."""
        if not self._size:
            return False
        return now_ns >= int(self._ts[self._head]) + self.ready_delay_ns

    def pop_ready(self, now_ns: int) -> tuple[Optional[FaultEntry], int]:
        """Pop the head entry, polling until its ready flag is set.

        Returns ``(entry, polls)`` where ``polls`` is the number of poll
        iterations the driver had to spin before the entry was readable
        (0 when it was already ready).  Returns ``(None, 0)`` on empty.
        """
        if not self._size:
            return None, 0
        entry = self._entry_at(self._head)
        ready_at = entry.timestamp_ns + self.ready_delay_ns
        polls = 0
        if now_ns < ready_at:
            # ceil((ready_at - now) / poll granularity) iterations; the
            # caller charges fault_poll_ns per iteration.
            delta = ready_at - now_ns
            polls = max(1, -(-delta // max(self.ready_delay_ns, 1)))
        self._head += 1
        if self._head >= self.capacity:
            self._head = 0
        self._size -= 1
        return entry, polls

    def drain_arrays(
        self,
        now_ns: int,
        max_entries: int,
        stop_at_not_ready: bool = False,
    ) -> Optional[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]]:
        """Pop up to ``max_entries`` as parallel field arrays.

        Returns ``(pages, writes, timestamps, gpcs, utlbs, streams, sms,
        polls)`` or ``None`` when the buffer is empty.  Semantics match a
        :meth:`pop_ready` loop at a fixed ``now_ns``: every popped
        unready entry contributes its poll count; with
        ``stop_at_not_ready`` the batch still takes the first entry
        (polling for it if needed - forward progress) but closes before
        any subsequent unready entry.
        """
        n = min(self._size, max_entries)
        if n <= 0:
            return None
        idx = self._ring_indices(n)
        ts = self._ts[idx]
        ready_at = ts + self.ready_delay_ns
        if stop_at_not_ready and n > 1:
            unready_rest = ready_at[1:] > now_ns
            if unready_rest.any():
                n = int(unready_rest.argmax()) + 1
                idx = idx[:n]
                ts = ts[:n]
                ready_at = ready_at[:n]
        delta = ready_at - now_ns
        unready = delta > 0
        if unready.any():
            per_entry = np.maximum(1, -(-delta // max(self.ready_delay_ns, 1)))
            polls = int(per_entry[unready].sum())
        else:
            polls = 0
        out = (
            self._page[idx],
            self._write[idx],
            ts,
            self._gpc[idx],
            self._utlb[idx],
            self._stream[idx],
            self._sm[idx],
            polls,
        )
        self._head = (self._head + n) % self.capacity
        self._size -= n
        return out

    def flush(self) -> int:
        """Empty the buffer remotely (batch-flush policy); returns count."""
        n = self._size
        self._head = (self._head + n) % self.capacity
        self._size = 0
        self.total_flushed += n
        return n

    def snapshot_pages(self) -> list[int]:
        """Pages of all queued entries, in order (for tests/analysis)."""
        if not self._size:
            return []
        return self._page[self._ring_indices(self._size)].tolist()
