"""Warp streams: the unit of GPU execution the simulator advances.

A :class:`WarpStream` abstracts a warp (or a coalesced group of warps,
e.g. a thread block's memory-access footprint) as an ordered sequence of
page accesses.  This is the right granularity for UVM analysis because
the driver only ever observes *page*-level faults; intra-page addresses
never matter (Section IV-B analyzes workloads entirely at page
granularity).

Far-fault semantics follow Section III-E: replayable faults "do not block
the faulting GPU compute unit, which can continue running non-faulting
warps until a replay command is received".  Accordingly a stream that
misses becomes STALLED and is only retried when the driver issues a
replay notification; other streams keep running.
"""

from __future__ import annotations

import enum
from typing import Optional

import numpy as np

from repro.errors import SimulationError


class StreamState(enum.Enum):
    """Lifecycle of a warp stream."""

    PENDING = "pending"  # not yet scheduled onto an SM
    RUNNABLE = "runnable"  # scheduled, can advance
    STALLED = "stalled"  # waiting on a far-fault replay
    DONE = "done"  # all accesses retired


class WarpStream:
    """An ordered page-access sequence with stall/replay state."""

    __slots__ = (
        "stream_id",
        "pages",
        "writes",
        "pos",
        "state",
        "stalled_on",
        "sm_id",
        "faults_raised",
        "accesses_retired",
        "flops_per_access",
    )

    def __init__(
        self,
        stream_id: int,
        pages: np.ndarray,
        writes: Optional[np.ndarray] = None,
        flops_per_access: float = 0.0,
    ) -> None:
        self.stream_id = stream_id
        self.pages = np.ascontiguousarray(pages, dtype=np.int64)
        if self.pages.ndim != 1:
            raise SimulationError("stream pages must be a 1-D array")
        if writes is not None:
            writes = np.ascontiguousarray(writes, dtype=bool)
            if writes.shape != self.pages.shape:
                raise SimulationError("writes mask must match pages shape")
        self.writes = writes
        self.pos = 0
        self.state = StreamState.PENDING
        self.stalled_on: Optional[int] = None
        self.sm_id = -1  # assigned by the scheduler at dispatch
        self.faults_raised = 0
        self.accesses_retired = 0
        #: compute attributed per retired access (e.g. a GEMM block's
        #: FLOPs spread over its page touches); powers Fig. 10's
        #: compute-rate axis.
        self.flops_per_access = float(flops_per_access)

    def __len__(self) -> int:
        return len(self.pages)

    @property
    def remaining(self) -> int:
        return len(self.pages) - self.pos

    def next_page(self) -> Optional[int]:
        """The page of the next access, or None when retired."""
        if self.pos >= len(self.pages):
            return None
        return int(self.pages[self.pos])

    def next_is_write(self) -> bool:
        if self.writes is None:
            return False
        return bool(self.writes[self.pos])

    def advance(
        self,
        read_ok: np.ndarray,
        write_ok: Optional[np.ndarray] = None,
        scan_chunk: int = 8192,  # lint: allow(units-magic-literal) accesses per chunk
    ) -> Optional[int]:
        """Retire accesses until the first miss; return the missing page.

        Scans the access sequence from the current position, retiring
        every access whose page is accessible (``read_ok`` for loads,
        ``write_ok`` for stores - a store to a resident-but-read-only
        page is a *permission-upgrade* miss, the read-duplication
        collapse path).  On a miss the stream stalls and the faulting
        page is returned; on completion the stream is DONE and ``None``
        is returned.

        ``write_ok`` defaults to ``read_ok`` (uniform permissions, the
        stock migration behaviour).  Scanning happens in vectorized
        chunks so long reuse-heavy streams advance at numpy speed.
        """
        if self.state not in (StreamState.RUNNABLE, StreamState.PENDING):
            raise SimulationError(
                f"advancing stream {self.stream_id} in state {self.state}"
            )
        self.state = StreamState.RUNNABLE
        check_writes = write_ok is not None and self.writes is not None
        n = len(self.pages)
        while self.pos < n:
            stop = min(self.pos + scan_chunk, n)
            window = self.pages[self.pos : stop]
            if check_writes:
                w = self.writes[self.pos : stop]
                hit = np.where(w, write_ok[window], read_ok[window])
            else:
                hit = read_ok[window]
            # single scan: argmin finds the first False; if that element
            # is True the whole window hit (no separate .all() pass)
            first_miss = int(hit.argmin())
            if hit[first_miss]:
                retired = stop - self.pos
                self.accesses_retired += retired
                self.pos = stop
                continue
            self.accesses_retired += first_miss
            self.pos += first_miss
            page = int(self.pages[self.pos])
            self.state = StreamState.STALLED
            self.stalled_on = page
            self.faults_raised += 1
            return page
        self.state = StreamState.DONE
        self.stalled_on = None
        return None

    def wake(self) -> None:
        """Replay notification observed: the stalled access will retry.

        The retried access may fault again if its page is still not
        resident (the paper's duplicate-fault mechanism).
        """
        if self.state is StreamState.STALLED:
            self.state = StreamState.RUNNABLE
            self.stalled_on = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WarpStream(id={self.stream_id}, {self.pos}/{len(self.pages)},"
            f" {self.state.value})"
        )
