"""uTLB fault coalescing.

Each graphics processing cluster (GPC) owns a uTLB that performs the page
table walk; on a miss it raises a far-fault into the fault buffer
(Section III-A).  A uTLB tracks the translations it is already waiting
on, so multiple warps on the same GPC missing the same page in the same
interval produce *one* fault entry; warps on different GPCs produce
duplicates (fault-source erasure means the driver cannot tell).

The pending set of a uTLB is cleared by a replay notification: after a
replay, an unsatisfied access walks the table and faults again, which is
exactly how duplicate faults reach the driver across replays.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class UTlbArray:
    """Per-GPC pending-fault filters."""

    def __init__(self, n_gpcs: int = 6, sms_per_gpc: int = 14) -> None:
        if n_gpcs <= 0 or sms_per_gpc <= 0:
            raise ConfigurationError("n_gpcs and sms_per_gpc must be positive")
        self.n_gpcs = n_gpcs
        self.sms_per_gpc = sms_per_gpc
        self._pending: list[set[int]] = [set() for _ in range(n_gpcs)]
        self.coalesced = 0  # same-GPC duplicate accesses absorbed
        self.raised = 0  # fault entries actually emitted

    def gpc_of_sm(self, sm_id: int) -> int:
        """GPC owning a given SM (round-robin placement)."""
        if sm_id < 0:
            raise ConfigurationError(f"invalid SM id {sm_id}")
        return (sm_id // self.sms_per_gpc) % self.n_gpcs

    def should_raise(self, sm_id: int, page: int) -> bool:
        """Whether a miss on ``page`` from ``sm_id`` emits a fault entry.

        Returns False when this GPC's uTLB already has the page pending
        (the access is coalesced onto the outstanding fault).
        """
        return self.should_raise_gpc(self.gpc_of_sm(sm_id), page)

    def should_raise_gpc(self, gpc: int, page: int) -> bool:
        """Like :meth:`should_raise` with the GPC already resolved (the
        SoA engine precomputes GPC ids for a whole phase in one shot)."""
        pending = self._pending[gpc]
        if page in pending:
            self.coalesced += 1
            return False
        pending.add(page)
        self.raised += 1
        return True

    def forget(self, sm_id: int, page: int) -> None:
        """Drop a pending entry (the fault-buffer push was dropped).

        Without this the uTLB would coalesce the warp's re-raise after
        the next replay onto a fault record that never reached the
        buffer, losing the access forever.
        """
        self.forget_gpc(self.gpc_of_sm(sm_id), page)

    def forget_gpc(self, gpc: int, page: int) -> None:
        self._pending[gpc].discard(page)
        self.raised -= 1

    def on_replay(self) -> None:
        """A replay retries all outstanding accesses: clear pending sets.

        Unsatisfied accesses will re-walk and re-raise, creating the
        duplicate faults the batch-flush policy exists to suppress.
        """
        for pending in self._pending:
            pending.clear()

    def pending_total(self) -> int:
        return sum(len(p) for p in self._pending)
