"""uTLB fault coalescing.

Each graphics processing cluster (GPC) owns a uTLB that performs the page
table walk; on a miss it raises a far-fault into the fault buffer
(Section III-A).  A uTLB tracks the translations it is already waiting
on, so multiple warps on the same GPC missing the same page in the same
interval produce *one* fault entry; warps on different GPCs produce
duplicates (fault-source erasure means the driver cannot tell).

The pending set of a uTLB is cleared by a replay notification: after a
replay, an unsatisfied access walks the table and faults again, which is
exactly how duplicate faults reach the driver across replays.

The pending filters are stored as one boolean matrix (GPC x page,
lazily sized to the highest page seen) so the SoA engine can test and
update a whole phase's fault batch with vectorized gathers instead of a
Python set probe per access (:meth:`UTlbArray.raise_batch`).  The
scalar methods (:meth:`should_raise` / :meth:`forget`) operate on the
same matrix, so both engines observe identical coalescing state.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


class UTlbArray:
    """Per-GPC pending-fault filters."""

    def __init__(self, n_gpcs: int = 6, sms_per_gpc: int = 14) -> None:
        if n_gpcs <= 0 or sms_per_gpc <= 0:
            raise ConfigurationError("n_gpcs and sms_per_gpc must be positive")
        self.n_gpcs = n_gpcs
        self.sms_per_gpc = sms_per_gpc
        #: (n_gpcs, n_pages) pending matrix, grown on demand; starts
        #: empty because the page-space extent is unknown at build time.
        self._pending = np.zeros((n_gpcs, 0), dtype=bool)
        self._pending_count = 0
        self.coalesced = 0  # same-GPC duplicate accesses absorbed
        self.raised = 0  # fault entries actually emitted

    def _ensure_pages(self, max_page: int) -> None:
        """Grow the pending matrix to cover ``max_page`` (geometric)."""
        width = self._pending.shape[1]
        if max_page < width:
            return
        new_width = max(max_page + 1, width * 2, 1024)
        grown = np.zeros((self.n_gpcs, new_width), dtype=bool)
        if width:
            grown[:, :width] = self._pending
        self._pending = grown

    def gpc_of_sm(self, sm_id: int) -> int:
        """GPC owning a given SM (round-robin placement)."""
        if sm_id < 0:
            raise ConfigurationError(f"invalid SM id {sm_id}")
        return (sm_id // self.sms_per_gpc) % self.n_gpcs

    def should_raise(self, sm_id: int, page: int) -> bool:
        """Whether a miss on ``page`` from ``sm_id`` emits a fault entry.

        Returns False when this GPC's uTLB already has the page pending
        (the access is coalesced onto the outstanding fault).
        """
        return self.should_raise_gpc(self.gpc_of_sm(sm_id), page)

    def should_raise_gpc(self, gpc: int, page: int) -> bool:
        """Like :meth:`should_raise` with the GPC already resolved (the
        SoA engine precomputes GPC ids for a whole phase in one shot)."""
        self._ensure_pages(page)
        if self._pending[gpc, page]:
            self.coalesced += 1
            return False
        self._pending[gpc, page] = True
        self._pending_count += 1
        self.raised += 1
        return True

    def raise_batch(
        self, gpcs: np.ndarray, pages: np.ndarray, budget: int
    ) -> tuple[np.ndarray, int, int]:
        """Vectorized emission for one phase's fault batch.

        Replays the exact sequential semantics of the per-entry loop

        ``should_raise_gpc`` -> push (success) / ``forget_gpc`` (buffer
        full, counted as a drop)

        over entries visited in order, with ``budget`` free fault-buffer
        slots.  Only *new* (gpc, page) pairs consume slots; once the
        budget is exhausted every further new pair is raised, dropped,
        and forgotten again - net state unchanged, one drop counted -
        which collapses to: the first ``budget`` distinct non-pending
        pairs (in visit order) are pushed, later occurrences of a pushed
        or already-pending pair coalesce, and everything else drops.

        Returns ``(push_mask, n_coalesced, n_dropped)`` aligned with the
        inputs; pending state and the coalesced/raised counters are
        updated exactly as the sequential loop would leave them.
        """
        m = int(pages.size)
        if m == 0:
            return np.zeros(0, dtype=bool), 0, 0
        self._ensure_pages(int(pages.max()))
        width = self._pending.shape[1]
        already = self._pending[gpcs, pages]
        combined = gpcs * np.int64(width) + pages
        _, first_idx, inverse = np.unique(
            combined, return_index=True, return_inverse=True
        )
        is_first = np.zeros(m, dtype=bool)
        is_first[first_idx] = True
        new = is_first & ~already
        push_mask = np.zeros(m, dtype=bool)
        new_rows = np.flatnonzero(new)
        n_push = min(int(new_rows.size), max(0, int(budget)))
        if n_push:
            push_rows = new_rows[:n_push]
            push_mask[push_rows] = True
            self._pending[gpcs[push_rows], pages[push_rows]] = True
            self._pending_count += n_push
        # coalesced: non-pushed entries whose pair is pending - either
        # pre-batch pending or raised by a pushed entry earlier on.
        pushed_key = np.zeros(first_idx.size, dtype=bool)
        if n_push:
            pushed_key[inverse[push_mask]] = True
        coalesce = ~push_mask & (already | pushed_key[inverse])
        n_coalesced = int(coalesce.sum())
        n_dropped = m - n_push - n_coalesced
        self.coalesced += n_coalesced
        self.raised += n_push
        return push_mask, n_coalesced, n_dropped

    def forget(self, sm_id: int, page: int) -> None:
        """Drop a pending entry (the fault-buffer push was dropped).

        Without this the uTLB would coalesce the warp's re-raise after
        the next replay onto a fault record that never reached the
        buffer, losing the access forever.
        """
        self.forget_gpc(self.gpc_of_sm(sm_id), page)

    def forget_gpc(self, gpc: int, page: int) -> None:
        if page < self._pending.shape[1] and self._pending[gpc, page]:
            self._pending[gpc, page] = False
            self._pending_count -= 1
        self.raised -= 1

    def on_replay(self) -> None:
        """A replay retries all outstanding accesses: clear pending sets.

        Unsatisfied accesses will re-walk and re-raise, creating the
        duplicate faults the batch-flush policy exists to suppress.
        """
        if self._pending_count:
            self._pending[:] = False
            self._pending_count = 0

    def pending_total(self) -> int:
        return self._pending_count
