"""The GPU block scheduler model.

Section IV-B (Fig. 7, "regular" pattern): *"the GPU scheduler will prefer
lower-numbered blocks during access, but there is no fixed ordering due
to the nondeterminism of the GPU parallelism."*

The scheduler therefore dispatches streams in an order that is mostly
ascending with seeded local jitter, keeps at most ``max_active`` streams
resident on SMs at once (occupancy limit), assigns SM ids round-robin,
and backfills as streams retire.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.errors import SimulationError
from repro.gpu.warp import StreamState, WarpStream
from repro.sim.rng import SimRng


class BlockScheduler:
    """Dispatches warp streams onto SMs with bounded occupancy."""

    def __init__(
        self,
        streams: Sequence[WarpStream],
        rng: SimRng,
        max_active: int = 2048,
        n_sms: int = 80,
        jitter: float = 0.08,
    ) -> None:
        if max_active <= 0:
            raise SimulationError(f"max_active must be positive, got {max_active}")
        if n_sms <= 0:
            raise SimulationError(f"n_sms must be positive, got {n_sms}")
        self.streams = list(streams)
        self.max_active = max_active
        self.n_sms = n_sms
        # Dispatch order: ascending with nondeterministic local jitter.
        # The reorder window is physical (bounded by how many blocks are
        # in flight), so it scales with occupancy rather than grid size.
        order = rng.jitter_order(
            len(self.streams), window=max(8.0, jitter * 4 * max_active)
        )
        self._dispatch_order: list[int] = [int(i) for i in order]
        self._next_dispatch = 0
        self._active: list[WarpStream] = []
        self._dispatch_counter = 0

    # -- dispatch -----------------------------------------------------------
    def _dispatch_one(self) -> Optional[WarpStream]:
        while self._next_dispatch < len(self._dispatch_order):
            stream = self.streams[self._dispatch_order[self._next_dispatch]]
            self._next_dispatch += 1
            if stream.state is StreamState.PENDING:
                stream.state = StreamState.RUNNABLE
                stream.sm_id = self._dispatch_counter % self.n_sms
                self._dispatch_counter += 1
                return stream
        return None

    def refill(self) -> int:
        """Dispatch pending streams up to the occupancy limit.

        Returns the number of streams newly dispatched.
        """
        self._active = [s for s in self._active if s.state is not StreamState.DONE]
        dispatched = 0
        while len(self._active) < self.max_active:
            stream = self._dispatch_one()
            if stream is None:
                break
            self._active.append(stream)
            dispatched += 1
        return dispatched

    # -- queries ------------------------------------------------------------
    def active(self) -> list[WarpStream]:
        """Streams currently resident on SMs (RUNNABLE or STALLED)."""
        return [s for s in self._active if s.state is not StreamState.DONE]

    def runnable(self) -> list[WarpStream]:
        return [s for s in self._active if s.state is StreamState.RUNNABLE]

    def stalled(self) -> list[WarpStream]:
        return [s for s in self._active if s.state is StreamState.STALLED]

    def has_stalled(self) -> bool:
        return any(s.state is StreamState.STALLED for s in self._active)

    def all_done(self) -> bool:
        return self._next_dispatch >= len(self._dispatch_order) and all(
            s.state is StreamState.DONE for s in self._active
        ) and all(s.state is not StreamState.PENDING for s in self.streams)

    def wake_all_stalled(self) -> int:
        """Deliver a replay notification: every stalled warp retries.

        Replays are broadcast - "the replay will cause all faulting warps
        to resume, even if the faults are not satisfied" (Section III-E).
        Returns the number of streams woken.
        """
        woken = 0
        for s in self._active:
            if s.state is StreamState.STALLED:
                s.wake()
                woken += 1
        return woken

    def progress(self) -> tuple[int, int]:
        """(streams done, total streams) - for progress reporting."""
        done = sum(1 for s in self.streams if s.state is StreamState.DONE)
        return done, len(self.streams)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        done, total = self.progress()
        return f"BlockScheduler(done={done}/{total}, active={len(self.active())})"
