"""repro: a reproduction of "Demystifying GPU UVM Cost with Deep Runtime
and Workload Analysis" (Allen & Ge, IPDPS 2021).

The package simulates the NVIDIA UVM driver pipeline - fault buffer
draining, batching, VABlock binning, fault servicing (PMA allocation,
migration, mapping), the two-stage tree-based density prefetcher, LRU
VABlock eviction, and the four replay policies - against a GPU execution
model, with the paper's instrumentation (category timers, fault traces)
built in.  See DESIGN.md for the system inventory and EXPERIMENTS.md for
the paper-vs-measured record.

Quickstart::

    from repro import simulate, RegularAccess
    result = simulate(RegularAccess(16 << 20))
    print(result.breakdown().render())
"""

from repro.core.driver import DriverConfig, RunResult, UvmDriver
from repro.core.replay import ReplayPolicyKind
from repro.experiments.runner import ExperimentSetup, simulate
from repro.gpu.device import GpuDeviceConfig
from repro.sim.costmodel import CostModel, NVLINK_CLASS, TITAN_V_PCIE3
from repro.mem.advise import MemAdvise
from repro.trace.io import load_trace, save_trace
from repro.workloads import (
    CufftWorkload,
    CusparseWorkload,
    HpgmgWorkload,
    RandomAccess,
    RegularAccess,
    SgemmWorkload,
    StreamTriadWorkload,
    TealeafWorkload,
    Workload,
    make_workload,
    workload_names,
)
from repro.workloads.base import HostAccess, KernelPhase
from repro.workloads.graph import BfsWorkload

__version__ = "1.0.0"

__all__ = [
    "simulate",
    "ExperimentSetup",
    "UvmDriver",
    "DriverConfig",
    "RunResult",
    "GpuDeviceConfig",
    "ReplayPolicyKind",
    "CostModel",
    "TITAN_V_PCIE3",
    "NVLINK_CLASS",
    "Workload",
    "RegularAccess",
    "RandomAccess",
    "SgemmWorkload",
    "StreamTriadWorkload",
    "CufftWorkload",
    "TealeafWorkload",
    "HpgmgWorkload",
    "CusparseWorkload",
    "make_workload",
    "workload_names",
    "MemAdvise",
    "BfsWorkload",
    "HostAccess",
    "KernelPhase",
    "save_trace",
    "load_trace",
    "__version__",
]
