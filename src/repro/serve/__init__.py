"""`repro.serve`: an asynchronous simulation job service.

The experiment layer (:mod:`repro.experiments.runner`) runs simulations
synchronously and in-process; this package turns the simulator into a
long-running service so many clients can share one warm fleet:

* :mod:`repro.serve.jobs` - the :class:`JobSpec`/:class:`JobResult`
  model: a canonical, JSON-serializable description of one simulation
  whose content-addressed key is shared with ``run_sweep``'s
  code-version-keyed cache,
* :mod:`repro.serve.store` - a content-addressed on-disk result store
  (JSON documents + ``.npz`` trace payloads, atomic writes),
* :mod:`repro.serve.pool` - the supervised ``multiprocessing`` worker
  pool,
* :mod:`repro.serve.journal` - the append-only, checksummed write-ahead
  job journal every state transition is durably logged to; startup
  replay makes the job table survive a ``kill -9``,
* :mod:`repro.serve.service` - the priority-queue scheduler/supervisor
  (:class:`SimulationService`): timeouts, bounded retries with backoff,
  worker-death recovery, instant cache serving, watermark admission
  control, a poison-job circuit breaker, and graceful drain,
* :mod:`repro.serve.telemetry` - streaming per-job telemetry built on
  :class:`~repro.sim.stats.CounterSet`/:class:`~repro.sim.stats.CategoryTimer`,
* :mod:`repro.serve.http_api` / :mod:`repro.serve.client` - the
  JSON-over-HTTP surface (stdlib ``http.server``) and Python client.
"""

from repro.serve.jobs import JobSpec, JobState, JobRecord
from repro.serve.journal import JobJournal
from repro.serve.results import result_to_doc
from repro.serve.store import ResultStore
from repro.serve.service import (
    AdmissionError,
    QueueFullError,
    ServiceConfig,
    ServiceDrainingError,
    SimulationService,
)
from repro.serve.telemetry import Telemetry

__all__ = [
    "AdmissionError",
    "JobJournal",
    "JobSpec",
    "JobState",
    "JobRecord",
    "QueueFullError",
    "ResultStore",
    "ServiceConfig",
    "ServiceDrainingError",
    "SimulationService",
    "Telemetry",
    "result_to_doc",
]
