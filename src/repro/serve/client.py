"""Python client for the simulation service (stdlib ``urllib`` only).

Mirrors the HTTP surface one-to-one and raises
:class:`ServiceClientError` with the server's error message on non-2xx
responses, so CLI verbs and tests get clean failures instead of raw
``HTTPError`` tracebacks.

Every request is bounded: connection establishment by
``connect_timeout_s``, each subsequent socket read by ``timeout_s``
(requests-style split; a hung accept queue and a hung handler are
different failures with different sensible budgets).  Transport-level
failures are retried up to ``retries`` times with exponential backoff
and deterministic jitter drawn from a seeded
:class:`~repro.sim.rng.SimRng` - full-throttle reconnect storms from a
fleet of clients are what the jitter prevents, and seeding keeps test
runs reproducible.  Server-reported 5xx responses are retried for
``GET`` only (idempotent); a 5xx on ``POST``/``DELETE`` surfaces
immediately since the service may have acted on it.

The exception: **429** (queue shed) and **503** (draining) are retried
for *every* method - the service guarantees it created no state before
answering them - sleeping at least the server's ``Retry-After`` hint
(fractional seconds honoured) each round.  When the retry budget runs
out they surface as :class:`ServiceOverloadedError` (a
:class:`ServiceClientError` subclass) carrying the last
``retry_after_s`` so callers can queue the work for later instead of
treating it as a hard failure.

Total sleep across one logical request is capped by
``backoff_budget_s``, shared across every retry *and* re-routed
attempt of that request: a shard that advertises a 300 s
``Retry-After`` cannot stall a caller for five minutes, and a gateway
that already waited upstream passes the remaining budget down instead
of paying the penalty twice (see
:meth:`ServiceClient.request_with_budget`).
"""

from __future__ import annotations

import functools
import http.client
import json
import time
import urllib.error
import urllib.request
from typing import Any, Optional, Sequence, Union

from repro.chaos.network import CALLER_HEADER, local_endpoint, network_injector
from repro.errors import ReproError
from repro.serve.wire import error_detail, retry_after_hint
from repro.sim.rng import SimRng


class ServiceClientError(ReproError):
    """The service rejected a request (includes the HTTP status).

    ``detail`` is the parsed error envelope (``{}`` when the body was
    not JSON) - it carries structured hints like a follower gateway's
    acting-primary redirect, which the join announcer chases.
    """

    def __init__(
        self,
        status: int,
        message: str,
        detail: Optional[dict[str, Any]] = None,
    ) -> None:
        super().__init__(f"[{status}] {message}")
        self.status = status
        self.detail: dict[str, Any] = dict(detail or {})


class ServiceOverloadedError(ServiceClientError):
    """The service kept shedding/draining for the whole retry budget.

    Distinct from a hard rejection: the request was never acted on, and
    ``retry_after_s`` is the server's latest hint for when to try again.
    """

    def __init__(
        self,
        status: int,
        message: str,
        retry_after_s: float = 1.0,
        detail: Optional[dict[str, Any]] = None,
    ) -> None:
        super().__init__(status, message, detail=detail)
        self.retry_after_s = retry_after_s


class _SplitTimeoutConnection(http.client.HTTPConnection):
    """HTTPConnection with distinct connect and read timeouts.

    Stdlib applies one ``timeout`` to the connect *and* every read; the
    requests-style split needs the socket's timeout re-armed after the
    connection is up.
    """

    def __init__(self, *args, read_timeout: Optional[float] = None, **kwargs):
        super().__init__(*args, **kwargs)
        self._read_timeout = read_timeout

    def connect(self) -> None:
        super().connect()
        if self._read_timeout is not None:
            self.sock.settimeout(self._read_timeout)


class _SplitTimeoutHandler(urllib.request.HTTPHandler):
    def __init__(self, read_timeout: float) -> None:
        super().__init__()
        self._read_timeout = read_timeout

    def http_open(self, req):
        factory = functools.partial(
            _SplitTimeoutConnection, read_timeout=self._read_timeout
        )
        return self.do_open(factory, req)


class ServiceClient:
    """Thin JSON client bound to one service base URL - or several.

    ``base_url`` may be a single URL or a sequence of equivalent
    endpoints (replicated fleet gateways).  With several, the client is
    sticky to one endpoint and **fails over** to the next on a connect
    error or an exhausted 429/503 - conditions under which the server
    provably created no state, so retrying the identical request
    elsewhere is safe.  The ``backoff_budget_s`` sleep cap is shared
    across *all* endpoints of one logical request (a two-gateway client
    does not get to stall twice as long), as is the bounded attempt
    count.
    """

    def __init__(
        self,
        base_url: Union[str, Sequence[str]],
        timeout_s: float = 30.0,
        connect_timeout_s: float = 5.0,
        retries: int = 2,
        retry_backoff_s: float = 0.2,
        retry_seed: int = 0x7E7,
        backoff_budget_s: float = 60.0,
    ) -> None:
        urls = [base_url] if isinstance(base_url, str) else list(base_url)
        if not urls:
            raise ReproError("ServiceClient needs at least one base URL")
        #: equivalent endpoints in failover order; index 0 is preferred.
        self.endpoints: tuple[str, ...] = tuple(u.rstrip("/") for u in urls)
        self._active = 0
        self.timeout_s = timeout_s
        self.connect_timeout_s = connect_timeout_s
        self.retries = max(0, int(retries))
        self.retry_backoff_s = retry_backoff_s
        #: cap on *cumulative* retry sleep per logical request; shared
        #: across re-routed attempts via :meth:`request_with_budget`
        #: and across every endpoint of a multi-endpoint client.
        self.backoff_budget_s = max(0.0, float(backoff_budget_s))
        self._rng = SimRng(retry_seed).fork("client-retry")
        self._opener = urllib.request.build_opener(_SplitTimeoutHandler(timeout_s))

    @property
    def base_url(self) -> str:
        """The endpoint currently in use (sticky until a failover)."""
        return self.endpoints[self._active]

    # -- transport ------------------------------------------------------------
    def _backoff(self, attempt: int) -> float:
        """Exponential backoff with jitter in [0.5x, 1.5x) of the step."""
        step = self.retry_backoff_s * (2**attempt)
        return step * (0.5 + float(self._rng.uniform()))

    def _pace(self, retry_after: float) -> float:
        """Jitter the server's pacing hint by up to +10%.

        A fleet of clients shed at the same instant would otherwise all
        come back on the same tick; the jitter is seeded, so tests stay
        reproducible.
        """
        if retry_after <= 0.0:
            return 0.0
        return retry_after * (1.0 + 0.1 * float(self._rng.uniform()))

    def _fail_over(self) -> bool:
        """Rotate to the next endpoint; False when there is only one."""
        if len(self.endpoints) < 2:
            return False
        self._active = (self._active + 1) % len(self.endpoints)
        return True

    def _request(
        self, method: str, path: str, payload: Optional[dict[str, Any]] = None
    ) -> Any:
        return self.request_with_budget(method, path, payload)[0]

    def request_with_budget(
        self,
        method: str,
        path: str,
        payload: Optional[dict[str, Any]] = None,
        budget_spent_s: float = 0.0,
    ) -> tuple[Any, float]:
        """One logical request under a shared sleep budget.

        ``budget_spent_s`` is backoff time an upstream caller (e.g. the
        fleet gateway, across re-routed attempts) already slept for this
        logical request; it counts against ``backoff_budget_s`` so the
        request is never penalized twice.  Returns ``(response, total
        budget spent)`` - the caller threads the spent figure into the
        next re-routed attempt.  When the budget is exhausted the last
        error is raised immediately instead of sleeping.
        """
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        last_error: Optional[ServiceClientError] = None
        spent = max(0.0, float(budget_spent_s))
        # extra endpoints buy extra attempts (one each), not extra
        # budget: the failover pass over N gateways still shares one
        # backoff_budget_s and one retry schedule.
        total_attempts = self.retries + len(self.endpoints)
        caller = local_endpoint()
        for attempt in range(total_attempts):
            headers = {"Content-Type": "application/json"} if body else {}
            if caller is not None:
                # self-identify so a peer's inbound network.partition
                # rules can match this endpoint by name.
                headers[CALLER_HEADER] = caller
            request = urllib.request.Request(
                self.base_url + path, data=body, method=method, headers=headers
            )
            retry_after = 0.0
            failed_over = False
            try:
                injector = network_injector()
                if injector is not None:
                    # raises before the socket opens when this endpoint's
                    # outbound link is cut; lands in the unreachable
                    # branch below like a real refused connect.
                    injector.check_connect(self.base_url)
                # the urlopen timeout arms the *connect*; the handler
                # re-arms the socket with the read timeout afterwards.
                with self._opener.open(
                    request, timeout=self.connect_timeout_s
                ) as response:
                    return json.loads(response.read().decode("utf-8")), spent
            except urllib.error.HTTPError as exc:
                detail, message = error_detail(exc)
                overloaded = exc.code in (429, 503)
                if overloaded:
                    # admission control answered before creating any
                    # state, so every method is safe to retry; honour the
                    # server's pacing hint over our own backoff.  With
                    # several endpoints a 503 also fails over: a sibling
                    # gateway may be admitting while this one sheds.
                    retry_after = retry_after_hint(exc.headers, detail)
                    last_error = ServiceOverloadedError(
                        exc.code,
                        message,
                        retry_after_s=retry_after or 1.0,
                        detail=detail,
                    )
                    failed_over = self._fail_over()
                else:
                    last_error = ServiceClientError(exc.code, message, detail=detail)
                retryable = overloaded or (
                    method == "GET" and 500 <= exc.code < 600
                )
                if not retryable or attempt >= total_attempts - 1:
                    raise last_error from exc
            except (
                urllib.error.URLError,
                http.client.HTTPException,
                OSError,
            ) as exc:
                # connection refused / reset / timed out, or the peer
                # vanished mid-response (a SIGKILLed gateway surfaces as
                # RemoteDisconnected, which urllib does *not* wrap in
                # URLError): treat all of these as "endpoint unreachable"
                # and retry - with several endpoints, immediately
                # elsewhere.  Re-submission is safe: job creation is
                # content-addressed, so a duplicate costs at most one
                # cache-hit job record.
                last_error = ServiceClientError(
                    0,
                    f"cannot reach {self.base_url}: "
                    f"{getattr(exc, 'reason', exc)}",
                )
                if attempt >= total_attempts - 1:
                    raise last_error from exc
                if self._fail_over():
                    continue  # next endpoint now; no sleep for a dead peer
            remaining = self.backoff_budget_s - spent
            if remaining <= 0.0:
                raise last_error
            delay = min(
                max(self._backoff(attempt), self._pace(retry_after)), remaining
            )
            if failed_over:
                # the pacing hint came from the endpoint we just left;
                # the new endpoint owes us nothing, back off normally.
                delay = min(self._backoff(attempt), remaining)
            time.sleep(delay)
            spent += delay
        raise last_error  # pragma: no cover - loop always raises/returns

    # -- API ------------------------------------------------------------------
    def healthz(self) -> bool:
        return bool(self._request("GET", "/healthz").get("ok"))

    def readyz(self) -> dict[str, Any]:
        """The readiness document; raises ServiceOverloadedError on 503."""
        return self._request("GET", "/readyz")

    def submit(self, spec: dict[str, Any]) -> dict[str, Any]:
        return self._request("POST", "/jobs", spec)

    def status(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def list_jobs(self) -> list[dict[str, Any]]:
        return self._request("GET", "/jobs")["jobs"]

    def result(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self._request("DELETE", f"/jobs/{job_id}")

    def metrics(self) -> dict[str, Any]:
        return self._request("GET", "/metrics")

    def events(self, since: int = 0, limit: int = 1000) -> dict[str, Any]:
        return self._request("GET", f"/events?since={since}&limit={limit}")

    def wait(
        self, job_id: str, timeout_s: float = 300.0, poll_s: float = 0.1
    ) -> dict[str, Any]:
        """Poll until the job is terminal; returns the final record."""
        deadline = time.monotonic() + timeout_s
        while True:
            record = self.status(job_id)
            if record["state"] in ("done", "failed", "cancelled", "poisoned"):
                return record
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"{job_id} still {record['state']} after {timeout_s}s"
                )
            time.sleep(poll_s)
