"""Python client for the simulation service (stdlib ``urllib`` only).

Mirrors the HTTP surface one-to-one and raises
:class:`ServiceClientError` with the server's error message on non-2xx
responses, so CLI verbs and tests get clean failures instead of raw
``HTTPError`` tracebacks.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Optional

from repro.errors import ReproError


class ServiceClientError(ReproError):
    """The service rejected a request (includes the HTTP status)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"[{status}] {message}")
        self.status = status


class ServiceClient:
    """Thin JSON client bound to one service base URL."""

    def __init__(self, base_url: str, timeout_s: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # -- transport ------------------------------------------------------------
    def _request(
        self, method: str, path: str, payload: Optional[dict[str, Any]] = None
    ) -> Any:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            self.base_url + path,
            data=body,
            method=method,
            headers={"Content-Type": "application/json"} if body else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8")).get("error", str(exc))
            except Exception:
                message = str(exc)
            raise ServiceClientError(exc.code, message) from exc
        except urllib.error.URLError as exc:
            raise ServiceClientError(0, f"cannot reach {self.base_url}: {exc.reason}")

    # -- API ------------------------------------------------------------------
    def healthz(self) -> bool:
        return bool(self._request("GET", "/healthz").get("ok"))

    def submit(self, spec: dict[str, Any]) -> dict[str, Any]:
        return self._request("POST", "/jobs", spec)

    def status(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def list_jobs(self) -> list[dict[str, Any]]:
        return self._request("GET", "/jobs")["jobs"]

    def result(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self._request("DELETE", f"/jobs/{job_id}")

    def metrics(self) -> dict[str, Any]:
        return self._request("GET", "/metrics")

    def events(self, since: int = 0, limit: int = 1000) -> dict[str, Any]:
        return self._request("GET", f"/events?since={since}&limit={limit}")

    def wait(
        self, job_id: str, timeout_s: float = 300.0, poll_s: float = 0.1
    ) -> dict[str, Any]:
        """Poll until the job is terminal; returns the final record."""
        deadline = time.monotonic() + timeout_s
        while True:
            record = self.status(job_id)
            if record["state"] in ("done", "failed", "cancelled"):
                return record
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"{job_id} still {record['state']} after {timeout_s}s"
                )
            time.sleep(poll_s)
