"""Supervised ``multiprocessing`` worker pool.

Each worker is a separate OS process with its *own* depth-1 task queue,
so the supervisor always knows exactly which jobs a worker holds - the
property that makes death/timeout recovery exact: when a worker dies or
is killed, its assigned jobs (and only those) are requeued.  A shared
result queue carries small completion messages back; the actual result
documents go through the on-disk :class:`~repro.serve.store.ResultStore`
written by the worker itself, so large payloads never transit a pipe.

Workers are *warm*: one process serves many tasks, and a task is a
**batch** - a list of job members sharing a workload/setup build
signature.  The worker executes members sequentially with
``warm=True``, so the first member's expensive workload build is
memoized in-process and later members (and later batches with the same
signature) deep-copy it instead of rebuilding.  Each member reports its
own started/done/error message, so the supervisor tracks per-member
timeouts, retries, and death recovery exactly as it did for solo jobs.

Workers execute jobs through
:func:`repro.experiments.runner.execute_job` - the same cache-aware code
path ``run_sweep`` uses - so the service and the sweep executor share
one simulation path and one on-disk memo cache.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

#: message kinds on the result queue
MSG_STARTED = "started"
MSG_DONE = "done"
MSG_ERROR = "error"
#: an injected fault consumed this attempt; retryable (unlike MSG_ERROR,
#: which is deterministic and fails fast).
MSG_CHAOS = "chaos"


def _mp_context():
    try:
        return mp.get_context("fork")  # cheap start, inherits imports
    except ValueError:  # pragma: no cover - non-POSIX
        return mp.get_context()


def worker_main(
    worker_id: int,
    task_queue,
    result_queue,
    store_dir: str,
    cache_dir: Optional[str],
    checkpoint_every: int = 256,
) -> None:
    """Worker process body: pull one batch at a time, run its members, report.

    Imports happen lazily so a ``spawn``-context worker also boots.

    Fault injection (``UVMREPRO_CHAOS``) is applied here, at the worker
    boundary: process faults (kill/hang/slow-start) hit the worker
    itself, model faults run a *probe attempt* (the degraded simulation
    is exercised end-to-end, its result discarded, and the attempt
    reported as :data:`MSG_CHAOS` so the supervisor retries - keeping
    stored results bit-identical to fault-free runs), and storage faults
    corrupt the attempt's store artifacts before failing it.  Each
    fault's trial index is ``attempt - 1``, so a plan's ``attempts``
    bound guarantees a later clean attempt.
    """
    from repro.chaos import plan as chaos_plan
    from repro.serve.store import ResultStore

    # fresh env read: a fork-context worker inherits the parent's module
    # cache, and the parent may have armed a different plan.
    plan = chaos_plan.plan_from_env()
    # never sweep tmp debris from a worker: siblings share this root and
    # their pre-rename tempfiles must not be unlinked under them.  The
    # service-owned store sweeps at startup instead.
    store = ResultStore(store_dir, sweep_tmp=False)
    while True:
        task = task_queue.get()
        if task is None:
            return
        # a task is a batch of members sharing a build signature; they
        # run sequentially on this warm process, each reporting its own
        # started/done/error message.
        for member in task:
            _run_member(
                worker_id, result_queue, store, cache_dir, checkpoint_every, plan, member
            )


def _run_member(
    worker_id: int,
    result_queue,
    store,
    cache_dir: Optional[str],
    checkpoint_every: int,
    plan,
    member: tuple,
) -> None:
    """Execute one batch member and report its outcome (worker-side).

    Split out of :func:`worker_main` so each member gets its own
    try/except: a member's reported error (or injected fault) must not
    take down the siblings queued behind it on the same worker.
    """
    from repro.chaos import plan as chaos_plan
    from repro.chaos.injector import model_injection
    from repro.chaos.process import apply_process_faults, checkpoint_kill_hook
    from repro.chaos import storage as chaos_storage
    from repro.errors import ChaosError
    from repro.serve.jobs import JobSpec
    from repro.serve.results import result_to_doc
    from repro.sim.engine import SimulationCheckpointer
    from repro.experiments.runner import execute_job, simulate

    store_dir = os.fspath(store.root)
    job_id, attempt, spec_dict, key = member
    result_queue.put((MSG_STARTED, worker_id, job_id, attempt, {}))
    trial = attempt - 1
    t0 = time.perf_counter_ns()
    try:
        if plan is not None:
            apply_process_faults(plan, key, trial)
        spec = JobSpec.from_dict(spec_dict)
        workload, setup = spec.build()

        if plan is not None and any(
            plan.should_fire(point, key, trial) is not None
            for point in chaos_plan.MODEL_POINTS
        ):
            # probe attempt: run the degraded simulation (replay
            # storms / DMA retries / allocation pressure all modelled
            # and sanitized), then discard it - the canonical result
            # must come from a clean attempt.  Bypasses the sweep
            # cache in both directions.
            with model_injection(plan):
                simulate(workload, setup, record_trace=spec.record_trace)
            raise ChaosError(
                f"injected model fault(s) on attempt {attempt}; "
                "degraded probe completed, result discarded"
            )

        checkpointer = None
        if checkpoint_every > 0:
            checkpointer = SimulationCheckpointer(
                os.path.join(store_dir, "checkpoints", f"{key}.ckpt"),
                every_phases=checkpoint_every,
                on_save=None
                if plan is None
                else checkpoint_kill_hook(plan, key, trial),
            )
        result, sweep_hit = execute_job(
            workload,
            setup,
            spec.record_trace,
            cache_dir=cache_dir,
            checkpointer=checkpointer,
            warm=True,
        )
        resumed = checkpointer is not None and checkpointer.resumed
        elapsed_ns = time.perf_counter_ns() - t0
        doc = result_to_doc(
            result,
            extra={
                "job_id": job_id,
                "key": key,
                "workload": spec.workload,
                "data_bytes": spec.data_bytes,
                "seed": spec.seed,
                "worker_pid": os.getpid(),
                "run_wall_ns": elapsed_ns,
            },
        )
        trace = result.trace if spec.record_trace else None
        if plan is not None:
            fired = plan.should_fire(chaos_plan.STORAGE_TORN_JSON, key, trial)
            if fired is not None:
                chaos_storage.tear_json(store, key, doc)
                raise ChaosError(
                    f"injected torn document for {key[:12]}.. "
                    f"on attempt {attempt}"
                )
            fired = plan.should_fire(chaos_plan.STORAGE_TRUNCATED_NPZ, key, trial)
            if fired is not None and trace is not None:
                chaos_storage.truncate_npz(
                    store, key, trace, metadata={"job_id": job_id}
                )
                raise ChaosError(
                    f"injected truncated trace for {key[:12]}.. "
                    f"on attempt {attempt}"
                )
            if plan.should_fire(chaos_plan.STORAGE_STALE_TMP, key, trial):
                # non-fatal debris: the attempt itself succeeds; the
                # service's startup sweep (or quarantine audit) must
                # cope with the leftover.
                chaos_storage.leave_stale_tmp(store, key)
        store.store(
            key,
            doc,
            trace=trace,
            trace_metadata={"job_id": job_id, "workload": spec.workload},
        )
        result_queue.put(
            (
                MSG_DONE,
                worker_id,
                job_id,
                attempt,
                {
                    "sweep_cache_hit": sweep_hit,
                    "run_wall_ns": elapsed_ns,
                    "resumed": resumed,
                },
            )
        )
    except ChaosError as exc:
        result_queue.put(
            (
                MSG_CHAOS,
                worker_id,
                job_id,
                attempt,
                {"error": f"{type(exc).__name__}: {exc}"},
            )
        )
    except BaseException as exc:  # report and keep serving
        result_queue.put(
            (
                MSG_ERROR,
                worker_id,
                job_id,
                attempt,
                {
                    "error": f"{type(exc).__name__}: {exc}",
                    "traceback": traceback.format_exc(limit=8),
                },
            )
        )


@dataclass
class WorkerHandle:
    """Supervisor-side view of one worker process."""

    worker_id: int
    process: mp.Process
    task_queue: Any
    #: batch members assigned to this worker: job_id -> attempt.
    #: Members are removed one by one as their completion messages
    #: drain; empty = idle.
    assignments: dict[str, int] = field(default_factory=dict)
    #: the member the worker is executing right now (first member at
    #: assign time, refreshed by each MSG_STARTED).  Death/timeout
    #: charges only this member; unstarted siblings requeue free.
    active_job: Optional[str] = None
    #: monotonic-clock deadline for the *active member*, re-armed on
    #: every member start (0 = no deadline).
    deadline: float = 0.0
    jobs_done: int = field(default=0)

    @property
    def idle(self) -> bool:
        return not self.assignments

    def alive(self) -> bool:
        return self.process.is_alive()


class WorkerPool:
    """Spawns, tracks, kills, and respawns worker processes."""

    def __init__(
        self,
        n_workers: int,
        store_dir: str,
        cache_dir: Optional[str],
        checkpoint_every: int = 256,
    ):
        self.n_workers = max(1, int(n_workers))
        self.store_dir = store_dir
        self.cache_dir = cache_dir
        #: simulation phases between worker checkpoints (0 disables).
        self.checkpoint_every = max(0, int(checkpoint_every))
        self._ctx = _mp_context()
        self.result_queue = self._ctx.Queue()
        self.workers: dict[int, WorkerHandle] = {}
        self._next_worker_id = 0

    # -- lifecycle ------------------------------------------------------------
    def _spawn(self) -> WorkerHandle:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        task_queue = self._ctx.Queue(maxsize=1)
        process = self._ctx.Process(
            target=worker_main,
            args=(
                worker_id,
                task_queue,
                self.result_queue,
                self.store_dir,
                self.cache_dir,
                self.checkpoint_every,
            ),
            daemon=True,
            name=f"repro-serve-worker-{worker_id}",
        )
        process.start()
        handle = WorkerHandle(worker_id=worker_id, process=process, task_queue=task_queue)
        self.workers[worker_id] = handle
        return handle

    def start(self) -> None:
        while len(self.workers) < self.n_workers:
            self._spawn()

    def respawn(self, worker_id: int) -> WorkerHandle:
        """Replace a dead/killed worker with a fresh process + queue.

        A fresh task queue guarantees a stale task can never be double-
        executed by the replacement.
        """
        old = self.workers.pop(worker_id, None)
        if old is not None and old.process.is_alive():  # pragma: no cover - guard
            old.process.terminate()
        return self._spawn()

    def kill(self, worker_id: int) -> None:
        handle = self.workers.get(worker_id)
        if handle is None:
            return
        if handle.process.is_alive():
            handle.process.terminate()
            handle.process.join(timeout=2.0)
            if handle.process.is_alive():  # pragma: no cover - stubborn child
                handle.process.kill()
                handle.process.join(timeout=2.0)

    def stop(self, timeout: float = 5.0) -> None:
        """Graceful shutdown: poison-pill idle workers, then terminate."""
        for handle in self.workers.values():
            if handle.idle and handle.process.is_alive():
                try:
                    handle.task_queue.put_nowait(None)
                except Exception:
                    pass
        deadline = time.monotonic() + timeout
        for handle in self.workers.values():
            handle.process.join(timeout=max(0.05, deadline - time.monotonic()))
        for handle in self.workers.values():
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=1.0)
        self.workers.clear()

    # -- assignment -----------------------------------------------------------
    def idle_workers(self) -> list[WorkerHandle]:
        return [h for h in self.workers.values() if h.idle and h.alive()]

    def assign(
        self,
        handle: WorkerHandle,
        members: Sequence[tuple[str, int, dict, str]],
        timeout_s: float,
    ) -> None:
        """Hand a batch of ``(job_id, attempt, spec_dict, key)`` members
        to an idle worker.  The per-attempt timeout applies to each
        member separately: the deadline is armed here for the first
        member and re-armed by the supervisor on every MSG_STARTED."""
        if not members:
            raise ValueError("assign() needs at least one batch member")
        for job_id, attempt, _spec, _key in members:
            handle.assignments[job_id] = attempt
        handle.active_job = members[0][0]
        # monotonic: a wall-clock step (NTP, DST) must not expire jobs
        handle.deadline = time.monotonic() + timeout_s if timeout_s > 0 else 0.0
        handle.task_queue.put(list(members))

    def release(self, handle: WorkerHandle, job_id: str) -> None:
        """One member finished (done/error/chaos): drop its assignment."""
        handle.assignments.pop(job_id, None)
        handle.jobs_done += 1
        if handle.active_job == job_id:
            handle.active_job = None
        if not handle.assignments:
            handle.deadline = 0.0

    def alive_count(self) -> int:
        return sum(1 for h in self.workers.values() if h.alive())

    def busy_count(self) -> int:
        return sum(1 for h in self.workers.values() if not h.idle)
