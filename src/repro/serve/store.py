"""Content-addressed on-disk result store.

Documents are JSON files named by the job's content key (see
:meth:`repro.serve.jobs.JobSpec.cache_key`), fanned out over two-hex
prefix directories so large stores don't produce million-entry
directories.  Writes are atomic *and durable*: tempfile + fsync +
``os.replace`` + parent-directory fsync, so a concurrent reader never
observes a torn document and a machine that loses power right after
``store()`` returns still has the entry after reboot.  Trace payloads
ride alongside as ``<key>.npz`` via :mod:`repro.trace.io`.

Every stored document carries a ``checksum`` field (content hash of the
canonical JSON minus the field itself) and every npz payload carries its
own header checksum.  Reads verify: a corrupt entry is moved to
``<root>/quarantine/`` for post-mortem and surfaced as
:class:`~repro.errors.CorruptResultError` (strict :meth:`get`) or a
plain miss (lenient :meth:`load`), never as a half-parsed document.

Stale ``*.tmp*`` debris from crashed writers is swept on construction;
pass ``sweep_tmp=False`` for stores that share a root with concurrent
writers (the serve worker pool does: only the service-owned store
sweeps, so a respawned worker can never unlink a sibling's in-flight
tempfile between its write and rename).
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterator, Optional

from repro.errors import CorruptResultError, TraceError
from repro.trace.io import load_trace, save_trace
from repro.trace.recorder import FinalizedTrace

#: document field holding the content hash; excluded from its own hash.
CHECKSUM_FIELD = "checksum"


def doc_checksum(doc: dict[str, Any]) -> str:
    """Content hash of a result document (canonical JSON, checksum-free)."""
    body = {k: v for k, v in doc.items() if k != CHECKSUM_FIELD}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def fsync_dir(path: Path) -> None:
    """Flush a directory entry (the rename itself) to stable storage."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class ResultStore:
    """Keyed JSON documents + optional npz payloads under one root."""

    def __init__(self, root: str | Path, sweep_tmp: bool = True) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: entries moved to quarantine/ by this instance (telemetry).
        self.quarantined = 0
        #: stale tempfiles removed at construction (telemetry).
        self.tmp_swept = 0
        if sweep_tmp:
            self.sweep_stale_tmp()

    # -- paths ----------------------------------------------------------------
    def doc_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def trace_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.npz"

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    # -- hygiene --------------------------------------------------------------
    def sweep_stale_tmp(self) -> int:
        """Remove tempfile debris left by writers that died mid-store.

        Only safe when no concurrent writer shares the root (tempfiles
        are pre-rename private state); callers that do share pass
        ``sweep_tmp=False`` and let the single owning process sweep.
        """
        swept = 0
        for path in self.root.glob("??/*.tmp*"):
            try:
                path.unlink()
                swept += 1
            except OSError:
                pass
        # glob skips dotfiles by default; the npz payload temps are
        # dotfile-named (".{key}.{pid}.tmp.npz") so sweep those too.
        for path in self.root.glob("??/.*tmp*"):
            try:
                path.unlink()
                swept += 1
            except OSError:
                pass
        self.tmp_swept += swept
        return swept

    def _quarantine(self, key: str, reason: str) -> None:
        """Move a corrupt entry's files out of the addressable tree."""
        qdir = self.quarantine_dir
        qdir.mkdir(parents=True, exist_ok=True)
        moved = False
        for path in (self.doc_path(key), self.trace_path(key)):
            if path.is_file():
                try:
                    os.replace(path, qdir / path.name)
                    moved = True
                except OSError:
                    pass
        if moved:
            self.quarantined += 1
            try:
                (qdir / f"{key}.reason.txt").write_text(reason, encoding="utf-8")
            except OSError:
                pass

    # -- queries --------------------------------------------------------------
    def contains(self, key: str) -> bool:
        """True when ``key`` has a *valid* document (corrupt = absent)."""
        return self.load(key) is not None

    def get(self, key: str) -> dict[str, Any]:
        """The stored document (checksum verified, field stripped).

        Raises :class:`KeyError` when the key was never stored and
        :class:`~repro.errors.CorruptResultError` when the entry exists
        but fails parsing or checksum verification - the corrupt files
        are moved to ``quarantine/`` first, so the key reads as a plain
        miss afterwards and a writer can repopulate it.
        """
        path = self.doc_path(key)
        if not path.is_file():
            raise KeyError(key)
        try:
            with path.open("r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            self._quarantine(key, f"unparseable document: {exc}")
            raise CorruptResultError(f"result {key[:12]}.. is torn: {exc}") from exc
        if not isinstance(doc, dict):
            self._quarantine(key, f"non-object document: {type(doc).__name__}")
            raise CorruptResultError(f"result {key[:12]}.. is not a JSON object")
        stored = doc.pop(CHECKSUM_FIELD, None)
        if stored is not None:
            actual = doc_checksum(doc)
            if actual != stored:
                self._quarantine(
                    key, f"checksum mismatch: stored {stored}, actual {actual}"
                )
                raise CorruptResultError(
                    f"result {key[:12]}.. failed checksum verification"
                )
        return doc

    def load(self, key: str) -> Optional[dict[str, Any]]:
        """Lenient :meth:`get`: missing, torn, and corrupt are all None.

        Corrupt entries are still quarantined as a side effect, so the
        store self-heals on read.
        """
        try:
            return self.get(key)
        except KeyError:
            return None
        except CorruptResultError:
            return None

    def load_result_trace(self, key: str) -> Optional[FinalizedTrace]:
        path = self.trace_path(key)
        if not path.is_file():
            return None
        try:
            trace, _meta = load_trace(path)
        except TraceError as exc:
            self._quarantine(key, f"corrupt trace payload: {exc}")
            raise CorruptResultError(
                f"trace payload for {key[:12]}.. is corrupt: {exc}"
            ) from exc
        return trace

    def keys(self) -> Iterator[str]:
        for path in sorted(self.root.glob("??/*.json")):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    # -- writes ---------------------------------------------------------------
    def store(
        self,
        key: str,
        doc: dict[str, Any],
        trace: Optional[FinalizedTrace] = None,
        trace_metadata: Optional[dict[str, Any]] = None,
    ) -> Path:
        """Atomically and durably persist ``doc`` (+ trace) under ``key``.

        The written document gains a :data:`CHECKSUM_FIELD`; the caller's
        dict is not mutated.
        """
        path = self.doc_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        if trace is not None:
            # payload first (atomically): a reader that sees the doc may
            # rely on the npz being present and whole.
            final = self.trace_path(key)
            tmp_npz = final.with_name(f".{key}.{os.getpid()}.tmp.npz")
            save_trace(trace, tmp_npz, metadata=trace_metadata)
            fd = os.open(tmp_npz, os.O_RDONLY)
            try:
                os.fsync(fd)
            finally:
                os.close(fd)
            os.replace(tmp_npz, final)
        body = dict(doc)
        body[CHECKSUM_FIELD] = doc_checksum(body)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(body, fh, sort_keys=True)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        # the renames themselves must survive power loss, not just the
        # file contents (POSIX: directory entry durability needs a dir
        # fsync).
        fsync_dir(path.parent)
        return path

    def discard(self, key: str) -> None:
        for path in (self.doc_path(key), self.trace_path(key)):
            try:
                path.unlink()
            except OSError:
                pass

    # -- migration transfer ---------------------------------------------------
    def export_entry(self, key: str) -> dict[str, Any]:
        """One entry as a self-verifying wire document (fleet migration).

        The document keeps its :data:`CHECKSUM_FIELD` so the receiving
        owner can verify content end-to-end, and the npz payload rides
        along base64-encoded (``None`` when the entry has no trace).
        Raises :class:`KeyError` on a miss; a corrupt entry is
        quarantined and surfaced as
        :class:`~repro.errors.CorruptResultError` - never exported.
        """
        body = dict(self.get(key))  # verify + quarantine-on-corrupt
        body[CHECKSUM_FIELD] = doc_checksum(body)
        trace_b64: Optional[str] = None
        trace_file = self.trace_path(key)
        if trace_file.is_file():
            trace_b64 = base64.b64encode(trace_file.read_bytes()).decode("ascii")
        return {"key": key, "doc": body, "trace_b64": trace_b64}

    def import_entry(
        self, key: str, doc: dict[str, Any], trace_b64: Optional[str] = None
    ) -> bool:
        """Verify and persist an exported entry under this store.

        The advertised checksum must match the recomputed content hash -
        a transfer that corrupted the document is rejected (``ValueError``)
        before anything touches disk, so migration can never plant a
        quarantine-bound entry.  Returns ``False`` when the key already
        holds a valid document (idempotent re-imports are no-ops, which
        is what makes a resumed migration cursor safe).
        """
        body = dict(doc)
        advertised = body.pop(CHECKSUM_FIELD, None)
        if advertised is None:
            raise ValueError(f"import of {key[:12]}.. carries no checksum")
        actual = doc_checksum(body)
        if actual != advertised:
            raise ValueError(
                f"import of {key[:12]}.. failed checksum verification "
                f"(advertised {advertised[:12]}.., actual {actual[:12]}..)"
            )
        if self.contains(key):
            return False
        path = self.doc_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        if trace_b64 is not None:
            raw = base64.b64decode(trace_b64.encode("ascii"))
            final = self.trace_path(key)
            tmp_npz = final.with_name(f".{key}.{os.getpid()}.tmp.npz")
            tmp_npz.write_bytes(raw)
            fd = os.open(tmp_npz, os.O_RDONLY)
            try:
                os.fsync(fd)
            finally:
                os.close(fd)
            os.replace(tmp_npz, final)
        self.store(key, body)
        return True
