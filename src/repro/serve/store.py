"""Content-addressed on-disk result store.

Documents are JSON files named by the job's content key (see
:meth:`repro.serve.jobs.JobSpec.cache_key`), fanned out over two-hex
prefix directories so large stores don't produce million-entry
directories.  Writes are atomic (tempfile + ``os.replace``) so a
concurrent reader never observes a torn document, and a worker killed
mid-write never corrupts the store.  Trace payloads ride alongside as
``<key>.npz`` via :mod:`repro.trace.io`.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterator, Optional

from repro.trace.io import load_trace, save_trace
from repro.trace.recorder import FinalizedTrace


class ResultStore:
    """Keyed JSON documents + optional npz payloads under one root."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- paths ----------------------------------------------------------------
    def doc_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def trace_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.npz"

    # -- queries --------------------------------------------------------------
    def contains(self, key: str) -> bool:
        return self.doc_path(key).is_file()

    def load(self, key: str) -> Optional[dict[str, Any]]:
        """The stored document, or None (missing or torn are both misses)."""
        try:
            with self.doc_path(key).open("r", encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None

    def load_result_trace(self, key: str) -> Optional[FinalizedTrace]:
        path = self.trace_path(key)
        if not path.is_file():
            return None
        trace, _meta = load_trace(path)
        return trace

    def keys(self) -> Iterator[str]:
        for path in sorted(self.root.glob("??/*.json")):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    # -- writes ---------------------------------------------------------------
    def store(
        self,
        key: str,
        doc: dict[str, Any],
        trace: Optional[FinalizedTrace] = None,
        trace_metadata: Optional[dict[str, Any]] = None,
    ) -> Path:
        """Atomically persist ``doc`` (and optionally its trace) under ``key``."""
        path = self.doc_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        if trace is not None:
            # payload first (atomically): a reader that sees the doc may
            # rely on the npz being present and whole.
            final = self.trace_path(key)
            tmp_npz = final.with_name(f".{key}.{os.getpid()}.tmp.npz")
            save_trace(trace, tmp_npz, metadata=trace_metadata)
            os.replace(tmp_npz, final)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def discard(self, key: str) -> None:
        for path in (self.doc_path(key), self.trace_path(key)):
            try:
                path.unlink()
            except OSError:
                pass
