"""The simulation job service: scheduler, supervisor, and public API.

:class:`SimulationService` owns four pieces of state:

* a job table (``job_id -> JobRecord``) and a priority heap of queued
  jobs (``(priority, submit_seq)`` order: smaller priority first, FIFO
  within a priority),
* a :class:`~repro.serve.pool.WorkerPool` of simulator processes,
* a :class:`~repro.serve.store.ResultStore` probed at submit time -
  a spec whose content key is already stored completes instantly
  without touching the queue (the "re-submit is free" property),
* a :class:`~repro.serve.telemetry.Telemetry` instance every
  transition is mirrored into.

A single supervisor thread drives the event loop: drain worker
completion messages, detect dead workers and expired deadlines, requeue
or fail the affected jobs (bounded retries with exponential backoff),
respawn replacement workers, and dispatch queued jobs onto idle
workers.  Failure semantics: infrastructure failures (worker death,
timeout) are retried up to ``max_retries`` because they say nothing
about the job; an error *reported* by a healthy worker is deterministic
(the simulator is seeded) and fails the job immediately.
"""

from __future__ import annotations

import heapq
import itertools
import queue
import threading
import time
from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import ConfigurationError, CorruptResultError
from repro.experiments.runner import _resolve_cache_dir
from repro.serve import telemetry as tm
from repro.serve.jobs import JobRecord, JobSpec, JobState
from repro.serve.pool import MSG_CHAOS, MSG_DONE, MSG_ERROR, MSG_STARTED, WorkerPool
from repro.serve.store import ResultStore
from repro.serve.telemetry import Telemetry


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one service instance."""

    n_workers: int = 2
    #: real-time budget per attempt (monotonic); 0 disables deadlines.
    job_timeout_s: float = 300.0
    #: attempts beyond the first for infrastructure failures.
    max_retries: int = 2
    #: base of the exponential retry backoff (doubles per attempt).
    retry_backoff_s: float = 0.25
    #: supervisor tick; also bounds shutdown latency.
    poll_interval_s: float = 0.02
    #: ``run_sweep``-compatible memo cache directory for workers
    #: (None = the sweep executor's default resolution; "" disables).
    sweep_cache_dir: Optional[str] = None
    #: simulation phases between worker-side checkpoints (0 disables);
    #: a respawned attempt resumes from the last snapshot, so a crash
    #: loses at most this many phases of work.
    checkpoint_every_phases: int = 256


class SimulationService:
    """Asynchronous, supervised simulation job service."""

    def __init__(
        self,
        store_dir: str,
        config: Optional[ServiceConfig] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.store = ResultStore(store_dir)
        self.telemetry = Telemetry()
        if self.config.sweep_cache_dir == "":
            cache_dir: Optional[str] = None
        elif self.config.sweep_cache_dir is not None:
            cache_dir = self.config.sweep_cache_dir
        else:
            cache_dir = _resolve_cache_dir(True, None)
        self.pool = WorkerPool(
            self.config.n_workers,
            store_dir,
            cache_dir,
            checkpoint_every=self.config.checkpoint_every_phases,
        )
        self._jobs: dict[str, JobRecord] = {}
        self._heap: list[tuple[int, int, str]] = []
        self._seq = itertools.count(1)
        self._lock = threading.RLock()
        self._done = threading.Condition(self._lock)
        self._stop = threading.Event()
        self._supervisor: Optional[threading.Thread] = None

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> "SimulationService":
        self.pool.start()
        self._supervisor = threading.Thread(
            target=self._supervise, name="repro-serve-supervisor", daemon=True
        )
        self._supervisor.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        self._stop.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=timeout)
        self.pool.stop()

    def __enter__(self) -> "SimulationService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- client API -----------------------------------------------------------
    def submit(self, spec: JobSpec) -> JobRecord:
        """Enqueue a job (or serve it instantly from the result store)."""
        key = spec.cache_key()
        now = time.time()
        seq = next(self._seq)
        job_id = f"job-{seq:08d}"
        record = JobRecord(job_id=job_id, spec=spec, key=key, submitted_at=now)
        self.telemetry.count(tm.JOBS_SUBMITTED)
        if self.store.contains(key):
            record.state = JobState.DONE
            record.cache_hit = True
            record.finished_at = now
            self.telemetry.count(tm.CACHE_HITS_STORE)
            self.telemetry.count(tm.JOBS_COMPLETED)
            self.telemetry.observe_latency(0.0)
            with self._lock:
                self._jobs[job_id] = record
                self._done.notify_all()
            self.telemetry.event(job_id, "done", cache_hit=True, key=key)
            return record
        with self._lock:
            self._jobs[job_id] = record
            heapq.heappush(self._heap, (spec.priority, seq, job_id))
        self.telemetry.event(
            job_id, "queued", key=key, workload=spec.workload, priority=spec.priority
        )
        return record

    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            record = self._jobs.get(job_id)
        if record is None:
            raise KeyError(job_id)
        return record

    def result_doc(self, job_id: str) -> Optional[dict[str, Any]]:
        """The stored result document of a DONE job (None until then).

        A corrupt entry raises
        :class:`~repro.errors.CorruptResultError` *after* the store has
        quarantined it - resubmitting the same spec then recomputes.
        """
        record = self.get(job_id)
        if record.state is not JobState.DONE:
            return None
        try:
            return self.store.get(record.key)
        except KeyError:
            return None
        except CorruptResultError:
            self.telemetry.count(tm.RESULTS_QUARANTINED)
            raise

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued or running job; False if already terminal."""
        with self._lock:
            record = self._jobs.get(job_id)
            if record is None:
                raise KeyError(job_id)
            if record.state.terminal:
                return False
            if record.state is JobState.RUNNING and record.worker_id is not None:
                self._kill_and_respawn(record.worker_id)
            self._finish(record, JobState.CANCELLED)
        self.telemetry.count(tm.JOBS_CANCELLED)
        return True

    def wait(self, job_id: str, timeout: Optional[float] = None) -> JobRecord:
        """Block until the job reaches a terminal state."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._done:
            while True:
                record = self._jobs.get(job_id)
                if record is None:
                    raise KeyError(job_id)
                if record.state.terminal:
                    return record
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(
                        f"{job_id} still {record.state.value} after {timeout}s"
                    )
                self._done.wait(timeout=0.1 if remaining is None else min(0.1, remaining))

    def jobs(self) -> list[JobRecord]:
        with self._lock:
            return list(self._jobs.values())

    def metrics(self) -> dict[str, Any]:
        with self._lock:
            states = [r.state for r in self._jobs.values()]
            gauges = {
                "queue_depth": sum(1 for s in states if s is JobState.QUEUED),
                "jobs_in_flight": sum(1 for s in states if s is JobState.RUNNING),
                "jobs_total": len(states),
                "workers_alive": self.pool.alive_count(),
                "workers_configured": self.pool.n_workers,
            }
        return self.telemetry.snapshot(gauges)

    # -- supervisor loop ------------------------------------------------------
    def _supervise(self) -> None:
        while not self._stop.is_set():
            try:
                progressed = self._drain_results()
                with self._lock:
                    self._check_workers()
                    self._dispatch()
            except Exception:  # keep supervising: one bad tick must not
                self.telemetry.count("supervisor.errors")  # kill the service
                progressed = False
            if not progressed:
                self._stop.wait(self.config.poll_interval_s)

    def _drain_results(self) -> bool:
        progressed = False
        while True:
            try:
                kind, worker_id, job_id, attempt, detail = (
                    self.pool.result_queue.get_nowait()
                )
            except queue.Empty:
                return progressed
            progressed = True
            with self._lock:
                handle = self.pool.workers.get(worker_id)
                record = self._jobs.get(job_id)
                # stale messages (from a killed/replaced worker, or for a
                # superseded attempt) are dropped: the current assignment
                # is the only source of truth.
                current = (
                    handle is not None
                    and record is not None
                    and handle.job_id == job_id
                    and handle.attempt == attempt
                    and record.state is JobState.RUNNING
                )
                if not current:
                    continue
                if kind == MSG_STARTED:
                    record.started_at = time.time()
                    continue
                self.pool.release(handle)
                if kind == MSG_DONE:
                    if detail.get("sweep_cache_hit"):
                        self.telemetry.count(tm.CACHE_HITS_SWEEP)
                    else:
                        self.telemetry.count(tm.SIMULATIONS_RUN)
                    if detail.get("resumed"):
                        self.telemetry.count(tm.JOBS_RESUMED)
                    self._finish(record, JobState.DONE)
                elif kind == MSG_CHAOS:
                    # an injected fault consumed the attempt; like any
                    # infrastructure failure it says nothing about the
                    # job, so retry with backoff (the plan's ``attempts``
                    # bound guarantees a clean attempt within reach).
                    self.telemetry.count(tm.CHAOS_INJECTIONS)
                    self._retry_or_fail(
                        record, detail.get("error", "injected chaos fault")
                    )
                elif kind == MSG_ERROR:
                    # a *reported* error is deterministic - fail fast.
                    record.error = detail.get("error", "unknown worker error")
                    self._finish(record, JobState.FAILED)

    def _check_workers(self) -> None:
        now = time.monotonic()  # handle.deadline is monotonic
        for worker_id, handle in list(self.pool.workers.items()):
            if not handle.alive():
                job_id = handle.job_id
                self.pool.respawn(worker_id)
                self.telemetry.count(tm.WORKER_RESPAWNS)
                if job_id is not None:
                    self.telemetry.count(tm.WORKER_DEATHS)
                    record = self._jobs.get(job_id)
                    if record is not None and record.state is JobState.RUNNING:
                        self._retry_or_fail(record, "worker process died")
            elif (
                handle.job_id is not None
                and handle.deadline
                and now > handle.deadline
            ):
                record = self._jobs.get(handle.job_id)
                self.telemetry.count(tm.JOBS_TIMED_OUT)
                self._kill_and_respawn(worker_id)
                if record is not None and record.state is JobState.RUNNING:
                    self._retry_or_fail(
                        record,
                        f"attempt exceeded {self.config.job_timeout_s}s timeout",
                    )

    def _dispatch(self) -> None:
        idle = self.pool.idle_workers()
        if not idle:
            return
        now = time.monotonic()  # not_before is monotonic (retry backoff)
        deferred: list[tuple[int, int, str]] = []
        while idle and self._heap:
            entry = heapq.heappop(self._heap)
            record = self._jobs.get(entry[2])
            if record is None or record.state is not JobState.QUEUED:
                continue  # cancelled (or otherwise superseded) while queued
            if record.not_before > now:
                deferred.append(entry)
                continue
            handle = idle.pop()
            record.attempts += 1
            record.state = JobState.RUNNING
            record.started_at = time.time()
            record.worker_id = handle.worker_id
            self.pool.assign(
                handle,
                record.job_id,
                record.attempts,
                record.spec.to_dict(),
                record.key,
                self.config.job_timeout_s,
            )
            self.telemetry.event(
                record.job_id,
                "running",
                attempt=record.attempts,
                worker_id=handle.worker_id,
            )
        for entry in deferred:
            heapq.heappush(self._heap, entry)

    # -- internal transitions (lock held) ------------------------------------
    def _kill_and_respawn(self, worker_id: int) -> None:
        self.pool.kill(worker_id)
        self.pool.respawn(worker_id)
        self.telemetry.count(tm.WORKER_RESPAWNS)

    def _retry_or_fail(self, record: JobRecord, reason: str) -> None:
        if record.attempts > self.config.max_retries:
            record.error = f"{reason} (attempt {record.attempts}, retries exhausted)"
            self._finish(record, JobState.FAILED)
            return
        backoff = self.config.retry_backoff_s * (2 ** (record.attempts - 1))
        record.state = JobState.QUEUED
        record.worker_id = None
        record.not_before = time.monotonic() + backoff
        heapq.heappush(
            self._heap, (record.spec.priority, next(self._seq), record.job_id)
        )
        self.telemetry.count(tm.JOBS_RETRIED)
        self.telemetry.event(
            record.job_id,
            "retrying",
            attempt=record.attempts,
            reason=reason,
            backoff_s=backoff,
        )

    def _finish(self, record: JobRecord, state: JobState) -> None:
        record.state = state
        record.finished_at = time.time()
        record.worker_id = None
        if state is JobState.DONE:
            self.telemetry.count(tm.JOBS_COMPLETED)
            self.telemetry.observe_latency(
                (record.finished_at - record.submitted_at) * 1e9
            )
            if record.started_at is not None:
                self.telemetry.charge(
                    "job.run", (record.finished_at - record.started_at) * 1e9
                )
                self.telemetry.charge(
                    "job.wait", (record.started_at - record.submitted_at) * 1e9
                )
        elif state is JobState.FAILED:
            self.telemetry.count(tm.JOBS_FAILED)
        self.telemetry.event(
            record.job_id,
            state.value,
            attempts=record.attempts,
            cache_hit=record.cache_hit,
            error=record.error,
        )
        self._done.notify_all()

    # -- convenience ----------------------------------------------------------
    def submit_dict(self, payload: dict[str, Any]) -> JobRecord:
        """Validate an untrusted payload and submit it (the HTTP path)."""
        spec = JobSpec.from_dict(payload)
        try:
            spec.build()  # surface config errors at submit, not in a worker
        except ConfigurationError:
            raise
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(str(exc)) from exc
        return self.submit(spec)
