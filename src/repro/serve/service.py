"""The simulation job service: scheduler, supervisor, and public API.

:class:`SimulationService` owns five pieces of state:

* a job table (``job_id -> JobRecord``) and a priority heap of queued
  jobs (``(priority, submit_seq)`` order: smaller priority first, FIFO
  within a priority),
* a :class:`~repro.serve.journal.JobJournal` - the write-ahead log
  every state transition is durably appended to *before* the service
  acts on it, and the thing that makes the job table survive a crash:
  startup replays the journal, reconstructs the table, requeues
  non-terminal jobs, and compacts,
* a :class:`~repro.serve.pool.WorkerPool` of simulator processes,
* a :class:`~repro.serve.store.ResultStore` probed at submit time -
  a spec whose content key is already stored completes instantly
  without touching the queue (the "re-submit is free" property),
* a :class:`~repro.serve.telemetry.Telemetry` instance every
  transition is mirrored into.

A single supervisor thread drives the event loop: drain worker
completion messages, detect dead workers and expired deadlines, requeue
or fail the affected jobs (bounded retries with exponential backoff),
respawn replacement workers, and dispatch queued jobs onto idle
workers.  Failure semantics: infrastructure failures (worker death,
timeout) are retried up to ``max_retries`` because they say nothing
about the job; an error *reported* by a healthy worker is deterministic
(the simulator is seeded) and fails the job immediately.

Overload and poison protection:

* **Admission control** - the queue is bounded by a high/low watermark
  pair with hysteresis: once the queued depth reaches
  ``queue_high_watermark`` new submissions are shed
  (:class:`QueueFullError` -> HTTP 429 + ``Retry-After``) until the
  depth falls back to ``queue_low_watermark``.  Store cache hits bypass
  admission (they never queue).
* **Poison-job circuit breaker** - a spec key that keeps killing
  workers (``poison_threshold`` deaths/timeout kills, counted across
  jobs and resubmissions) is quarantined: the job transitions to the
  terminal ``poisoned`` state and later submissions of the same key are
  poisoned immediately instead of consuming workers forever.
* **Graceful drain** - :meth:`drain` stops admission
  (:class:`ServiceDrainingError` -> HTTP 503) and dispatch, gives
  running jobs ``drain_timeout_s`` to finish (their periodic
  checkpoints bound lost work either way), journals still-running jobs
  back to ``queued``, compacts, and stops; the next startup replays
  them.
"""

from __future__ import annotations

import heapq
import itertools
import os
import queue
import threading
import time
from dataclasses import dataclass
from typing import Any, Optional

from repro.chaos.plan import active_plan
from repro.chaos.process import journal_kill_hook, shard_kill_hook
from repro.errors import ConfigurationError, CorruptResultError, ReproError
from repro.experiments.runner import _resolve_cache_dir
from repro.serve import telemetry as tm
from repro.serve.cache import LruCache
from repro.serve.journal import JobJournal
from repro.serve.jobs import JobRecord, JobSpec, JobState
from repro.serve.pool import MSG_CHAOS, MSG_DONE, MSG_ERROR, MSG_STARTED, WorkerPool
from repro.serve.store import ResultStore
from repro.serve.telemetry import Telemetry


class AdmissionError(ReproError):
    """A submission was rejected before any state was created.

    Carries the HTTP status the API layer should answer with and the
    ``Retry-After`` hint; the request is safe to retry verbatim.
    """

    status = 503

    def __init__(self, message: str, retry_after_s: float) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class QueueFullError(AdmissionError):
    """Shed: the queue is above the high watermark (HTTP 429)."""

    status = 429


class ServiceDrainingError(AdmissionError):
    """The service is draining or replaying its journal (HTTP 503)."""

    status = 503


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one service instance."""

    n_workers: int = 2
    #: real-time budget per attempt (monotonic); 0 disables deadlines.
    job_timeout_s: float = 300.0
    #: attempts beyond the first for infrastructure failures.
    max_retries: int = 2
    #: base of the exponential retry backoff (doubles per attempt).
    retry_backoff_s: float = 0.25
    #: supervisor tick; also bounds shutdown latency.
    poll_interval_s: float = 0.02
    #: ``run_sweep``-compatible memo cache directory for workers
    #: (None = the sweep executor's default resolution; "" disables).
    sweep_cache_dir: Optional[str] = None
    #: simulation phases between worker-side checkpoints (0 disables);
    #: a respawned attempt resumes from the last snapshot, so a crash
    #: loses at most this many phases of work.
    checkpoint_every_phases: int = 256
    #: queued depth at which new submissions are shed (429).
    queue_high_watermark: int = 512
    #: queued depth at which shedding stops again (hysteresis).
    queue_low_watermark: int = 384
    #: worker deaths/timeout kills on one spec key before the key is
    #: quarantined as ``poisoned`` (0 disables the breaker).
    poison_threshold: int = 3
    #: how long :meth:`SimulationService.drain` waits for running jobs.
    drain_timeout_s: float = 10.0
    #: ``Retry-After`` hint (seconds) sent with shed/drain responses.
    shed_retry_after_s: float = 1.0
    #: write-ahead journal path (None = ``<store_dir>/journal.jsonl``).
    journal_path: Optional[str] = None
    #: in-memory result cache budget (MiB); 0 disables the hot tier.
    mem_cache_mb: int = 64
    #: max queued jobs sharing one workload/setup signature dispatched
    #: to a warm worker as one batch; 1 restores solo dispatch.
    batch_max: int = 8
    #: identity of this instance inside a fleet (reported by /healthz,
    #: targeted by the ``process.shard_kill`` chaos point); None when
    #: running solo.
    shard_name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.mem_cache_mb < 0:
            raise ConfigurationError("mem_cache_mb must be >= 0")
        if self.batch_max < 1:
            raise ConfigurationError("batch_max must be >= 1")
        if self.queue_high_watermark < 1:
            raise ConfigurationError("queue_high_watermark must be >= 1")
        if not 0 <= self.queue_low_watermark <= self.queue_high_watermark:
            raise ConfigurationError(
                "queue_low_watermark must be in [0, queue_high_watermark]"
            )
        if self.poison_threshold < 0:
            raise ConfigurationError("poison_threshold must be >= 0")
        if self.drain_timeout_s < 0:
            raise ConfigurationError("drain_timeout_s must be >= 0")


class SimulationService:
    """Asynchronous, supervised simulation job service."""

    def __init__(
        self,
        store_dir: str,
        config: Optional[ServiceConfig] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.store = ResultStore(store_dir)
        self.telemetry = Telemetry()
        #: hot tier over the result store; holds only validated documents.
        self.result_cache = LruCache(self.config.mem_cache_mb * 1024 * 1024)
        self._evictions_reported = 0
        self.journal = JobJournal(
            self.config.journal_path
            or os.path.join(store_dir, "journal.jsonl")
        )
        plan = active_plan()
        if plan is not None:
            hook = journal_kill_hook(plan) or shard_kill_hook(
                plan, self.config.shard_name
            )
            if hook is not None:
                self.journal.on_append = hook
        if self.config.sweep_cache_dir == "":
            cache_dir: Optional[str] = None
        elif self.config.sweep_cache_dir is not None:
            cache_dir = self.config.sweep_cache_dir
        else:
            cache_dir = _resolve_cache_dir(True, None)
        self.pool = WorkerPool(
            self.config.n_workers,
            store_dir,
            cache_dir,
            checkpoint_every=self.config.checkpoint_every_phases,
        )
        self._jobs: dict[str, JobRecord] = {}
        self._heap: list[tuple[int, int, str]] = []
        self._seq = itertools.count(1)
        self._lock = threading.RLock()
        self._done = threading.Condition(self._lock)
        self._stop = threading.Event()
        self._supervisor: Optional[threading.Thread] = None
        #: queued-job depth (kept exact so admission is O(1), not a scan).
        self._queued = 0
        self._shedding = False
        self._draining = False
        self._replaying = True
        #: poisoned spec keys -> reason (rebuilt from the journal).
        self._poisoned: dict[str, str] = {}
        #: infrastructure deaths per spec key (the breaker's memory).
        self._death_counts: dict[str, int] = {}
        self._recover()
        self._replaying = False

    # -- crash recovery -------------------------------------------------------
    def _recover(self) -> None:
        """Replay the journal into a live job table, then compact.

        Last-write-wins per job id.  Terminal jobs keep their state
        (their results live in the store); non-terminal jobs - queued
        when the crash hit, or running (the worker is gone; PR 4
        checkpoints make the re-run cheap) - are requeued exactly once.
        A requeued job whose result key landed in the store before the
        crash completes instantly instead of recomputing.
        """
        replay = self.journal.replay()
        max_seq = 0
        for entry in replay.entries:
            if entry.get("op") != "job":
                continue
            try:
                record = JobRecord.from_dict(entry.get("record"))
            except ReproError:
                self.telemetry.count("journal.bad_records")
                continue
            self._jobs[record.job_id] = record
            try:
                max_seq = max(max_seq, int(record.job_id.rsplit("-", 1)[-1]))
            except ValueError:
                pass
        self._seq = itertools.count(max_seq + 1)
        for record in self._jobs.values():
            self.telemetry.count(tm.JOBS_JOURNAL_REPLAYED)
            if record.state is JobState.POISONED:
                self._poisoned[record.key] = record.error or "poisoned"
            if record.state.terminal:
                continue
            record.worker_id = None
            record.not_before = 0.0
            if self.store.contains(record.key):
                record.state = JobState.DONE
                record.cache_hit = True
                record.finished_at = time.time()
                self.telemetry.count(tm.CACHE_HITS_STORE)
                self.telemetry.count(tm.CACHE_DISK_HITS)
                self.telemetry.count(tm.JOBS_COMPLETED)
                self.telemetry.event(
                    record.job_id, "done", cache_hit=True, replayed=True
                )
                continue
            record.state = JobState.QUEUED
            heapq.heappush(
                self._heap, (record.spec.priority, next(self._seq), record.job_id)
            )
            self._queued += 1
            self.telemetry.event(
                record.job_id, "requeued", replayed=True, attempts=record.attempts
            )
        if replay.torn_tail:
            self.telemetry.count("journal.torn_tails")
        if replay.entries or replay.total_bytes:
            self._compact()
        self._update_shedding()

    def _compact(self) -> None:
        """Fold the journal into one snapshot of the current job table."""
        entries = [
            {"op": "job", "record": r.to_dict()} for r in self._jobs.values()
        ]
        self.journal.compact(entries)
        self.telemetry.count(tm.JOURNAL_COMPACTIONS)

    def _journal_record(self, record: JobRecord) -> None:
        """Durably log one transition (called with the lock held)."""
        self.journal.append({"op": "job", "record": record.to_dict()})

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> "SimulationService":
        self.pool.start()
        self._supervisor = threading.Thread(
            target=self._supervise, name="repro-serve-supervisor", daemon=True
        )
        self._supervisor.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        self._stop.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=timeout)
        self.pool.stop()
        self.journal.close()

    def drain(self, timeout: Optional[float] = None) -> None:
        """Graceful shutdown: stop admission, settle, journal, stop.

        New submissions are rejected with :class:`ServiceDrainingError`
        (HTTP 503) and queued jobs stay queued; running jobs get up to
        ``drain_timeout_s`` to finish (worker checkpoints bound the lost
        work if they don't).  Whatever is still running is journaled
        back to ``queued``, the journal is compacted, and the service
        stops - the next startup requeues the remainder.
        """
        budget = self.config.drain_timeout_s if timeout is None else timeout
        with self._lock:
            already = self._draining
            self._draining = True
        if not already:
            self.telemetry.event("service", "draining")
        deadline = time.monotonic() + budget
        while time.monotonic() < deadline:
            with self._lock:
                running = any(
                    r.state is JobState.RUNNING for r in self._jobs.values()
                )
            if not running:
                break
            time.sleep(max(0.01, self.config.poll_interval_s))
        with self._lock:
            for record in self._jobs.values():
                if record.state is not JobState.RUNNING:
                    continue
                record.state = JobState.QUEUED
                record.worker_id = None
                record.not_before = 0.0
                self._queued += 1
                self._journal_record(record)
                self.telemetry.event(
                    record.job_id, "requeued", drain=True, attempts=record.attempts
                )
            self._compact()
        self.stop()

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def __enter__(self) -> "SimulationService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- admission ------------------------------------------------------------
    def _update_shedding(self) -> None:
        """Watermark hysteresis (lock held): flip the shedding latch."""
        if not self._shedding and self._queued >= self.config.queue_high_watermark:
            self._shedding = True
            self.telemetry.event("service", "shedding", queue_depth=self._queued)
        elif self._shedding and self._queued <= self.config.queue_low_watermark:
            self._shedding = False
            self.telemetry.event("service", "admitting", queue_depth=self._queued)

    def readiness(self) -> tuple[bool, dict[str, Any]]:
        """The ``/readyz`` verdict: ready to accept new work, and why not."""
        with self._lock:
            self._update_shedding()  # probe sees the current watermark verdict
            reasons = []
            if self._replaying:
                reasons.append("replaying journal")
            if self._draining:
                reasons.append("draining")
            if self._shedding:
                reasons.append(
                    f"shedding: queue depth {self._queued} reached high "
                    f"watermark {self.config.queue_high_watermark}"
                )
            detail = {
                "ready": not reasons,
                "reasons": reasons,
                "queue_depth": self._queued,
                "draining": self._draining,
                "shedding": self._shedding,
            }
        return not reasons, detail

    # -- client API -----------------------------------------------------------
    def submit(self, spec: JobSpec) -> JobRecord:
        """Enqueue a job (or serve it instantly from the result store).

        Raises :class:`ServiceDrainingError` while draining/replaying
        and :class:`QueueFullError` when the queue is above the high
        watermark - in both cases no job state is created and the
        request is safe to retry after the advertised delay.
        """
        key = spec.cache_key()
        retry_after = self.config.shed_retry_after_s
        with self._lock:
            if self._draining or self._replaying:
                raise ServiceDrainingError(
                    "service is draining; retry against the restarted instance",
                    retry_after,
                )
            poisoned = self._poisoned.get(key)
        now = time.time()
        record = JobRecord(
            job_id="", spec=spec, key=key, submitted_at=now
        )
        if poisoned is not None:
            with self._lock:
                record.job_id = f"job-{next(self._seq):08d}"
                record.error = f"spec key {key[:12]}.. is quarantined: {poisoned}"
                self._jobs[record.job_id] = record
                self.telemetry.count(tm.JOBS_SUBMITTED)
                self._finish(record, JobState.POISONED)
            return record
        mem_hit = key in self.result_cache
        if mem_hit or self.store.contains(key):
            record.cache_hit = True
            with self._lock:
                record.job_id = f"job-{next(self._seq):08d}"
                self._jobs[record.job_id] = record
                self.telemetry.count(tm.JOBS_SUBMITTED)
                self.telemetry.count(tm.CACHE_HITS_STORE)
                self.telemetry.count(
                    tm.CACHE_MEM_HITS if mem_hit else tm.CACHE_DISK_HITS
                )
                self._finish(record, JobState.DONE)
            return record
        with self._lock:
            self._update_shedding()
            if self._shedding:
                self.telemetry.count(tm.QUEUE_SHED)
                raise QueueFullError(
                    f"queue depth {self._queued} is at the high watermark "
                    f"({self.config.queue_high_watermark}); retry later",
                    retry_after,
                )
            seq = next(self._seq)
            record.job_id = f"job-{seq:08d}"
            self.telemetry.count(tm.JOBS_SUBMITTED)
            self._jobs[record.job_id] = record
            self._journal_record(record)
            heapq.heappush(self._heap, (spec.priority, seq, record.job_id))
            self._queued += 1
        self.telemetry.event(
            record.job_id,
            "queued",
            key=key,
            workload=spec.workload,
            priority=spec.priority,
        )
        return record

    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            record = self._jobs.get(job_id)
        if record is None:
            raise KeyError(job_id)
        return record

    def result_doc(self, job_id: str) -> Optional[dict[str, Any]]:
        """The stored result document of a DONE job (None until then).

        Tiered read: the in-memory LRU answers first
        (``cache.mem_hits``); otherwise the on-disk store is read and -
        only after it validated the checksum - the document is memoized
        for the next probe (``cache.disk_hits``).  A corrupt entry
        raises :class:`~repro.errors.CorruptResultError` *after* the
        store has quarantined it, and is never memoized, so
        resubmitting the same spec recomputes instead of serving the
        bad document from memory.
        """
        record = self.get(job_id)
        if record.state is not JobState.DONE:
            return None
        doc = self.result_cache.get(record.key)
        if doc is not None:
            self.telemetry.count(tm.CACHE_MEM_HITS)
            return doc
        try:
            doc = self.store.get(record.key)
        except KeyError:
            self.telemetry.count(tm.CACHE_MISSES)
            return None
        except CorruptResultError:
            self.telemetry.count(tm.RESULTS_QUARANTINED)
            self.result_cache.discard(record.key)
            raise
        self.telemetry.count(tm.CACHE_DISK_HITS)
        self.result_cache.put(record.key, doc)
        return doc

    # -- store transfer (fleet migration surface) -----------------------------
    def store_keys(self) -> list[str]:
        """Every content key this shard's store holds (sorted)."""
        return list(self.store.keys())

    def export_result(self, key: str) -> dict[str, Any]:
        """Export one store entry for migration (checksum included)."""
        payload = self.store.export_entry(key)
        self.telemetry.count(tm.STORE_EXPORTS)
        return payload

    def import_result(
        self, key: str, doc: dict[str, Any], trace_b64: Optional[str] = None
    ) -> bool:
        """Verify + persist an entry exported by another shard.

        Returns ``False`` for an idempotent re-import of a key already
        held; raises ``ValueError`` (HTTP 400) on checksum mismatch so a
        corrupted transfer can never be planted into the store.
        """
        imported = self.store.import_entry(key, doc, trace_b64)
        if imported:
            self.telemetry.count(tm.STORE_IMPORTS)
            self.telemetry.event("store", "imported", key=key)
        return imported

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued or running job; False if already terminal.

        Cancelling a member of a running batch kills the whole worker
        (the worker executes members sequentially and cannot skip one),
        so its sibling members requeue immediately with their
        dispatch-time attempt refunded.
        """
        with self._lock:
            record = self._jobs.get(job_id)
            if record is None:
                raise KeyError(job_id)
            if record.state.terminal:
                return False
            if record.state is JobState.RUNNING and record.worker_id is not None:
                handle = self.pool.workers.get(record.worker_id)
                siblings = []
                if handle is not None:
                    siblings = [j for j in handle.assignments if j != job_id]
                self._kill_and_respawn(record.worker_id)
                for sibling_id in siblings:
                    sibling = self._jobs.get(sibling_id)
                    if sibling is not None and sibling.state is JobState.RUNNING:
                        self._requeue_unstarted(sibling)
            elif record.state is JobState.QUEUED:
                self._queued -= 1
                self._update_shedding()
            self._finish(record, JobState.CANCELLED)
        self.telemetry.count(tm.JOBS_CANCELLED)
        return True

    def wait(self, job_id: str, timeout: Optional[float] = None) -> JobRecord:
        """Block until the job reaches a terminal state."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._done:
            while True:
                record = self._jobs.get(job_id)
                if record is None:
                    raise KeyError(job_id)
                if record.state.terminal:
                    return record
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(
                        f"{job_id} still {record.state.value} after {timeout}s"
                    )
                self._done.wait(timeout=0.1 if remaining is None else min(0.1, remaining))

    def jobs(self) -> list[JobRecord]:
        with self._lock:
            return list(self._jobs.values())

    def metrics(self) -> dict[str, Any]:
        cache_stats = self.result_cache.stats()
        with self._lock:
            # mirror LRU evictions into the monotonic counter set lazily
            # (the cache counts internally; telemetry learns the delta).
            delta = cache_stats.evictions - self._evictions_reported
            if delta > 0:
                self.telemetry.count(tm.CACHE_EVICTIONS, delta)
                self._evictions_reported = cache_stats.evictions
            states = [r.state for r in self._jobs.values()]
            gauges = {
                "mem_cache_entries": cache_stats.entries,
                "mem_cache_bytes": cache_stats.size_bytes,
                "mem_cache_max_bytes": cache_stats.max_bytes,
                "mem_cache_evictions": cache_stats.evictions,
                "batch_max": self.config.batch_max,
                "queue_depth": sum(1 for s in states if s is JobState.QUEUED),
                "jobs_in_flight": sum(1 for s in states if s is JobState.RUNNING),
                "jobs_total": len(states),
                "workers_alive": self.pool.alive_count(),
                "workers_busy": self.pool.busy_count(),
                "workers_configured": self.pool.n_workers,
                "draining": self._draining,
                "shedding": self._shedding,
                "replaying": self._replaying,
                "queue_high_watermark": self.config.queue_high_watermark,
                "queue_low_watermark": self.config.queue_low_watermark,
                "queue_shed_total": self.telemetry.counter(tm.QUEUE_SHED),
                "poisoned_keys": len(self._poisoned),
                "journal_size_bytes": self.journal.size_bytes(),
                "journal_records": self.journal.record_count,
            }
        return self.telemetry.snapshot(gauges)

    # -- supervisor loop ------------------------------------------------------
    def _supervise(self) -> None:
        while not self._stop.is_set():
            try:
                progressed = self._drain_results()
                with self._lock:
                    self._check_workers()
                    self._dispatch()
            except Exception:  # keep supervising: one bad tick must not
                self.telemetry.count("supervisor.errors")  # kill the service
                progressed = False
            if not progressed:
                self._stop.wait(self.config.poll_interval_s)

    def _drain_results(self) -> bool:
        progressed = False
        while True:
            try:
                kind, worker_id, job_id, attempt, detail = (
                    self.pool.result_queue.get_nowait()
                )
            except queue.Empty:
                return progressed
            progressed = True
            with self._lock:
                handle = self.pool.workers.get(worker_id)
                record = self._jobs.get(job_id)
                # stale messages (from a killed/replaced worker, or for a
                # superseded attempt) are dropped: the current assignment
                # is the only source of truth.
                current = (
                    handle is not None
                    and record is not None
                    and handle.assignments.get(job_id) == attempt
                    and record.state is JobState.RUNNING
                )
                if not current:
                    continue
                if kind == MSG_STARTED:
                    record.started_at = time.time()
                    # this member is now the one on the clock: re-arm
                    # the per-attempt deadline for it.
                    handle.active_job = job_id
                    if self.config.job_timeout_s > 0:
                        handle.deadline = (
                            time.monotonic() + self.config.job_timeout_s
                        )
                    continue
                self.pool.release(handle, job_id)
                if kind == MSG_DONE:
                    if detail.get("sweep_cache_hit"):
                        self.telemetry.count(tm.CACHE_HITS_SWEEP)
                    else:
                        self.telemetry.count(tm.SIMULATIONS_RUN)
                    if detail.get("resumed"):
                        self.telemetry.count(tm.JOBS_RESUMED)
                    self._finish(record, JobState.DONE)
                elif kind == MSG_CHAOS:
                    # an injected fault consumed the attempt; like any
                    # infrastructure failure it says nothing about the
                    # job, so retry with backoff (the plan's ``attempts``
                    # bound guarantees a clean attempt within reach).
                    self.telemetry.count(tm.CHAOS_INJECTIONS)
                    self._retry_or_fail(
                        record, detail.get("error", "injected chaos fault")
                    )
                elif kind == MSG_ERROR:
                    # a *reported* error is deterministic - fail fast.
                    record.error = detail.get("error", "unknown worker error")
                    self._finish(record, JobState.FAILED)

    def _check_workers(self) -> None:
        now = time.monotonic()  # handle.deadline is monotonic
        for worker_id, handle in list(self.pool.workers.items()):
            if not handle.alive():
                assignments = dict(handle.assignments)
                self.pool.respawn(worker_id)
                self.telemetry.count(tm.WORKER_RESPAWNS)
                if assignments:
                    self.telemetry.count(tm.WORKER_DEATHS)
                    self._recover_batch(assignments, "worker process died")
            elif handle.assignments and handle.deadline and now > handle.deadline:
                assignments = dict(handle.assignments)
                self.telemetry.count(tm.JOBS_TIMED_OUT)
                self._kill_and_respawn(worker_id)
                self._recover_batch(
                    assignments,
                    f"attempt exceeded {self.config.job_timeout_s}s timeout",
                )

    def _recover_batch(
        self,
        assignments: dict[str, int],
        reason: str,
    ) -> None:
        """Recover the members a dead/killed worker was holding.

        Members execute in assignment order and every result is durably
        stored *before* its completion message is sent, so the batch
        decomposes deterministically even when the per-member progress
        messages died with the worker (a SIGKILL can race the queue's
        feeder thread):

        * a member whose result already reached the store finished -
          only the message was lost.  Finalize it as DONE.
        * the first remaining member was the one executing; only it is
          charged: a death count against the poison breaker, then retry
          with backoff (or terminal failure).
        * later siblings merely sat in the dead worker's queue - they
          requeue immediately with the dispatch-time attempt refunded,
          no backoff, no death count.
        """
        charged = False
        for job_id in assignments:
            record = self._jobs.get(job_id)
            if record is None or record.state is not JobState.RUNNING:
                continue
            if self.store.contains(record.key):
                self._finish(record, JobState.DONE)
            elif not charged:
                charged = True
                if not self._note_infra_death(record):
                    self._retry_or_fail(record, reason)
            else:
                self._requeue_unstarted(record)

    def _dispatch(self) -> None:
        if self._draining:
            return  # drain: running jobs settle, queued jobs stay queued
        idle = self.pool.idle_workers()
        if not idle:
            return
        now = time.monotonic()  # not_before is monotonic (retry backoff)
        deferred: list[tuple[int, int, str]] = []
        while idle and self._heap:
            batch = self._take_batch(now, deferred)
            if not batch:
                break
            handle = idle.pop()
            members = []
            for record in batch:
                record.attempts += 1
                record.state = JobState.RUNNING
                record.started_at = time.time()  # refined per MSG_STARTED
                record.worker_id = handle.worker_id
                self._queued -= 1
                self._journal_record(record)
                members.append(
                    (record.job_id, record.attempts, record.spec.to_dict(), record.key)
                )
                self.telemetry.event(
                    record.job_id,
                    "running",
                    attempt=record.attempts,
                    worker_id=handle.worker_id,
                    batch_size=len(batch),
                )
            self.pool.assign(handle, members, self.config.job_timeout_s)
        for entry in deferred:
            heapq.heappush(self._heap, entry)
        self._update_shedding()

    def _take_batch(
        self, now: float, deferred: list[tuple[int, int, str]]
    ) -> list[JobRecord]:
        """Pop the next dispatchable job plus queued jobs sharing its
        build signature, up to ``batch_max`` (lock held).

        The head job is strictly priority/FIFO order, as before; the
        rest of the batch is gathered by scanning the heap and pushing
        non-matching entries back, so the only reordering batching
        introduces is same-signature jobs riding along early - a
        deliberate throughput-for-strict-FIFO trade bounded by
        ``batch_max``.  Backoff-deferred jobs land in ``deferred`` (the
        caller re-pushes them after the dispatch round).
        """
        head: Optional[JobRecord] = None
        while self._heap:
            entry = heapq.heappop(self._heap)
            record = self._jobs.get(entry[2])
            if record is None or record.state is not JobState.QUEUED:
                continue  # cancelled (or otherwise superseded) while queued
            if record.not_before > now:
                deferred.append(entry)
                continue
            head = record
            break
        if head is None:
            return []
        batch = [head]
        if self.config.batch_max > 1:
            signature = head.spec.batch_signature()
            skipped: list[tuple[int, int, str]] = []
            while self._heap and len(batch) < self.config.batch_max:
                entry = heapq.heappop(self._heap)
                record = self._jobs.get(entry[2])
                if record is None or record.state is not JobState.QUEUED:
                    continue
                if (
                    record.not_before > now
                    or record.spec.batch_signature() != signature
                ):
                    skipped.append(entry)
                    continue
                batch.append(record)
            for entry in skipped:
                heapq.heappush(self._heap, entry)
        return batch

    def _requeue_unstarted(self, record: JobRecord) -> None:
        """Return a never-started batch sibling to the queue (lock held).

        The dispatch-time attempt is refunded: the member never ran, so
        charging it would burn retry budget (and skew backoff) for work
        a *different* job's failure interrupted.
        """
        record.attempts -= 1
        record.state = JobState.QUEUED
        record.worker_id = None
        record.not_before = 0.0
        self._queued += 1
        self._journal_record(record)
        heapq.heappush(
            self._heap, (record.spec.priority, next(self._seq), record.job_id)
        )
        self.telemetry.event(
            record.job_id,
            "requeued",
            batch_sibling=True,
            attempts=record.attempts,
        )

    # -- internal transitions (lock held) ------------------------------------
    def _kill_and_respawn(self, worker_id: int) -> None:
        self.pool.kill(worker_id)
        self.pool.respawn(worker_id)
        self.telemetry.count(tm.WORKER_RESPAWNS)

    def _note_infra_death(self, record: JobRecord) -> bool:
        """Count a worker death/timeout against the job's spec key.

        Returns True when the count reached ``poison_threshold`` and the
        breaker tripped - the record is then terminally POISONED and the
        key quarantined, so the caller must not retry.
        """
        if self.config.poison_threshold <= 0:
            return False
        count = self._death_counts.get(record.key, 0) + 1
        self._death_counts[record.key] = count
        if count < self.config.poison_threshold:
            return False
        reason = (
            f"{count} worker deaths/timeouts on key {record.key[:12]}.. "
            f"(threshold {self.config.poison_threshold})"
        )
        self._poisoned[record.key] = reason
        record.error = reason
        self._finish(record, JobState.POISONED)
        return True

    def _retry_or_fail(self, record: JobRecord, reason: str) -> None:
        if record.attempts > self.config.max_retries:
            record.error = f"{reason} (attempt {record.attempts}, retries exhausted)"
            self._finish(record, JobState.FAILED)
            return
        backoff = self.config.retry_backoff_s * (2 ** (record.attempts - 1))
        record.state = JobState.QUEUED
        record.worker_id = None
        record.not_before = time.monotonic() + backoff
        self._queued += 1
        self._journal_record(record)
        heapq.heappush(
            self._heap, (record.spec.priority, next(self._seq), record.job_id)
        )
        self.telemetry.count(tm.JOBS_RETRIED)
        self.telemetry.event(
            record.job_id,
            "retrying",
            attempt=record.attempts,
            reason=reason,
            backoff_s=backoff,
        )

    def _finish(self, record: JobRecord, state: JobState) -> None:
        record.state = state
        record.finished_at = time.time()
        record.worker_id = None
        self._journal_record(record)
        if state is JobState.DONE:
            self.telemetry.count(tm.JOBS_COMPLETED)
            self.telemetry.observe_latency(
                (record.finished_at - record.submitted_at) * 1e9
            )
            if record.started_at is not None:
                self.telemetry.charge(
                    "job.run", (record.finished_at - record.started_at) * 1e9
                )
                self.telemetry.charge(
                    "job.wait", (record.started_at - record.submitted_at) * 1e9
                )
        elif state is JobState.FAILED:
            self.telemetry.count(tm.JOBS_FAILED)
        elif state is JobState.POISONED:
            self.telemetry.count(tm.JOBS_POISONED)
        self.telemetry.event(
            record.job_id,
            state.value,
            attempts=record.attempts,
            cache_hit=record.cache_hit,
            error=record.error,
        )
        self._done.notify_all()

    # -- convenience ----------------------------------------------------------
    def submit_dict(self, payload: dict[str, Any]) -> JobRecord:
        """Validate an untrusted payload and submit it (the HTTP path)."""
        spec = JobSpec.from_dict(payload)
        try:
            spec.build()  # surface config errors at submit, not in a worker
        except ConfigurationError:
            raise
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(str(exc)) from exc
        return self.submit(spec)


class JoinAnnouncer:
    """Announces one shard to the fleet's gateways (elastic membership).

    A shard started with ``--announce`` does not need to appear in any
    gateway's static registry: this background thread POSTs
    ``/fleet/join`` - ``shard_name``, the shard's advertised base URL,
    and its ``code_version`` - to the gateway endpoints until a
    *primary* accepts, then keeps re-announcing every ``interval_s`` so
    a gateway that restarted against an empty membership journal
    relearns the shard without operator action.  Joins are idempotent
    on the gateway side, so re-announcing is safe.

    Two behaviours make announcing survive primary elections: the pass
    **rotates** to start at whichever gateway last accepted (so a
    re-announce normally costs one request), and a follower's 503 hint
    body (``{"primary": <url>}``) is **chased** - the hinted URL is
    tried next, ahead of the static list, even when it names a gateway
    the operator never configured.  A ``tried`` set bounds the chase so
    two stale followers hinting at each other cannot loop.

    :meth:`leave` is the graceful-drain counterpart: a best-effort
    ``POST /fleet/leave`` to every gateway so the ring arc is migrated
    off before the shard's process exits.
    """

    def __init__(
        self,
        gateway_urls: list[str],
        shard_name: str,
        advertise_url: str,
        interval_s: float = 10.0,
    ) -> None:
        from repro.experiments.runner import code_version
        from repro.serve.client import ServiceClient

        if not shard_name:
            raise ConfigurationError("--announce requires --shard-name")
        self.shard_name = shard_name
        self.advertise_url = advertise_url
        self.interval_s = max(0.05, float(interval_s))
        self.code_version = code_version()
        self._urls = [url.rstrip("/") for url in gateway_urls]
        self._clients = {
            url: ServiceClient(
                url, timeout_s=5.0, connect_timeout_s=2.0, retries=0
            )
            for url in self._urls
        }
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        #: gateway URL that last accepted our join (None before any).
        self.joined_via: Optional[str] = None
        self.announce_attempts = 0
        #: follower primary-hints followed to a gateway outside the list.
        self.hints_chased = 0

    def _client_for(self, url: str):
        from repro.serve.client import ServiceClient

        url = url.rstrip("/")
        with self._lock:
            client = self._clients.get(url)
            if client is None:
                client = ServiceClient(
                    url, timeout_s=5.0, connect_timeout_s=2.0, retries=0
                )
                self._clients[url] = client
        return client

    def _payload(self) -> dict[str, Any]:
        return {
            "shard_name": self.shard_name,
            "url": self.advertise_url,
            "code_version": self.code_version,
        }

    def announce_once(self) -> bool:
        """One pass over the gateway list; True when a primary accepted."""
        from repro.serve.client import ServiceClientError

        payload = self._payload()
        with self._lock:
            start = self.joined_via
        order = list(self._urls)
        if start in order:
            # rotate so the gateway that last accepted is retried first
            pivot = order.index(start)
            order = order[pivot:] + order[:pivot]
        queue = list(order)
        tried: set[str] = set()
        while queue:
            url = queue.pop(0)
            if url in tried:
                continue
            tried.add(url)
            with self._lock:
                self.announce_attempts += 1
            try:
                self._client_for(url)._request("POST", "/fleet/join", payload)
            except ServiceClientError as exc:
                # a follower's 503 carries the acting primary's URL in
                # its body: chase it ahead of the static list.
                hint = (getattr(exc, "detail", None) or {}).get("primary")
                if isinstance(hint, str) and hint.rstrip("/") not in tried:
                    queue.insert(0, hint.rstrip("/"))
                    if hint.rstrip("/") not in self._urls:
                        with self._lock:
                            self.hints_chased += 1
                continue  # unreachable, follower (503), or rejected (403)
            except OSError:
                continue
            with self._lock:
                self.joined_via = url
            return True
        return False

    def _loop(self) -> None:
        while not self._stop.is_set():
            try:
                self.announce_once()
            except Exception:  # announcing must never kill the shard
                pass
            if self._stop.wait(self.interval_s):
                return

    def start(self) -> "JoinAnnouncer":
        self._thread = threading.Thread(
            target=self._loop, name="repro-serve-announcer", daemon=True
        )
        self._thread.start()
        return self

    def leave(self, drain_timeout_s: float = 30.0) -> None:
        """Best-effort graceful departure (called before drain).

        A leave is accepted with 202 while the gateway migrates this
        shard's ring arc *out* - and that migration pulls from this
        shard's own store over HTTP, so tearing the server down the
        moment the POST returns would strand the arc (the migrator
        would skip every key as unreachable).  After a gateway accepts,
        poll its ``/fleet/view`` until this member reads ``left`` (the
        migration completed and routing flipped) or ``drain_timeout_s``
        runs out, then let the caller shut the HTTP server down.
        """
        from repro.serve.client import ServiceClientError

        self._stop.set()
        payload = {"shard_name": self.shard_name}
        accepted = None
        with self._lock:
            clients = list(self._clients.values())
            start = self.joined_via
        # whoever accepted our join is most likely the acting primary
        clients.sort(key=lambda c: c.base_url != start)
        for client in clients:
            try:
                client._request("POST", "/fleet/leave", payload)
            except (ServiceClientError, OSError):
                continue
            accepted = client
            break
        if accepted is None:
            return
        deadline = time.monotonic() + max(0.0, float(drain_timeout_s))
        while time.monotonic() < deadline:
            try:
                view = accepted._request("GET", "/fleet/view")
            except (ServiceClientError, OSError):
                return  # gateway gone; nothing left to wait for
            states = {
                m.get("name"): m.get("state")
                for m in view.get("members", [])
            }
            if states.get(self.shard_name, "left") == "left":
                return
            time.sleep(0.2)

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
