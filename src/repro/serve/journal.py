"""Write-ahead job journal: the service's durable state of record.

The :class:`SimulationService` job table and priority heap live in
memory; the journal is what makes them survive a crash.  Every job
state transition is appended - fsync'd before the service acts on it -
so a ``kill -9`` at *any* record boundary followed by a restart
reconstructs an equivalent job table: terminal jobs keep their stored
results, non-terminal jobs are requeued.

Format: an append-only file of length+checksum-framed JSONL records,

``J1 <crc32:8 hex> <len:8 hex> <payload JSON>\\n``

where ``crc32``/``len`` cover the payload bytes.  The fixed-width
header makes every frame self-describing, so replay never depends on
the payload being well-formed: a record torn by a crash mid-``write``
(bad length, bad checksum, missing trailing newline, truncated header)
terminates replay at the last whole record and the torn tail is
dropped - exactly the write-ahead-log contract.  Appends are
``flush`` + ``fsync`` per record; compaction rewrites the file through
a tempfile + ``os.replace`` + directory fsync (the same durability
discipline as :class:`~repro.serve.store.ResultStore`), and stale
compaction tempfiles from a writer that died mid-compaction are swept
when the journal is opened.

The journal stores *entries* (plain JSON objects) and knows nothing of
job semantics; the service layers last-write-wins replay of
``{"op": "job", "record": {...}}`` entries on top.

``on_append`` is a post-fsync hook (called with the running count of
appended records) used by the chaos layer to SIGKILL the service at a
chosen record ordinal - see
:func:`repro.chaos.process.journal_kill_hook`.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional

from repro.errors import JournalError
from repro.serve.store import fsync_dir

#: frame magic; bump on any framing change.
MAGIC = b"J1"
#: ``b"J1 " + 8 hex crc + b" " + 8 hex len + b" "``
_HEADER_LEN = len(MAGIC) + 1 + 8 + 1 + 8 + 1


def frame_entry(entry: dict[str, Any]) -> bytes:
    """One durable journal frame for ``entry`` (header + JSON + newline)."""
    payload = json.dumps(entry, sort_keys=True, separators=(",", ":")).encode("utf-8")
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return b"%s %08x %08x %s\n" % (MAGIC, crc, len(payload), payload)


@dataclass
class JournalReplay:
    """What :meth:`JobJournal.replay` recovered from disk."""

    entries: list[dict[str, Any]] = field(default_factory=list)
    #: byte offset of the end of the last whole record.
    valid_bytes: int = 0
    #: total bytes on disk (``> valid_bytes`` means a torn tail).
    total_bytes: int = 0
    #: a trailing record failed framing/checksum and was dropped.
    torn_tail: bool = False

    @property
    def dropped_bytes(self) -> int:
        return self.total_bytes - self.valid_bytes


def _parse_frames(data: bytes) -> JournalReplay:
    """Decode whole frames from ``data``; stop at the first bad one.

    Append-only + per-record fsync means the only way a bad frame can
    exist is a crash mid-append - which, by construction, is the *last*
    thing written.  Anything after the first invalid frame is therefore
    unreachable torn debris and is dropped (reported via
    ``torn_tail``/``dropped_bytes``), never silently half-parsed.
    """
    replay = JournalReplay(total_bytes=len(data))
    offset = 0
    n = len(data)
    while offset < n:
        header_end = offset + _HEADER_LEN
        if header_end > n:
            break  # torn header
        header = data[offset:header_end]
        if (
            header[: len(MAGIC)] != MAGIC
            or header[len(MAGIC)] != 0x20
            or header[len(MAGIC) + 9] != 0x20
            or header[-1] != 0x20
        ):
            break  # torn/corrupt header
        try:
            crc = int(header[len(MAGIC) + 1 : len(MAGIC) + 9], 16)
            length = int(header[len(MAGIC) + 10 : len(MAGIC) + 18], 16)
        except ValueError:
            break
        end = header_end + length + 1
        if end > n:
            break  # torn payload
        payload = data[header_end : header_end + length]
        if data[end - 1 : end] != b"\n" or (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
            break
        try:
            entry = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            break
        if isinstance(entry, dict):
            replay.entries.append(entry)
        offset = end
        replay.valid_bytes = offset
    replay.torn_tail = replay.valid_bytes < replay.total_bytes
    return replay


class JobJournal:
    """Append-only, fsync'd, checksum-framed journal at one path."""

    def __init__(
        self,
        path: str | Path,
        on_append: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.path = Path(path)
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise JournalError(f"cannot create journal directory: {exc}") from exc
        #: post-fsync hook, called with the running appended-record count
        #: (chaos uses it to kill the service at a chosen ordinal).
        self.on_append = on_append
        #: records appended by this instance (not counting replayed ones).
        self.records_appended = 0
        #: live records on disk (set by replay/compact, bumped by append).
        self.record_count = 0
        #: compactions performed by this instance.
        self.compactions = 0
        self._fh = None
        self._lock = threading.Lock()
        self._sweep_stale_tmp()

    # -- hygiene --------------------------------------------------------------
    def _sweep_stale_tmp(self) -> int:
        """Remove compaction tempfiles left by a writer that died mid-swap.

        The real journal is authoritative; a stale ``journal.jsonl.tmp.*``
        must neither shadow it nor accumulate.
        """
        swept = 0
        for stale in self.path.parent.glob(self.path.name + ".tmp.*"):
            try:
                stale.unlink()
                swept += 1
            except OSError:
                pass
        return swept

    # -- replay ---------------------------------------------------------------
    def replay(self) -> JournalReplay:
        """Decode every whole record on disk (crash-tolerant, read-only)."""
        try:
            data = self.path.read_bytes()
        except FileNotFoundError:
            return JournalReplay()
        except OSError as exc:
            raise JournalError(f"cannot read journal {self.path}: {exc}") from exc
        replay = _parse_frames(data)
        with self._lock:
            self.record_count = len(replay.entries)
        return replay

    # -- writes ---------------------------------------------------------------
    def _open_locked(self) -> None:
        if self._fh is None:
            try:
                self._fh = open(self.path, "ab")
            except OSError as exc:
                raise JournalError(
                    f"cannot open journal {self.path}: {exc}"
                ) from exc

    def append(self, entry: dict[str, Any]) -> int:
        """Durably append one entry; returns the appended-record count.

        The entry is on stable storage (``flush`` + ``fsync``) before
        this returns - the caller may act on the transition knowing a
        crash cannot lose it.
        """
        data = frame_entry(entry)
        with self._lock:
            self._open_locked()
            try:
                self._fh.write(data)
                self._fh.flush()
                os.fsync(self._fh.fileno())
            except OSError as exc:
                raise JournalError(
                    f"cannot append to journal {self.path}: {exc}"
                ) from exc
            self.records_appended += 1
            self.record_count += 1
            count = self.records_appended
            hook = self.on_append
        if hook is not None:
            hook(count)
        return count

    def compact(self, entries: list[dict[str, Any]]) -> None:
        """Atomically replace the journal with a snapshot of ``entries``.

        Replaying the compacted journal yields exactly ``entries`` - the
        transition history is folded into its final state.  The swap is
        tempfile + fsync + ``os.replace`` + directory fsync, so a crash
        at any point leaves either the old journal or the new one.
        """
        tmp = self.path.with_name(f"{self.path.name}.tmp.{os.getpid()}")
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None
            try:
                with open(tmp, "wb") as fh:
                    for entry in entries:
                        fh.write(frame_entry(entry))
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, self.path)
            except OSError as exc:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise JournalError(
                    f"cannot compact journal {self.path}: {exc}"
                ) from exc
            fsync_dir(self.path.parent)
            self.record_count = len(entries)
            self.compactions += 1
            self._open_locked()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    # -- observability --------------------------------------------------------
    def size_bytes(self) -> int:
        try:
            return self.path.stat().st_size
        except OSError:
            return 0
