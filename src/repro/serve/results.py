"""RunResult <-> JSON document serialization.

One serializer for every machine-readable surface: the service's result
store, the ``GET /jobs/<id>/result`` endpoint, and ``uvmrepro run
--json`` all emit the same document, so downstream tooling parses a
single schema regardless of whether a result came from a local run or
the service.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional

from repro.core.driver import RunResult
from repro.sim.stats import PAPER_CATEGORIES, SERVICE_SUBCATEGORIES
from repro.trace.io import trace_summary

#: schema version of the result document; bump on shape change.
RESULT_DOC_VERSION = 1


def _breakdown_doc(breakdown) -> dict[str, Any]:
    return {
        "rows_ns": dict(breakdown.rows),
        "other_ns": breakdown.other_ns,
        "total_ns": breakdown.total_ns,
    }


def result_to_doc(
    result: RunResult, extra: Optional[dict[str, Any]] = None
) -> dict[str, Any]:
    """Serialize a completed run into a JSON-safe document.

    ``extra`` merges additional context (job id, workload name, wall
    time) under the ``"meta"`` key.  Trace event streams are *not*
    inlined - when present they are summarized via
    :func:`repro.trace.io.trace_summary` and persisted separately as
    ``.npz`` by the result store.
    """
    doc: dict[str, Any] = {
        "doc_version": RESULT_DOC_VERSION,
        "meta": dict(extra or {}),
        "total_time_ns": result.total_time_ns,
        "total_time_us": result.total_time_us,
        "breakdown": _breakdown_doc(result.timer.breakdown(PAPER_CATEGORIES)),
        "service_breakdown": _breakdown_doc(
            result.timer.breakdown(SERVICE_SUBCATEGORIES + ("service.evict",))
        ),
        "timer_ns": result.timer.as_dict(),
        "counters": result.counters.as_dict(),
        "dma": {
            "h2d_bytes": result.dma.h2d_bytes,
            "d2h_bytes": result.dma.d2h_bytes,
            "h2d_transfers": result.dma.h2d_transfers,
            "d2h_transfers": result.dma.d2h_transfers,
        },
        "config": {
            "driver": _config_doc(result.driver_config),
            "gpu": _config_doc(result.gpu_config),
        },
        "n_streams": result.n_streams,
        "data_bytes": result.data_bytes,
        "gpu_phases": result.gpu_phases,
    }
    if result.trace is not None and result.trace.fault_page.size:
        doc["trace_summary"] = trace_summary(result.trace)
    return doc


def _config_doc(config) -> dict[str, Any]:
    doc = {}
    for f in dataclasses.fields(config):
        value = getattr(config, f.name)
        if isinstance(value, (bool, int, float, str, type(None))):
            doc[f.name] = value
        else:  # enums and nested objects: store their stable string form
            doc[f.name] = getattr(value, "value", str(value))
    return doc
