"""JSON-over-HTTP surface for the simulation service (stdlib only).

Endpoints:

* ``POST /jobs``                - submit a job spec, returns the record
* ``GET  /jobs``                - list job summaries
* ``GET  /jobs/<id>``           - one job's record (state, attempts, ...)
* ``GET  /jobs/<id>/result``    - the stored result document (404 until done)
* ``DELETE /jobs/<id>``         - cancel a queued/running job
* ``GET  /metrics``             - telemetry snapshot (counters, gauges,
  p50/p95 job latency, cache hit rate)
* ``GET  /events?since=N``      - incremental job-transition stream
* ``GET  /healthz``             - liveness probe (200 while the process
  serves, even when draining); reports ``role`` (``"service"``),
  ``code_version``, and the configured ``shard_name`` so fleet
  operators can detect mixed-version or misconfigured shards
* ``GET  /readyz``              - readiness probe: 503 + ``Retry-After``
  while replaying the journal, draining, or shedding load
* ``GET  /store/keys``          - content keys held by this shard's store
* ``GET  /store/entries/<key>`` - export one entry (doc + npz payload,
  checksum included) for fleet store migration
* ``POST /store/entries/<key>`` - import an exported entry
  (checksum-verified; 400 on mismatch, idempotent re-imports are no-ops)

Overload and drain map onto status codes clients can act on: a
submission shed by admission control answers **429** and a submission
during drain/replay answers **503**, both with a ``Retry-After`` header
and a ``retry_after_s`` body field - no job state was created, the
request is safe to retry verbatim.

Handlers run on :class:`http.server.ThreadingHTTPServer` threads; all
shared state lives in the thread-safe :class:`SimulationService`.
"""

from __future__ import annotations

import threading
from http.server import ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.errors import CorruptResultError, ReproError
from repro.experiments.runner import code_version
from repro.serve.service import AdmissionError, SimulationService
from repro.serve.wire import JsonRequestHandler


class ServiceHTTPServer(ThreadingHTTPServer):
    """HTTP server bound to one :class:`SimulationService`."""

    daemon_threads = True
    #: the default backlog (5) drops/resets connections under a
    #: concurrent submission burst; size for hundreds of clients.
    request_queue_size = 256

    def __init__(self, address: tuple[str, int], service: SimulationService):
        super().__init__(address, _Handler)
        self.service = service

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _Handler(JsonRequestHandler):
    server: ServiceHTTPServer

    # -- routes ---------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        if self.network_fault_precheck():
            return
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["healthz"]:
                # liveness: the process is up; drain is advisory here
                self.send_json(
                    200,
                    {
                        "ok": True,
                        "draining": self.server.service.draining,
                        "role": "service",
                        "code_version": code_version(),
                        "shard_name": self.server.service.config.shard_name,
                    },
                )
            elif parts == ["readyz"]:
                ready, detail = self.server.service.readiness()
                if ready:
                    self.send_json(200, detail)
                else:
                    self.send_retry_after(
                        503, detail, self.server.service.config.shed_retry_after_s
                    )
            elif parts == ["metrics"]:
                self.send_json(200, self.server.service.metrics())
            elif parts == ["events"]:
                query = parse_qs(url.query)
                since = int(query.get("since", ["0"])[0])
                limit = int(query.get("limit", ["1000"])[0])
                events = self.server.service.telemetry.events_since(since, limit)
                next_since = events[-1]["seq"] if events else since
                self.send_json(200, {"events": events, "next_since": next_since})
            elif parts == ["jobs"]:
                records = self.server.service.jobs()
                self.send_json(
                    200,
                    {
                        "jobs": [
                            {
                                "job_id": r.job_id,
                                "state": r.state.value,
                                "workload": r.spec.workload,
                                "attempts": r.attempts,
                                "cache_hit": r.cache_hit,
                                # the fleet routing key: what lets a
                                # surviving gateway adopt this job after
                                # the gateway that submitted it died.
                                "digest": r.spec.spec_digest(),
                            }
                            for r in records
                        ]
                    },
                )
            elif parts == ["store", "keys"]:
                self.send_json(
                    200, {"keys": self.server.service.store_keys()}
                )
            elif len(parts) == 3 and parts[:2] == ["store", "entries"]:
                self.send_json(200, self.server.service.export_result(parts[2]))
            elif len(parts) == 2 and parts[0] == "jobs":
                self.send_json(200, self.server.service.get(parts[1]).to_dict())
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "result":
                doc = self.server.service.result_doc(parts[1])
                if doc is None:
                    record = self.server.service.get(parts[1])
                    self.send_json_error(404, f"{parts[1]} has no result ({record.state.value})")
                else:
                    self.send_json(200, doc)
            else:
                self.send_json_error(404, f"no route for GET {url.path}")
        except KeyError as exc:
            self.send_json_error(404, f"unknown job {exc.args[0]!r}")
        except CorruptResultError as exc:
            # the entry failed verification and was quarantined: it is
            # gone for good (410), and resubmitting the spec recomputes.
            self.send_json_error(410, str(exc))
        except (ValueError, ReproError) as exc:
            self.send_json_error(400, str(exc))

    def do_POST(self) -> None:  # noqa: N802
        if self.network_fault_precheck():
            return
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["jobs"]:
                record = self.server.service.submit_dict(self.read_json_body())
                self.send_json(202 if not record.cache_hit else 200, record.to_dict())
            elif len(parts) == 3 and parts[:2] == ["store", "entries"]:
                body = self.read_json_body()
                imported = self.server.service.import_result(
                    parts[2], body.get("doc") or {}, body.get("trace_b64")
                )
                self.send_json(200, {"key": parts[2], "imported": imported})
            else:
                self.send_json_error(404, f"no route for POST {url.path}")
        except ValueError as exc:
            # import checksum verification failed: reject, plant nothing
            self.send_json_error(400, str(exc))
        except AdmissionError as exc:
            # 429 (shed) / 503 (draining): nothing was enqueued, the
            # client should back off and retry the identical request.
            self.send_retry_after(
                exc.status, {"error": str(exc)}, exc.retry_after_s
            )
        except ReproError as exc:
            self.send_json_error(400, str(exc))

    def do_DELETE(self) -> None:  # noqa: N802
        if self.network_fault_precheck():
            return
        parts = [p for p in urlparse(self.path).path.split("/") if p]
        try:
            if len(parts) == 2 and parts[0] == "jobs":
                cancelled = self.server.service.cancel(parts[1])
                if cancelled:
                    self.send_json(200, self.server.service.get(parts[1]).to_dict())
                else:
                    self.send_json_error(409, f"{parts[1]} already finished")
            else:
                self.send_json_error(404, f"no route for DELETE {self.path}")
        except KeyError as exc:
            self.send_json_error(404, f"unknown job {exc.args[0]!r}")


def serve_http(
    service: SimulationService, host: str = "127.0.0.1", port: int = 0
) -> ServiceHTTPServer:
    """Bind a server (``port=0`` = ephemeral) and serve on a daemon thread."""
    server = ServiceHTTPServer((host, port), service)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve-http", daemon=True
    )
    thread.start()
    return server
