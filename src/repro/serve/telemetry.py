"""Streaming per-job telemetry for the simulation service.

Built on the same accumulators the simulator itself uses
(:class:`~repro.sim.stats.CounterSet` for monotonic counters,
:class:`~repro.sim.stats.CategoryTimer` for wall-time attribution), plus
a bounded latency reservoir summarized with
:class:`~repro.sim.stats.LatencyStats` and an append-only event log with
monotonically increasing sequence numbers so clients can stream job
transitions incrementally (``GET /events?since=N``).

All methods are thread-safe: the HTTP handler threads and the
supervisor thread share one instance.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Optional

from repro.sim.stats import CategoryTimer, CounterSet, LatencyStats

# counter names (one place, so tests and docs can't drift)
JOBS_SUBMITTED = "jobs.submitted"
JOBS_COMPLETED = "jobs.completed"
JOBS_FAILED = "jobs.failed"
JOBS_CANCELLED = "jobs.cancelled"
JOBS_RETRIED = "jobs.retried"
JOBS_TIMED_OUT = "jobs.timed_out"
CACHE_HITS_STORE = "cache.hits.store"
CACHE_HITS_SWEEP = "cache.hits.sweep"
#: result reads served from the in-memory LRU tier (no disk touched).
CACHE_MEM_HITS = "cache.mem_hits"
#: result reads served from the on-disk result store (mem-tier miss).
CACHE_DISK_HITS = "cache.disk_hits"
#: result probes that found neither tier populated.
CACHE_MISSES = "cache.misses"
#: entries evicted from the in-memory LRU tier to stay under budget.
CACHE_EVICTIONS = "cache.evictions"
SIMULATIONS_RUN = "simulations.run"
WORKER_DEATHS = "workers.deaths"
WORKER_RESPAWNS = "workers.respawns"
#: chaos attempts reported by workers (injected-fault probes; retried).
CHAOS_INJECTIONS = "chaos.injections"
#: completed attempts that restored from a mid-run checkpoint.
JOBS_RESUMED = "jobs.resumed"
#: corrupt store entries detected and moved to quarantine/ on read.
RESULTS_QUARANTINED = "results.quarantined"
#: submissions rejected by admission control (queue above watermark).
QUEUE_SHED = "queue.shed"
#: jobs terminally quarantined by the poison-job circuit breaker.
JOBS_POISONED = "jobs.poisoned"
#: jobs reconstructed from the write-ahead journal at startup.
JOBS_JOURNAL_REPLAYED = "jobs.journal_replayed"
#: journal compactions (startup after replay, graceful drain).
JOURNAL_COMPACTIONS = "journal.compactions"
#: store entries exported to a migrating peer shard.
STORE_EXPORTS = "store.exports"
#: store entries imported (checksum-verified) from a peer shard.
STORE_IMPORTS = "store.imports"

# fleet-gateway counters (namespaced ``fleet.`` so they can never
# collide with shard counters in the gateway's /metrics aggregate)
#: submissions accepted and routed to a shard by the gateway.
FLEET_JOBS_ROUTED = "fleet.jobs_routed"
#: requests served by a shard other than their ring-primary (shed,
#: quarantined, or dead primary), plus failover re-submissions.
FLEET_REROUTES = "fleet.reroutes"
#: shard transitions into the quarantined DOWN state.
FLEET_SHARD_DOWN = "fleet.shard_down"
#: shard transitions back to UP after quarantine.
FLEET_SHARD_RECOVERED = "fleet.shard_recovered"
#: health probes issued (every shard, every probe tick).
FLEET_PROBES = "fleet.probes"
#: jobs re-submitted to a surviving shard after their shard went down.
FLEET_FAILOVERS = "fleet.failovers"
#: /healthz code_version disagreements observed between shards.
FLEET_VERSION_MISMATCH = "fleet.version_mismatch"
#: /fleet/join announcements accepted into the membership table.
FLEET_JOINS = "fleet.joins"
#: /fleet/join announcements rejected (version skew, name conflict).
FLEET_JOINS_REJECTED = "fleet.joins_rejected"
#: /fleet/leave departures accepted (graceful drains).
FLEET_LEAVES = "fleet.leaves"
#: probation members promoted to full ring members (post-migration).
FLEET_MEMBERS_PROMOTED = "fleet.members_promoted"
#: membership epoch bumps observed by this gateway (own or applied).
FLEET_EPOCH_BUMPS = "fleet.epoch_bumps"
#: remote membership views applied by a follower (higher epoch won).
FLEET_VIEWS_APPLIED = "fleet.views_applied"
#: arc migrations started (one per join/leave that remaps keys).
FLEET_MIGRATIONS_STARTED = "fleet.migrations_started"
#: arc migrations that ran to completion and flipped routing.
FLEET_MIGRATIONS_COMPLETED = "fleet.migrations_completed"
#: result entries copied old-owner -> new-owner, checksum verified.
FLEET_KEYS_MIGRATED = "fleet.keys_migrated"
#: migration keys skipped (source died mid-copy; recompute covers them).
FLEET_MIGRATION_KEY_SKIPS = "fleet.migration_key_skips"
#: result reads answered from the counterpart owner of a migrating arc.
FLEET_DOUBLE_READS = "fleet.double_reads"
#: foreign gateway ids reconstructed from shard job tables (failover).
FLEET_JOBS_ADOPTED = "fleet.jobs_adopted"
#: lease-expiry elections this gateway won (follower -> acting primary).
FLEET_ELECTIONS_WON = "fleet.elections_won"
#: acting primaries that stepped down after seeing a higher-epoch view.
FLEET_DEMOTIONS = "fleet.demotions"
#: membership mutations refused while this primary was fenced (no
#: follower lease renewal within the TTL).
FLEET_FENCED_REJECTS = "fleet.fenced_rejects"
#: lease renewals recorded from follower view polls.
FLEET_LEASE_RENEWALS = "fleet.lease_renewals"
#: syncing members whose stalled migration the prober respawned.
FLEET_MIGRATIONS_RESPAWNED = "fleet.migrations_respawned"


class Telemetry:
    """Thread-safe counters, timers, latency samples, and an event log."""

    def __init__(self, max_events: int = 10_000, max_samples: int = 4096) -> None:
        self._lock = threading.Lock()
        self.counters = CounterSet()
        self.timer = CategoryTimer()
        self._latency_ns: deque[float] = deque(maxlen=max_samples)
        self._events: deque[dict[str, Any]] = deque(maxlen=max_events)
        self._seq = 0
        self._started_at = time.time()

    # -- recording ------------------------------------------------------------
    def count(self, name: str, value: int = 1) -> None:
        with self._lock:
            self.counters.add(name, value)

    def charge(self, path: str, duration_ns: float) -> None:
        with self._lock:
            self.timer.charge(path, max(0, round(duration_ns)))

    def observe_latency(self, latency_ns: float) -> None:
        with self._lock:
            self._latency_ns.append(float(latency_ns))

    def event(self, job_id: str, state: str, **detail: Any) -> int:
        """Append a job transition to the stream; returns its sequence number."""
        with self._lock:
            self._seq += 1
            self._events.append(
                {
                    "seq": self._seq,
                    "t": time.time(),
                    "job_id": job_id,
                    "state": state,
                    **detail,
                }
            )
            return self._seq

    # -- reading --------------------------------------------------------------
    def counter(self, name: str) -> int:
        """Current value of one counter (0 when never counted)."""
        with self._lock:
            return self.counters.get(name)

    def events_since(self, since: int, limit: int = 1000) -> list[dict[str, Any]]:
        """Events with ``seq > since``, oldest first (bounded by ``limit``)."""
        with self._lock:
            return [e for e in self._events if e["seq"] > since][:limit]

    @property
    def last_seq(self) -> int:
        with self._lock:
            return self._seq

    def snapshot(self, gauges: Optional[dict[str, Any]] = None) -> dict[str, Any]:
        """One JSON-safe metrics document (the ``/metrics`` payload)."""
        with self._lock:
            counters = self.counters.as_dict()
            timers = self.timer.as_dict()
            latency = LatencyStats.from_samples(self._latency_ns)
            seq = self._seq
            uptime = time.time() - self._started_at
        hits = counters.get(CACHE_HITS_STORE, 0) + counters.get(CACHE_HITS_SWEEP, 0)
        sims = counters.get(SIMULATIONS_RUN, 0)
        mem = counters.get(CACHE_MEM_HITS, 0)
        disk = counters.get(CACHE_DISK_HITS, 0)
        misses = counters.get(CACHE_MISSES, 0)
        probes = mem + disk + misses
        return {
            "uptime_s": uptime,
            "counters": counters,
            "timers_ns": timers,
            "gauges": dict(gauges or {}),
            "job_latency": latency.as_dict(),
            # legacy aggregate (submit-path store hits vs simulations run);
            # kept verbatim so old dashboards keep working.
            "cache_hit_rate": hits / (hits + sims) if (hits + sims) else 0.0,
            # result-read tiers: which layer actually answered the probe.
            "result_cache": {
                "probes": probes,
                "mem_hit_rate": mem / probes if probes else 0.0,
                "disk_hit_rate": disk / probes if probes else 0.0,
                "miss_rate": misses / probes if probes else 0.0,
            },
            "last_event_seq": seq,
        }
