"""Shared JSON-over-HTTP wire helpers (stdlib only).

One home for the request/response plumbing the serve layer's HTTP
surface (:mod:`repro.serve.http_api`), its client
(:mod:`repro.serve.client`), and the fleet gateway
(:mod:`repro.fleet.gateway`) all speak:

* :class:`JsonRequestHandler` - a :class:`BaseHTTPRequestHandler` with
  the service's conventions baked in: HTTP/1.1 keep-alive, quiet
  logging (telemetry is the observable surface), JSON bodies with
  explicit ``Content-Length``, ``{"error": ...}`` error envelopes, and
  ``Retry-After``-bearing overload responses,
* :func:`error_detail` / :func:`retry_after_hint` - the client-side
  decoding of those envelopes: parse the error body once, and resolve
  the server's pacing hint (``Retry-After`` header first, body
  ``retry_after_s`` second, 0 = no hint).

Keeping both directions in one module is what stops the gateway from
growing a third, slightly different copy of the protocol: a shard, the
gateway, and a plain service all answer byte-compatible envelopes, so
:class:`~repro.serve.client.ServiceClient` works unmodified against
any of them.
"""

from __future__ import annotations

import json
import time
import urllib.error
from email.message import Message
from http.server import BaseHTTPRequestHandler
from typing import Any, Mapping, Optional, Union

from repro.chaos.network import CALLER_HEADER, network_injector
from repro.errors import ConfigurationError


class JsonRequestHandler(BaseHTTPRequestHandler):
    """Request handler base with the service's JSON conventions."""

    protocol_version = "HTTP/1.1"

    # -- plumbing -------------------------------------------------------------
    def log_message(self, fmt: str, *args) -> None:  # pragma: no cover
        pass  # quiet by default; telemetry is the observable surface

    def network_fault_precheck(self) -> bool:
        """True when an armed partition drops this request unanswered.

        Called at the top of every ``do_*``: an inbound cut closes the
        connection with no response bytes, so the caller observes the
        peer vanishing (``RemoteDisconnected``) exactly as it would with
        a real link failure.  None-sentinel: fault-free processes pay
        one global read.
        """
        injector = network_injector()
        if injector is None:
            return False
        if injector.drop_inbound(self.headers.get(CALLER_HEADER)):
            self.close_connection = True
            return True
        return False

    def send_json(
        self,
        status: int,
        payload: Any,
        headers: Optional[dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        fault = None
        injector = network_injector()
        if injector is not None:
            fault = injector.response_fault(self.headers.get(CALLER_HEADER))
            if fault is not None and fault["kind"] == "delay":
                time.sleep(max(0.0, fault["delay_s"]))
                fault = None
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        if fault is not None and fault["kind"] == "disconnect":
            # headers + a partial body, then the connection drops: the
            # peer sees IncompleteRead/RemoteDisconnected and retries.
            cut = fault["after_bytes"]
            cut = len(body) // 2 if cut is None else max(0, min(cut, len(body)))
            self.wfile.write(body[:cut])
            self.close_connection = True
            return
        if fault is not None and fault["kind"] == "truncate":
            drop = max(1, min(fault["drop_bytes"], len(body)))
            self.wfile.write(body[: len(body) - drop])
            self.close_connection = True
            return
        self.wfile.write(body)

    def send_json_error(self, status: int, message: str) -> None:
        self.send_json(status, {"error": message})

    def send_retry_after(
        self, status: int, payload: dict[str, Any], retry_after_s: float
    ) -> None:
        """An overload answer (429/503): body field + ``Retry-After``.

        The header carries the fractional-second delta form
        (``%g``-formatted) clients parse via :func:`retry_after_hint`.
        """
        body = dict(payload)
        body["retry_after_s"] = retry_after_s
        self.send_json(
            status, body, headers={"Retry-After": f"{retry_after_s:g}"}
        )

    def read_json_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ConfigurationError("request body required")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ConfigurationError(f"invalid JSON body: {exc}") from exc


def error_detail(exc: urllib.error.HTTPError) -> tuple[dict[str, Any], str]:
    """Decode a non-2xx response body into ``(detail dict, message)``.

    The detail is the parsed ``{"error": ..., "retry_after_s": ...}``
    envelope when the body is valid JSON, else ``{}``; the message is
    the server's ``error`` field, falling back to the stringified
    exception for non-JSON bodies (proxies, raw stdlib errors).
    """
    detail: dict[str, Any] = {}
    try:
        parsed = json.loads(exc.read().decode("utf-8"))
        if isinstance(parsed, dict):
            detail = parsed
        message = detail.get("error", str(exc))
    except Exception:
        message = str(exc)
    return detail, str(message)


def retry_after_hint(
    headers: Optional[Union[Message, Mapping[str, str]]],
    detail: Mapping[str, Any],
) -> float:
    """The server's pacing hint in seconds (0.0 = no usable hint).

    Only the delta-seconds form of ``Retry-After`` is parsed - it is
    what the service emits - and fractional values (``"0.25"``) are
    honoured, not truncated.  An HTTP-date or garbage value falls
    through to the body's ``retry_after_s`` and finally 0 (= the
    client's own backoff).
    """
    raw = headers.get("Retry-After") if headers is not None else None
    if raw is not None:
        try:
            return max(0.0, float(raw))
        except ValueError:
            pass
    try:
        return max(0.0, float(detail.get("retry_after_s", 0.0)))
    except (TypeError, ValueError):
        return 0.0
