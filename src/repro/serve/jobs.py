"""Job model: what a client submits and what the service tracks.

A :class:`JobSpec` is the wire-format description of one simulation:
workload name + data size, seed, setup overrides, and whether to record
a trace.  It is deliberately *names-and-numbers only* (no pickled
objects) so specs are safe to accept over HTTP, and it builds the same
``(Workload, ExperimentSetup)`` pair the experiment layer uses, so its
content-addressed :meth:`JobSpec.cache_key` is byte-identical to the key
``run_sweep`` files the same point under.  A result computed by a sweep
is therefore served instantly by the service, and vice versa.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Mapping, Optional

from repro.core.replay import ReplayPolicyKind
from repro.errors import ConfigurationError
from repro.experiments.runner import ExperimentSetup, sweep_cache_key
from repro.workloads.base import Workload
from repro.workloads.registry import all_workload_names, make_workload

#: spec fields that identify *what to compute* (everything except
#: scheduling hints); only these participate in the canonical form.
_CONTENT_FIELDS = (
    "workload",
    "data_bytes",
    "seed",
    "record_trace",
    "driver",
    "gpu",
    "cost",
    "vablock_bytes",
)


class JobState(str, enum.Enum):
    """Lifecycle of a submitted job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    #: quarantined by the poison-job circuit breaker: this spec's key
    #: killed too many workers, so the service stops feeding it workers.
    POISONED = "poisoned"

    @property
    def terminal(self) -> bool:
        return self in (
            JobState.DONE,
            JobState.FAILED,
            JobState.CANCELLED,
            JobState.POISONED,
        )


@dataclass(frozen=True)
class JobSpec:
    """One simulation request, canonical and JSON-serializable."""

    workload: str
    data_bytes: int
    seed: int = 0x5EED
    record_trace: bool = False
    #: smaller runs first; ties break by submission order (FIFO).
    priority: int = 0
    #: keyword overrides applied to the default DriverConfig /
    #: GpuDeviceConfig / CostModel (e.g. ``{"prefetch_enabled": false}``,
    #: ``{"memory_bytes": 33554432}``).
    driver: dict[str, Any] = field(default_factory=dict)
    gpu: dict[str, Any] = field(default_factory=dict)
    cost: dict[str, Any] = field(default_factory=dict)
    #: 0 = the driver's 2 MiB default granule.
    vablock_bytes: int = 0

    def __post_init__(self) -> None:
        if self.workload not in all_workload_names():
            raise ConfigurationError(
                f"unknown workload {self.workload!r}; "
                f"choose from {all_workload_names()}"
            )
        if not isinstance(self.data_bytes, int) or self.data_bytes <= 0:
            raise ConfigurationError("data_bytes must be a positive integer")
        if not isinstance(self.seed, int):
            raise ConfigurationError("seed must be an integer")
        if self.vablock_bytes < 0:
            raise ConfigurationError("vablock_bytes must be >= 0")

    # -- construction ---------------------------------------------------------
    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "JobSpec":
        """Validate an untrusted dict (e.g. an HTTP body) into a spec."""
        if not isinstance(payload, Mapping):
            raise ConfigurationError("job spec must be a JSON object")
        known = {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(f"unknown job spec fields: {unknown}")
        if "workload" not in payload or "data_bytes" not in payload:
            raise ConfigurationError("job spec needs 'workload' and 'data_bytes'")
        kwargs = dict(payload)
        for section in ("driver", "gpu", "cost"):
            value = kwargs.get(section, {})
            if not isinstance(value, Mapping):
                raise ConfigurationError(f"{section!r} overrides must be an object")
            kwargs[section] = dict(value)
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise ConfigurationError(f"bad job spec: {exc}") from exc

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    def with_priority(self, priority: int) -> "JobSpec":
        return replace(self, priority=priority)

    # -- canonical identity ---------------------------------------------------
    def canonical_json(self) -> str:
        """Deterministic JSON of the content fields (no scheduling hints)."""
        content = {name: getattr(self, name) for name in _CONTENT_FIELDS}
        return json.dumps(content, sort_keys=True, separators=(",", ":"))

    def spec_digest(self) -> str:
        """Content hash of the spec alone (stable across code versions)."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()[:16]

    def cache_key(self) -> str:
        """The code-version-keyed content key shared with ``run_sweep``.

        Builds the actual workload/setup objects and hashes them with
        :func:`repro.experiments.runner.sweep_cache_key`, so the service
        store and the sweep cache agree on what "the same simulation"
        means - including invalidation on any simulator source change.
        """
        workload, setup = self.build()
        return sweep_cache_key(workload, setup, self.record_trace)

    def batch_signature(self) -> tuple:
        """What the expensive :meth:`Workload.build` output depends on.

        Jobs sharing this signature can run as one batch on a warm
        worker, reusing a single memoized build: the workload name +
        size determine the access pattern, the seed feeds the build's
        rng fork, and the granule shapes the address space.  Driver/GPU/
        cost overrides, trace recording, and priority are applied after
        the build, so they deliberately do not participate.
        """
        return (self.workload, self.data_bytes, self.seed, self.vablock_bytes)

    # -- materialization ------------------------------------------------------
    def build_setup(self) -> ExperimentSetup:
        setup = ExperimentSetup(seed=self.seed)
        if self.gpu:
            try:
                setup = setup.with_gpu(**self.gpu)
            except TypeError as exc:
                raise ConfigurationError(f"bad gpu overrides: {exc}") from exc
        if self.driver:
            overrides = dict(self.driver)
            if isinstance(overrides.get("replay_policy"), str):
                try:
                    overrides["replay_policy"] = ReplayPolicyKind(
                        overrides["replay_policy"]
                    )
                except ValueError as exc:
                    raise ConfigurationError(str(exc)) from exc
            try:
                setup = setup.with_driver(**overrides)
            except TypeError as exc:
                raise ConfigurationError(f"bad driver overrides: {exc}") from exc
        if self.cost:
            try:
                setup = setup.with_cost(**self.cost)
            except TypeError as exc:
                raise ConfigurationError(f"bad cost overrides: {exc}") from exc
        if self.vablock_bytes:
            setup = replace(setup, vablock_bytes=self.vablock_bytes)
        return setup

    def build(self) -> tuple[Workload, ExperimentSetup]:
        """Materialize the (workload, setup) pair this spec describes."""
        return make_workload(self.workload, self.data_bytes), self.build_setup()


@dataclass
class JobRecord:
    """Service-side lifecycle of one submitted job."""

    job_id: str
    spec: JobSpec
    key: str
    state: JobState = JobState.QUEUED
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: execution attempts so far (0 while never dispatched).
    attempts: int = 0
    #: earliest monotonic time the job may be (re)dispatched (retry
    #: backoff); submitted_at/started_at/finished_at stay wall-clock
    #: because clients read them as human-facing timestamps.
    not_before: float = 0.0
    cache_hit: bool = False
    error: Optional[str] = None
    worker_id: Optional[int] = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "job_id": self.job_id,
            "state": self.state.value,
            "key": self.key,
            "spec": self.spec.to_dict(),
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
            "cache_hit": self.cache_hit,
            "error": self.error,
            "worker_id": self.worker_id,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "JobRecord":
        """Reconstruct a record from its :meth:`to_dict` form.

        The journal replay path: the wire dict round-trips everything
        durable.  ``worker_id`` and ``not_before`` are deliberately
        dropped - both are meaningless in a new process (the worker is
        gone, the monotonic clock restarted).
        """
        if not isinstance(payload, Mapping):
            raise ConfigurationError("job record must be a JSON object")
        try:
            record = cls(
                job_id=str(payload["job_id"]),
                spec=JobSpec.from_dict(payload["spec"]),
                key=str(payload["key"]),
                state=JobState(payload["state"]),
                submitted_at=float(payload.get("submitted_at") or 0.0),
                attempts=int(payload.get("attempts") or 0),
                cache_hit=bool(payload.get("cache_hit")),
                error=payload.get("error"),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise ConfigurationError(f"bad job record: {exc}") from exc
        record.started_at = payload.get("started_at")
        record.finished_at = payload.get("finished_at")
        return record
