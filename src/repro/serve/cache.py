"""Thread-safe, size-bounded in-memory LRU result cache (the hot tier).

The serve layer stores results in two durable-but-slow places: the
content-addressed :class:`~repro.serve.store.ResultStore` (JSON +
checksum verification per read) and ``run_sweep``'s pickle memo
directory.  Repeat-heavy sweeps and dashboard polling re-read the same
handful of keys constantly, so this module adds a tier above both: a
byte-bounded LRU mapping content keys to already-validated values.

Design points:

* **Thread-safe** - one lock around the ordered map; the HTTP handler
  threads, the service supervisor, and ``run_sweep`` callers share one
  instance safely.
* **Size-bounded** - entries are charged their (estimated) payload
  bytes; inserting past ``max_bytes`` evicts least-recently-used
  entries first.  A single value larger than the whole budget is
  rejected outright (counted in ``stats().rejected``) rather than
  wiping the cache.
* **Negative-entry protection** - ``None`` is not a cacheable value, by
  construction: callers memoize only *validated* results (a document
  that passed its checksum, a deserialized ``RunResult``), so a
  corrupt/quarantined store entry can never be served from memory.
  :meth:`LruCache.put` raises on ``None`` to keep that invariant
  obvious at the call site.
* **Copy-out for documents** - plain dict values are shallow-copied on
  ``get`` so callers mutating the returned document (adding job ids,
  HTTP envelopes) cannot poison the cached copy.

``max_bytes == 0`` disables the cache: gets miss without counting,
puts are dropped, so a disabled tier reports all-zero statistics
instead of a misleading 0% hit rate.
"""

from __future__ import annotations

import json
import pickle
import sys
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import ConfigurationError


def estimate_size(value: Any) -> int:
    """Best-effort payload size in bytes, for eviction accounting.

    JSON-serializable documents are charged their canonical JSON length
    (what the store would write); everything else falls back to pickle
    length, then to ``sys.getsizeof``.  Exactness is not required -
    the bound only needs to scale with real memory use.
    """
    try:
        return len(json.dumps(value, sort_keys=True, separators=(",", ":")))
    except (TypeError, ValueError):
        pass
    try:
        return len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return sys.getsizeof(value)


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time counters of one :class:`LruCache`."""

    hits: int
    misses: int
    evictions: int
    rejected: int
    entries: int
    size_bytes: int
    max_bytes: int

    @property
    def hit_rate(self) -> float:
        probes = self.hits + self.misses
        return self.hits / probes if probes else 0.0


class LruCache:
    """Byte-bounded, thread-safe LRU map from content key to value."""

    def __init__(self, max_bytes: int) -> None:
        if max_bytes < 0:
            raise ConfigurationError("max_bytes must be >= 0")
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, tuple[Any, int]] = OrderedDict()
        self._size = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._rejected = 0

    @property
    def enabled(self) -> bool:
        return self.max_bytes > 0

    # -- access ---------------------------------------------------------------
    def get(self, key: str) -> Optional[Any]:
        """The cached value (refreshed to most-recently-used) or None."""
        if not self.enabled:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            value = entry[0]
        if isinstance(value, dict):
            return dict(value)
        return value

    def put(self, key: str, value: Any, size_bytes: Optional[int] = None) -> bool:
        """Insert (or refresh) ``key``; returns False when rejected.

        ``None`` is rejected loudly: a miss must stay a miss, so
        corrupt/absent results are never memoized (negative-entry
        protection).
        """
        if value is None:
            raise ConfigurationError(
                "None is not cacheable: negative entries must not be memoized"
            )
        if not self.enabled:
            return False
        size = int(size_bytes) if size_bytes is not None else estimate_size(value)
        if isinstance(value, dict):
            value = dict(value)  # private copy: caller mutations stay out
        with self._lock:
            if size > self.max_bytes:
                self._rejected += 1
                return False
            old = self._entries.pop(key, None)
            if old is not None:
                self._size -= old[1]
            self._entries[key] = (value, size)
            self._size += size
            while self._size > self.max_bytes and len(self._entries) > 1:
                _, (_, evicted_size) = self._entries.popitem(last=False)
                self._size -= evicted_size
                self._evictions += 1
            # the newest entry alone may still exceed the budget when a
            # smaller live entry was just refreshed; evict it too rather
            # than run over the bound.
            if self._size > self.max_bytes:
                self._entries.popitem(last=False)
                self._size = 0
                self._evictions += 1
                return False
            return True

    def discard(self, key: str) -> None:
        """Drop ``key`` if present (store quarantine / invalidation)."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is not None:
                self._size -= entry[1]

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._size = 0

    # -- introspection --------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        """Presence probe; does *not* refresh recency or count a probe."""
        with self._lock:
            return key in self._entries

    @property
    def size_bytes(self) -> int:
        with self._lock:
            return self._size

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                rejected=self._rejected,
                entries=len(self._entries),
                size_bytes=self._size,
                max_bytes=self.max_bytes,
            )
