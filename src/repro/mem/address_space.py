"""Address spaces, managed ranges, and VABlocks.

Mirrors the driver's structure (paper Section III-A):

* a *virtual address space* is associated with an application;
* each ``cudaMallocManaged`` call creates a *range* of arbitrary size;
* ranges are broken into 2 MB, page-aligned *VABlocks*;
* VABlocks are composed of 4 KB OS pages.

The simulator numbers pages globally and aligns every range to a VABlock
boundary, which matches how the real driver carves ranges into VABlock
bins (a VABlock never spans two ranges).  The VABlock size is
configurable to support the paper's "flexible memory allocation
granularity" discussion (Section VI-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.errors import AddressError, AllocationError
from repro.mem.layout import align_up_pages, check_geometry
from repro.units import (
    BIG_PAGE_SIZE,
    PAGE_SIZE,
    VABLOCK_SIZE,
    bytes_to_pages,
    human_size,
)


@dataclass(frozen=True)
class ManagedRange:
    """One managed allocation (``cudaMallocManaged`` result).

    ``npages`` counts the pages actually requested; ``npages_aligned``
    includes the VABlock-alignment padding at the end of the range.
    """

    name: str
    index: int
    start_page: int
    npages: int
    npages_aligned: int
    nbytes: int

    @property
    def end_page(self) -> int:
        """One past the last *requested* page."""
        return self.start_page + self.npages

    @property
    def end_page_aligned(self) -> int:
        """One past the last page including alignment padding."""
        return self.start_page + self.npages_aligned

    def contains_page(self, page: int) -> bool:
        return self.start_page <= page < self.end_page

    def pages(self) -> np.ndarray:
        """All requested global page indices of this range, ascending."""
        return np.arange(self.start_page, self.end_page, dtype=np.int64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ManagedRange({self.name!r}, pages=[{self.start_page},"
            f"{self.end_page}), {human_size(self.nbytes)})"
        )


@dataclass(frozen=True)
class VABlock:
    """A virtual address block: the allocation/eviction granule."""

    vablock_id: int
    range_index: int
    start_page: int
    npages: int

    @property
    def end_page(self) -> int:
        return self.start_page + self.npages


class AddressSpace:
    """The managed virtual address space of one simulated application."""

    def __init__(
        self,
        page_size: int = PAGE_SIZE,
        big_page_size: int = BIG_PAGE_SIZE,
        vablock_size: int = VABLOCK_SIZE,
    ) -> None:
        check_geometry(page_size, big_page_size, vablock_size)
        self.page_size = page_size
        self.big_page_size = big_page_size
        self.vablock_size = vablock_size
        self.pages_per_vablock = vablock_size // page_size
        self.pages_per_big_page = big_page_size // page_size
        self.big_pages_per_vablock = vablock_size // big_page_size
        self.ranges: list[ManagedRange] = []
        self._next_page = 0
        #: range index owning each VABlock, grown on allocation.
        self._vablock_range: list[int] = []
        #: per-range access behaviour (cudaMemAdvise), default MIGRATE.
        self._advise: dict[int, "MemAdvise"] = {}

    # -- allocation ---------------------------------------------------------
    def malloc_managed(self, nbytes: int, name: Optional[str] = None) -> ManagedRange:
        """Create a managed range of ``nbytes`` (``cudaMallocManaged``).

        The range starts on a VABlock boundary; its tail VABlock is padded
        so the next range starts on a fresh boundary, as in the driver.
        """
        if nbytes <= 0:
            raise AllocationError(f"allocation size must be positive, got {nbytes}")
        npages = bytes_to_pages(nbytes)
        npages_aligned = align_up_pages(npages, self.pages_per_vablock)
        index = len(self.ranges)
        rng = ManagedRange(
            name=name or f"range{index}",
            index=index,
            start_page=self._next_page,
            npages=npages,
            npages_aligned=npages_aligned,
            nbytes=nbytes,
        )
        self.ranges.append(rng)
        self._next_page += npages_aligned
        n_vablocks = npages_aligned // self.pages_per_vablock
        self._vablock_range.extend([index] * n_vablocks)
        return rng

    # -- geometry queries -----------------------------------------------------
    @property
    def total_pages(self) -> int:
        """Total pages spanned by all ranges (including alignment padding)."""
        return self._next_page

    @property
    def total_vablocks(self) -> int:
        return self._next_page // self.pages_per_vablock

    @property
    def total_bytes_requested(self) -> int:
        """Sum of requested allocation sizes (the application's view)."""
        return sum(r.nbytes for r in self.ranges)

    def vablock_of_page(self, page) -> int | np.ndarray:
        return page // self.pages_per_vablock

    def page_span_of_vablock(self, vablock_id: int) -> tuple[int, int]:
        if not 0 <= vablock_id < self.total_vablocks:
            raise AddressError(
                f"VABlock {vablock_id} outside space of {self.total_vablocks} blocks"
            )
        start = vablock_id * self.pages_per_vablock
        return start, start + self.pages_per_vablock

    def vablock(self, vablock_id: int) -> VABlock:
        """Materialize a :class:`VABlock` descriptor."""
        start, stop = self.page_span_of_vablock(vablock_id)
        return VABlock(
            vablock_id=vablock_id,
            range_index=self._vablock_range[vablock_id],
            start_page=start,
            npages=stop - start,
        )

    def range_of_page(self, page: int) -> ManagedRange:
        """Managed range containing global ``page`` (padding counts)."""
        if not 0 <= page < self._next_page:
            raise AddressError(f"page {page} outside address space")
        rng = self.ranges[self._vablock_range[page // self.pages_per_vablock]]
        return rng

    def range_of_vablock(self, vablock_id: int) -> ManagedRange:
        if not 0 <= vablock_id < self.total_vablocks:
            raise AddressError(f"VABlock {vablock_id} outside address space")
        return self.ranges[self._vablock_range[vablock_id]]

    # -- memory advise -----------------------------------------------------------
    def mem_advise(self, rng: "ManagedRange | str", advise: "MemAdvise") -> None:
        """Set a range's access behaviour (``cudaMemAdvise`` analogue).

        Must be issued before the simulation runs - the real driver
        allows runtime changes, but mid-run re-advising is out of scope
        here and the driver snapshot would go stale.
        """
        from repro.mem.advise import MemAdvise

        if isinstance(rng, str):
            matches = [r for r in self.ranges if r.name == rng]
            if not matches:
                raise AddressError(f"no managed range named {rng!r}")
            rng = matches[0]
        if not isinstance(advise, MemAdvise):
            raise AddressError(f"expected a MemAdvise value, got {advise!r}")
        self._advise[rng.index] = advise

    def advise_of_range(self, range_index: int) -> "MemAdvise":
        from repro.mem.advise import MemAdvise

        return self._advise.get(range_index, MemAdvise.MIGRATE)

    def advise_of_vablock(self, vablock_id: int) -> "MemAdvise":
        """Access behaviour of a VABlock (uniform: blocks never span ranges)."""
        if not 0 <= vablock_id < self.total_vablocks:
            raise AddressError(f"VABlock {vablock_id} outside address space")
        return self.advise_of_range(self._vablock_range[vablock_id])

    def iter_vablocks(self) -> Iterator[VABlock]:
        for vb in range(self.total_vablocks):
            yield self.vablock(vb)

    def validate_pages(self, pages: np.ndarray) -> None:
        """Raise :class:`AddressError` if any page index is out of bounds."""
        pages = np.asarray(pages)
        if pages.size and (pages.min() < 0 or pages.max() >= self._next_page):
            raise AddressError(
                f"page indices [{pages.min()}, {pages.max()}] outside space "
                f"of {self._next_page} pages"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AddressSpace(ranges={len(self.ranges)}, pages={self.total_pages},"
            f" vablocks={self.total_vablocks})"
        )
