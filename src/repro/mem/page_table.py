"""Host and device page-table bookkeeping.

The residency bitmaps in :mod:`repro.mem.residency` answer *where data
is*; this module models the *mapping* work the driver performs on top -
"updating the local and remote page tables and issuing appropriate memory
barriers to ensure consistency on the GPU" (Section III-D, Mapping data).

The simulator uses it for two purposes:

* charging map/unmap/TLB-invalidate costs with exact operation counts,
* verifying the mapping discipline (a page is GPU-mapped iff resident;
  double-maps and double-unmaps indicate driver-logic bugs and raise).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.mem.address_space import AddressSpace


@dataclass
class MappingStats:
    """Lifetime totals of mapping operations."""

    pages_mapped: int = 0
    pages_unmapped: int = 0
    tlb_invalidates: int = 0
    membars: int = 0


class PageTable:
    """Mapping state for one device side (GPU or host).

    The real driver maintains Linux-style multi-level tables; the costs it
    pays are per-PTE writes plus per-block fixed costs, which is what the
    simulator charges, so a flat bitmap of "mapped" bits plus operation
    counters is a faithful stand-in.
    """

    def __init__(self, space: AddressSpace, side: str) -> None:
        if side not in ("gpu", "host"):
            raise SimulationError(f"unknown page table side {side!r}")
        self.space = space
        self.side = side
        self.mapped = np.zeros(space.total_pages, dtype=bool)
        self.stats = MappingStats()
        #: monotonically increasing epoch bumped on every invalidate, so
        #: the TLB model can discard stale translations.
        self.epoch = 0

    def map_pages(self, pages: np.ndarray) -> int:
        """Install PTEs for ``pages``; returns the number newly mapped.

        Mapping an already-mapped page is a permission upgrade in the real
        driver; we count it as a PTE write but not a new mapping.
        """
        pages = np.asarray(pages, dtype=np.int64)
        if pages.size == 0:
            return 0
        self.space.validate_pages(pages)
        new = ~self.mapped[pages]
        self.mapped[pages[new]] = True
        self.stats.pages_mapped += int(pages.size)
        return int(new.sum())

    def unmap_pages(self, pages: np.ndarray) -> int:
        """Remove PTEs for ``pages``; returns the number actually unmapped.

        Unmapping a non-mapped page raises: the driver's unmap paths are
        always guarded by residency checks, so hitting one is a logic bug.
        """
        pages = np.asarray(pages, dtype=np.int64)
        if pages.size == 0:
            return 0
        if not self.mapped[pages].all():
            raise SimulationError(
                f"unmap of non-mapped pages on {self.side} table"
            )
        self.mapped[pages] = False
        self.stats.pages_unmapped += int(pages.size)
        return int(pages.size)

    def invalidate_tlb(self) -> int:
        """Issue a TLB invalidate; returns the new epoch."""
        self.epoch += 1
        self.stats.tlb_invalidates += 1
        return self.epoch

    def membar(self) -> None:
        """Issue a memory barrier publishing recent PTE updates."""
        self.stats.membars += 1

    def mapped_count(self) -> int:
        return int(self.mapped.sum())

    def check_mapped(self, expected: np.ndarray, description: str = "") -> None:
        """Mapping invariant: the table maps exactly ``expected`` pages.

        The expected mask comes from the residency state (resident and
        remote-mapped pages on the GPU side; non-resident and duplicated
        pages on the host side) - UVMSAN calls this at batch boundaries.
        """
        if not np.array_equal(self.mapped, expected):
            diff = np.flatnonzero(self.mapped != expected)
            what = f" (expected {description})" if description else ""
            raise SimulationError(
                f"{self.side} page table out of sync on {diff.size} pages"
                f"{what}; first mismatches: {diff[:8].tolist()}"
            )

    def check_against_residency(self, resident: np.ndarray) -> None:
        """GPU-side invariant: mapped iff resident (used in tests)."""
        if self.side != "gpu":
            raise SimulationError("residency check only applies to the GPU table")
        if not np.array_equal(self.mapped, resident):
            diff = int(np.sum(self.mapped != resident))
            raise SimulationError(
                f"GPU page table out of sync with residency on {diff} pages"
            )
