"""Page residency, permissions, duplication, and per-VABlock occupancy.

This is the driver's view of where every page lives and how the GPU may
access it.  It is the performance-critical data structure of the
simulator, so state is kept in flat numpy arrays indexed by global page
number:

* ``resident[page]``   - a valid copy exists in GPU memory,
* ``writable[page]``   - the GPU mapping has write permission,
* ``duplicated[page]`` - read-only duplication: the host copy is valid
  too (Section III-A's third access behaviour; a GPU write must take a
  permission-upgrade fault that collapses the duplication),
* ``remote_mapped[page]`` - the GPU maps host memory directly (remote
  mapping / zero-copy; no migration, no GPU memory consumed),
* ``dirty[page]``      - the GPU copy was written and must migrate on
  evict,
* ``backed[vablock]``  - the VABlock has GPU physical memory reserved,
* ``resident_count[vablock]`` - cached popcount the density prefetcher
  reads.

Two derived masks are maintained incrementally because the GPU's warp
advance scans them on every access:

* ``read_ok  = resident | remote_mapped``
* ``write_ok = (resident & writable) | remote_mapped``

Conceptually the GPU acts as "a fully-associative cache for CPU memory
where the cache-line size can be treated as a VABlock" (Section V);
this class is the tag/state store of that cache, extended with the
permission bits the three UVM access behaviours require.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AddressError, SimulationError
from repro.mem.address_space import AddressSpace


class ResidencyState:
    """Vectorized residency/permission bookkeeping over an address space."""

    def __init__(self, space: AddressSpace) -> None:
        self.space = space
        n_pages = space.total_pages
        n_vablocks = space.total_vablocks
        self.resident = np.zeros(n_pages, dtype=bool)
        self.writable = np.zeros(n_pages, dtype=bool)
        self.duplicated = np.zeros(n_pages, dtype=bool)
        self.remote_mapped = np.zeros(n_pages, dtype=bool)
        self.dirty = np.zeros(n_pages, dtype=bool)
        self.backed = np.zeros(n_vablocks, dtype=bool)
        self.resident_count = np.zeros(n_vablocks, dtype=np.int32)
        #: lifetime count of times each VABlock has been evicted.
        self.evict_count = np.zeros(n_vablocks, dtype=np.int64)
        # derived access masks (see module docstring)
        self.read_ok = np.zeros(n_pages, dtype=bool)
        self.write_ok = np.zeros(n_pages, dtype=bool)

    # -- queries ---------------------------------------------------------------
    @property
    def pages_per_vablock(self) -> int:
        return self.space.pages_per_vablock

    def is_resident(self, pages) -> np.ndarray:
        """Boolean residency for an array of global page indices."""
        return self.resident[np.asarray(pages, dtype=np.int64)]

    def vablock_leaf_mask(self, vablock_id: int) -> np.ndarray:
        """Residency mask of the leaves of ``vablock_id`` (a view)."""
        start, stop = self.space.page_span_of_vablock(vablock_id)
        return self.resident[start:stop]

    def total_resident_pages(self) -> int:
        return int(self.resident_count.sum())

    def backed_vablocks(self) -> np.ndarray:
        """Indices of VABlocks currently holding a GPU allocation."""
        return np.flatnonzero(self.backed)

    def _refresh_masks(self, pages: np.ndarray) -> None:
        self.read_ok[pages] = self.resident[pages] | self.remote_mapped[pages]
        self.write_ok[pages] = (
            self.resident[pages] & self.writable[pages]
        ) | self.remote_mapped[pages]

    def _refresh_mask_span(self, start: int, stop: int) -> None:
        self.read_ok[start:stop] = (
            self.resident[start:stop] | self.remote_mapped[start:stop]
        )
        self.write_ok[start:stop] = (
            self.resident[start:stop] & self.writable[start:stop]
        ) | self.remote_mapped[start:stop]

    # -- state transitions -------------------------------------------------------
    def back_vablock(self, vablock_id: int) -> None:
        """Reserve GPU physical memory for a VABlock (allocation granule)."""
        if self.backed[vablock_id]:
            raise SimulationError(f"VABlock {vablock_id} already backed")
        self.backed[vablock_id] = True

    def make_resident(
        self,
        pages: np.ndarray,
        writing: np.ndarray | bool = False,
        writable: np.ndarray | bool = True,
        duplicated: np.ndarray | bool = False,
    ) -> int:
        """Mark pages resident on the GPU; returns how many were new.

        Every page's VABlock must already be backed - the driver
        allocates physical memory before migrating (Section III-D).
        ``writing`` marks pages dirty; ``writable`` sets the mapping
        permission (the stock migration path maps read-write);
        ``duplicated`` flags read-mostly copies whose host mapping stays
        valid (mutually exclusive with ``writable``/``writing``).
        """
        pages = np.asarray(pages, dtype=np.int64)
        if pages.size == 0:
            return 0
        vbs = pages // self.pages_per_vablock
        if not self.backed[vbs].all():
            missing = np.unique(vbs[~self.backed[vbs]])
            raise SimulationError(
                f"making pages resident in unbacked VABlocks {missing[:8].tolist()}"
            )
        if self.remote_mapped[pages].any():
            raise SimulationError("migrating pages that are remote-mapped")

        def as_mask(value) -> np.ndarray:
            if np.ndim(value) == 0:
                return np.full(pages.shape, bool(value))
            mask = np.asarray(value, dtype=bool)
            if mask.shape != pages.shape:
                raise AddressError("mask shape mismatch")
            return mask

        writing_m = as_mask(writing)
        writable_m = as_mask(writable)
        duplicated_m = as_mask(duplicated)
        if (writing_m & ~writable_m).any():
            raise SimulationError("writing through a read-only mapping")
        if (duplicated_m & writable_m).any():
            raise SimulationError("a duplicated copy cannot be writable")

        newly = ~self.resident[pages]
        new_pages = pages[newly]
        self.resident[pages] = True
        self.writable[pages] |= writable_m
        self.duplicated[pages] = duplicated_m & ~self.writable[pages]
        self.dirty[pages[writing_m]] = True
        if new_pages.size:
            np.add.at(
                self.resident_count,
                new_pages // self.pages_per_vablock,
                1,
            )
        self._refresh_masks(pages)
        return int(new_pages.size)

    def mark_dirty(self, pages: np.ndarray) -> None:
        """Record GPU writes to already-resident writable pages."""
        pages = np.asarray(pages, dtype=np.int64)
        if pages.size == 0:
            return
        if not (self.resident[pages] & self.writable[pages]).all():
            raise SimulationError("marking non-writable pages dirty")
        self.dirty[pages] = True

    def collapse_duplicates(self, pages: np.ndarray) -> int:
        """Write-permission upgrade: break read-only duplication.

        The touched pages' host copies become stale: the GPU mapping is
        upgraded to writable and the pages go dirty.  Returns how many
        pages actually collapsed (non-duplicated pages are ignored).
        """
        pages = np.asarray(pages, dtype=np.int64)
        if pages.size == 0:
            return 0
        collapsing = pages[self.duplicated[pages]]
        if collapsing.size == 0:
            return 0
        if not self.resident[collapsing].all():
            raise SimulationError("collapsing duplicates that are not resident")
        self.duplicated[collapsing] = False
        self.writable[collapsing] = True
        self.dirty[collapsing] = True
        self._refresh_masks(collapsing)
        return int(collapsing.size)

    def invalidate_duplicates(self, pages: np.ndarray) -> int:
        """Host write to duplicated pages: drop the (clean) GPU copies.

        No data moves - the host copy is authoritative for duplicated
        pages - but the GPU mappings are torn down and the pages will
        re-fault on the next GPU touch.  Returns the number dropped.
        """
        pages = np.asarray(pages, dtype=np.int64)
        if pages.size == 0:
            return 0
        dropping = pages[self.duplicated[pages]]
        if dropping.size == 0:
            return 0
        self.resident[dropping] = False
        self.duplicated[dropping] = False
        self.writable[dropping] = False
        np.add.at(self.resident_count, dropping // self.pages_per_vablock, -1)
        self._refresh_masks(dropping)
        return int(dropping.size)

    def map_remote(self, pages: np.ndarray) -> int:
        """Install remote (zero-copy) mappings; returns how many were new.

        Remote-mapped pages consume no GPU memory and never migrate;
        reads and writes go over the interconnect.
        """
        pages = np.asarray(pages, dtype=np.int64)
        if pages.size == 0:
            return 0
        if self.resident[pages].any():
            raise SimulationError("remote-mapping pages that are GPU-resident")
        new = ~self.remote_mapped[pages]
        self.remote_mapped[pages[new]] = True
        self._refresh_masks(pages)
        return int(new.sum())

    def unmap_remote(self, pages: np.ndarray) -> int:
        """Tear down remote mappings (counter-triggered promotion path).

        Returns how many mappings were removed; the caller is expected
        to migrate the pages to local memory immediately after.
        """
        pages = np.asarray(pages, dtype=np.int64)
        if pages.size == 0:
            return 0
        if not self.remote_mapped[pages].all():
            raise SimulationError("unmap_remote on pages that are not remote")
        self.remote_mapped[pages] = False
        self._refresh_masks(pages)
        return int(pages.size)

    def migrate_to_host(self, pages: np.ndarray) -> tuple[int, int]:
        """CPU-fault path: page-granular migration back to the host.

        Unlike eviction this is *page*-granular and leaves the VABlock's
        physical backing in place (the driver keeps the allocation; only
        the touched pages move).  Duplicated pages are skipped - the
        host copy is already valid, so a host *read* takes no fault
        (use :meth:`invalidate_duplicates` for host writes).  Returns
        ``(migrated, dirty)`` where ``dirty`` pages carried GPU
        modifications that must be copied.
        """
        pages = np.asarray(pages, dtype=np.int64)
        if pages.size == 0:
            return 0, 0
        moving = pages[self.resident[pages] & ~self.duplicated[pages]]
        if moving.size == 0:
            return 0, 0
        n_dirty = int(self.dirty[moving].sum())
        self.resident[moving] = False
        self.writable[moving] = False
        self.dirty[moving] = False
        np.add.at(self.resident_count, moving // self.pages_per_vablock, -1)
        self._refresh_masks(moving)
        return int(moving.size), n_dirty

    def evict_vablock(self, vablock_id: int) -> tuple[int, int]:
        """Evict a VABlock: returns ``(resident_pages, dirty_pages)``.

        All resident pages are unmapped; dirty pages are the ones that
        need a device-to-host migration (modified data copied back,
        Section V-A1).  The physical backing is released.
        """
        if not self.backed[vablock_id]:
            raise SimulationError(f"evicting unbacked VABlock {vablock_id}")
        start, stop = self.space.page_span_of_vablock(vablock_id)
        res_mask = self.resident[start:stop]
        n_resident = int(res_mask.sum())
        n_dirty = int((res_mask & self.dirty[start:stop]).sum())
        self.resident[start:stop] = False
        self.writable[start:stop] = False
        self.duplicated[start:stop] = False
        self.dirty[start:stop] = False
        self.backed[vablock_id] = False
        self.resident_count[vablock_id] = 0
        self.evict_count[vablock_id] += 1
        self._refresh_mask_span(start, stop)
        return n_resident, n_dirty

    # -- invariants ---------------------------------------------------------------
    def expected_gpu_mapped(self) -> np.ndarray:
        """The pages the GPU table must map: resident or remote-mapped."""
        return self.resident | self.remote_mapped

    def expected_host_mapped(self) -> np.ndarray:
        """The pages the host table must map.

        A page's host mapping is torn down exactly when its only valid
        copy migrates to the GPU; duplicated pages keep a valid host
        mapping alongside the read-only GPU copy.
        """
        return ~self.resident | self.duplicated

    def check_invariants(self) -> None:
        """Internal-consistency assertions used by tests and debug runs."""
        ppv = self.pages_per_vablock
        counts = self.resident.reshape(-1, ppv).sum(axis=1)
        if not np.array_equal(counts, self.resident_count):
            raise SimulationError("resident_count cache out of sync with bitmap")
        if (self.dirty & ~self.resident).any():
            raise SimulationError("dirty page that is not resident")
        if (self.dirty & ~self.writable).any():
            raise SimulationError("dirty page without write permission")
        if (self.writable & ~self.resident).any():
            raise SimulationError("writable mapping without residency")
        if (self.duplicated & ~self.resident).any():
            raise SimulationError("duplicated flag on non-resident page")
        if (self.duplicated & self.writable).any():
            raise SimulationError("duplicated page with write permission")
        if (self.remote_mapped & self.resident).any():
            raise SimulationError("page both remote-mapped and resident")
        unbacked = ~self.backed
        if self.resident_count[unbacked].any():
            raise SimulationError("resident pages in unbacked VABlock")
        if not np.array_equal(self.read_ok, self.resident | self.remote_mapped):
            raise SimulationError("read_ok mask out of sync")
        if not np.array_equal(
            self.write_ok, (self.resident & self.writable) | self.remote_mapped
        ):
            raise SimulationError("write_ok mask out of sync")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResidencyState(resident={self.total_resident_pages()},"
            f" backed={int(self.backed.sum())}/{len(self.backed)})"
        )
