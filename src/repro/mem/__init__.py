"""Memory-layout substrate: UVM's four-level address hierarchy.

Section III-A of the paper: *"UVM uses a four-level hierarchy for memory
address space: address spaces, virtual address ranges, virtual address
blocks, and pages."*  This subpackage implements that hierarchy plus the
page-residency state the driver maintains:

* :class:`~repro.mem.address_space.AddressSpace` - one per application,
  with :meth:`malloc_managed` mirroring ``cudaMallocManaged``.
* :class:`~repro.mem.address_space.ManagedRange` - one allocation.
* :class:`~repro.mem.address_space.VABlock` - 2 MB allocation/eviction unit.
* :class:`~repro.mem.residency.ResidencyState` - page residency and dirty
  bitmaps (numpy-backed for vectorized driver operations).
* :class:`~repro.mem.page_table.PageTable` - map/unmap bookkeeping for the
  host and device page tables.
"""

from repro.mem.layout import (
    big_page_of_page,
    page_span_of_vablock,
    vablock_of_page,
    pages_of_big_page,
)
from repro.mem.address_space import AddressSpace, ManagedRange, VABlock
from repro.mem.residency import ResidencyState
from repro.mem.page_table import PageTable

__all__ = [
    "AddressSpace",
    "ManagedRange",
    "VABlock",
    "ResidencyState",
    "PageTable",
    "vablock_of_page",
    "big_page_of_page",
    "page_span_of_vablock",
    "pages_of_big_page",
]
