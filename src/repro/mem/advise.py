"""Per-range memory-advise policies: UVM's three access behaviours.

Section III-A: *"UVM supports three page access behaviors"* - paged
migration (the paper's focus and our default), **remote mapping**
("maps the requested data into the requester's page tables without
actually migrating it and accesses it using DMA"), and **read-only
duplication** ("duplicates data at two or more physical devices ...
under the constraint that the data cannot be mutated").

In the CUDA API these correspond to ``cudaMemAdvise`` hints
(``SetPreferredLocation`` host + ``SetAccessedBy`` device for remote
mapping; ``SetReadMostly`` for duplication).  The simulator applies
them per managed range via :meth:`AddressSpace.mem_advise`:

* ``MIGRATE`` - demand paged migration; pages map exclusively with
  write permission (the stock behaviour everywhere else in the paper).
* ``READ_MOSTLY`` - GPU read faults *duplicate* the page (host mapping
  stays valid, host touches are free); the GPU copy maps read-only, so
  a later **write takes a permission-upgrade fault** that collapses the
  duplication (host copy invalidated, page becomes exclusive+dirty).
* ``PINNED_HOST`` - data stays in host memory; the first GPU touch
  faults once to install a remote mapping, after which accesses run
  over the interconnect at zero-copy bandwidth with no migration, no
  GPU memory consumption, and no eviction pressure.
"""

from __future__ import annotations

import enum


class MemAdvise(enum.Enum):
    """Access behaviour for a managed range."""

    MIGRATE = "migrate"
    READ_MOSTLY = "read_mostly"
    PINNED_HOST = "pinned_host"
