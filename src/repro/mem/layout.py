"""Pure address arithmetic over the UVM geometry.

All functions operate on *global page indices*: the simulator numbers
every 4 KB page in the address space consecutively, and allocations are
VABlock-aligned, so

* ``vablock = page // 512``
* ``big_page = page // 16``

These helpers accept scalars or numpy arrays and are the single place
where geometry math lives - driver code never re-derives shifts.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AddressError
from repro.units import (
    BIG_PAGE_SIZE,
    PAGE_SIZE,
    PAGES_PER_BIG_PAGE,
    PAGES_PER_VABLOCK,
    VABLOCK_SIZE,
)


def vablock_of_page(page, pages_per_vablock: int = PAGES_PER_VABLOCK):
    """Global VABlock index containing global page index ``page``."""
    return page // pages_per_vablock


def big_page_of_page(page, pages_per_big_page: int = PAGES_PER_BIG_PAGE):
    """Global big-page (64 KB) index containing ``page``."""
    return page // pages_per_big_page


def page_span_of_vablock(
    vablock: int, pages_per_vablock: int = PAGES_PER_VABLOCK
) -> tuple[int, int]:
    """Half-open global page range ``[start, stop)`` of a VABlock."""
    if vablock < 0:
        raise AddressError(f"negative VABlock index {vablock}")
    start = vablock * pages_per_vablock
    return start, start + pages_per_vablock


def pages_of_big_page(
    big_page: int, pages_per_big_page: int = PAGES_PER_BIG_PAGE
) -> tuple[int, int]:
    """Half-open global page range covered by a 64 KB big page."""
    if big_page < 0:
        raise AddressError(f"negative big-page index {big_page}")
    start = big_page * pages_per_big_page
    return start, start + pages_per_big_page


def page_offset_in_vablock(page, pages_per_vablock: int = PAGES_PER_VABLOCK):
    """Leaf index (0..pages_per_vablock-1) of ``page`` within its VABlock."""
    return page % pages_per_vablock


def page_of_byte(addr: int) -> int:
    """Global page index of byte address ``addr``."""
    if addr < 0:
        raise AddressError(f"negative address {addr:#x}")
    return addr // PAGE_SIZE


def byte_of_page(page: int) -> int:
    """First byte address of global page ``page``."""
    if page < 0:
        raise AddressError(f"negative page index {page}")
    return page * PAGE_SIZE


def align_up_pages(npages: int, granule_pages: int) -> int:
    """Round a page count up to a multiple of ``granule_pages``."""
    if granule_pages <= 0:
        raise AddressError(f"granule must be positive, got {granule_pages}")
    if npages < 0:
        raise AddressError(f"negative page count {npages}")
    return -(-npages // granule_pages) * granule_pages


def unique_vablocks(pages: np.ndarray, pages_per_vablock: int = PAGES_PER_VABLOCK) -> np.ndarray:
    """Sorted unique VABlock indices touched by an array of page indices."""
    if len(pages) == 0:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.asarray(pages, dtype=np.int64) // pages_per_vablock)


def check_geometry(page_size: int, big_page_size: int, vablock_size: int) -> None:
    """Validate a (possibly non-default) geometry triple.

    The flexible-granularity extension (paper Section VI-B) allows VABlock
    sizes other than 2 MB; this enforces the invariants every component
    assumes: power-of-two sizes and exact nesting page | big page | VABlock.
    """
    for name, val in (
        ("page_size", page_size),
        ("big_page_size", big_page_size),
        ("vablock_size", vablock_size),
    ):
        if val <= 0 or (val & (val - 1)) != 0:
            raise AddressError(f"{name} must be a positive power of two, got {val}")
    if big_page_size % page_size:
        raise AddressError("big_page_size must be a multiple of page_size")
    if vablock_size % big_page_size:
        raise AddressError("vablock_size must be a multiple of big_page_size")


# Run the default geometry through the validator at import time: a broken
# constant edit should fail loudly, not corrupt simulations.
check_geometry(PAGE_SIZE, BIG_PAGE_SIZE, VABLOCK_SIZE)
