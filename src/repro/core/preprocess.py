"""Fault pre-processing: duplicate filtering and VABlock binning.

Section III-C: during pre-processing the driver "stores page fault
information read from the GPU fault buffer and sorts them locally ...
per batch, the driver groups page faults based on VABlocks and services
the faults".  Binning is what enables the bulk-servicing optimizations
of Section III-D (coalesced transfers, shared allocation/staging), and
duplicate filtering is where the Batch (no-flush) policy pays for its
stale entries (Fig. 5's enlarged pre-processing component).

Two kinds of duplicates are filtered here:

* *stale* entries whose page is already resident (serviced by an earlier
  batch before the entry was read - only possible when the buffer was
  not flushed),
* *intra-batch* repeats of the same page from different uTLBs or
  re-raised after a mid-batch replay (Block policy).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.batch import FaultBatch
from repro.mem.residency import ResidencyState


@dataclass
class VABlockBin:
    """Unique non-resident faulted pages of one VABlock, sorted."""

    vablock_id: int
    pages: np.ndarray  # global page indices, ascending, unique
    writes: np.ndarray  # aligned boolean: any faulting access was a write
    #: ground-truth stream ids per page (analysis/extensions only).
    stream_ids: np.ndarray
    #: originating SM per page (the Section VI-B what-if origin info).
    sm_ids: np.ndarray

    def __len__(self) -> int:
        return int(self.pages.size)


@dataclass
class PreprocessedBatch:
    """A batch after sorting/binning, ready for the service stage."""

    bins: list[VABlockBin] = field(default_factory=list)
    n_read: int = 0
    n_duplicate: int = 0
    #: per-entry duplicate flag aligned with the raw batch order (stale
    #: or intra-batch repeat), used by the trace recorder.
    entry_duplicate: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=bool)
    )

    @property
    def n_unique(self) -> int:
        return sum(len(b) for b in self.bins)


def preprocess_batch(
    batch: FaultBatch,
    residency: ResidencyState,
) -> PreprocessedBatch:
    """Filter duplicates and bin a raw batch by VABlock.

    Bins come out in ascending VABlock order (the driver sorts batches),
    with pages ascending within each bin.
    """
    out = PreprocessedBatch(n_read=len(batch))
    if not len(batch):
        return out

    # the batch already holds parallel field arrays (the driver's
    # host-side fault cache) - no per-entry extraction passes
    pages = batch.page
    writes = batch.is_write
    streams = batch.stream_id
    sms = batch.sm_id

    # Stale duplicates: the access is already satisfiable when the batch
    # is processed (reads need read_ok; writes need write_ok, so a write
    # fault on a resident-but-read-only duplicated page is NOT stale -
    # it is a permission-upgrade the service stage must handle).
    stale = np.where(writes, residency.write_ok[pages], residency.read_ok[pages])
    n_stale = int(stale.sum())
    keep_idx = np.flatnonzero(~stale)
    pages, writes = pages[keep_idx], writes[keep_idx]
    streams, sms = streams[keep_idx], sms[keep_idx]

    # Intra-batch duplicates: keep one service per page, OR the write
    # intent (an upgrade to write permission must still happen).
    uniq_pages, first_idx, inverse = np.unique(
        pages, return_index=True, return_inverse=True
    )
    uniq_writes = np.zeros(uniq_pages.shape, dtype=bool)
    np.logical_or.at(uniq_writes, inverse, writes)
    uniq_streams = streams[first_idx]
    uniq_sms = sms[first_idx]
    n_intra = int(pages.size - uniq_pages.size)
    out.n_duplicate = n_stale + n_intra

    entry_dup = stale.copy()
    intra_dup = np.ones(pages.shape, dtype=bool)
    intra_dup[first_idx] = False
    entry_dup[keep_idx] = intra_dup
    out.entry_duplicate = entry_dup

    if uniq_pages.size == 0:
        return out

    ppv = residency.pages_per_vablock
    vbs = uniq_pages // ppv
    # uniq_pages is sorted, hence vbs is sorted: split on boundaries.
    boundaries = np.flatnonzero(np.diff(vbs)) + 1
    for chunk_pages, chunk_writes, chunk_streams, chunk_sms, chunk_vbs in zip(
        np.split(uniq_pages, boundaries),
        np.split(uniq_writes, boundaries),
        np.split(uniq_streams, boundaries),
        np.split(uniq_sms, boundaries),
        np.split(vbs, boundaries),
    ):
        out.bins.append(
            VABlockBin(
                vablock_id=int(chunk_vbs[0]),
                pages=chunk_pages,
                writes=chunk_writes,
                stream_ids=chunk_streams,
                sm_ids=chunk_sms,
            )
        )
    return out
