"""The physical memory allocator (PMA) model.

Section III-D: *"The UVM driver uses a physical memory allocator to track
physical allocations on the GPU.  Allocation is performed by calling into
the main NVIDIA driver, which is not open-source... the cost seems
sensitive to system latency.  The allocator over-allocates memory to
cache it, knowing that the cost of each call is quite high.  This
over-allocation and caching causes the allocation cost to remain
relatively constant and negligible at large sizes."*

The model reproduces exactly that: a VABlock reservation is served from a
driver-side cache when possible; a cache miss pays the expensive
proprietary-driver call (``pma_call_ns``) and refills the cache with a
large chunk.  Memory released by eviction returns to the cache, which is
why steady-state oversubscription pays no further PMA calls.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, SimulationError
from repro.sim.costmodel import CostModel


@dataclass
class PmaStats:
    """Lifetime allocator statistics."""

    calls: int = 0  # calls into the proprietary driver
    reservations: int = 0  # VABlock reservations served
    cache_hits: int = 0  # reservations served purely from cache
    releases: int = 0  # VABlock releases (evictions)
    bytes_reserved: int = 0
    chaos_failures: int = 0  # injected allocation failures (chaos only)


class PhysicalMemoryAllocator:
    """Device-memory accounting with over-allocation caching."""

    def __init__(self, cost: CostModel, capacity_bytes: int, chaos=None) -> None:
        if capacity_bytes <= 0:
            raise ConfigurationError("PMA capacity must be positive")
        self.cost = cost
        self.capacity_bytes = capacity_bytes
        #: bytes the proprietary driver still owns (never handed to UVM).
        self.unclaimed_bytes = capacity_bytes
        #: bytes UVM holds in its over-allocation cache (claimed, unused).
        self.cache_bytes = 0
        #: bytes currently backing VABlocks.
        self.used_bytes = 0
        self.stats = PmaStats()
        #: chaos injector (None unless model-level injection is armed).
        self.chaos = chaos

    # -- queries ------------------------------------------------------------
    @property
    def available_bytes(self) -> int:
        """Bytes reachable without eviction (cache + unclaimed)."""
        return self.unclaimed_bytes + self.cache_bytes

    def can_reserve(self, nbytes: int) -> bool:
        return self.available_bytes >= nbytes

    # -- operations ----------------------------------------------------------
    def reserve(self, nbytes: int) -> int:
        """Reserve ``nbytes`` for a VABlock; returns simulated ns.

        Raises :class:`SimulationError` if the caller did not check
        :meth:`can_reserve` (the driver's fault path always checks and
        evicts first - Section V-A1).
        """
        if nbytes <= 0:
            raise ConfigurationError(f"reserve size must be positive, got {nbytes}")
        if self.chaos is not None:
            from repro.chaos.injector import ChaosAllocationFailure
            from repro.chaos.plan import MODEL_PMA_FAIL

            if self.chaos.fire(MODEL_PMA_FAIL) is not None:
                # The proprietary-driver call came back empty-handed:
                # no accounting changes, but the call's latency was
                # paid.  The servicer degrades gracefully (eviction
                # pressure + bounded retry).
                self.stats.chaos_failures += 1
                raise ChaosAllocationFailure(
                    self.cost.pma_call_ns,
                    f"chaos: PMA allocation of {nbytes}B failed",
                )
        cost_ns = 0
        if self.cache_bytes < nbytes:
            # Cache miss: call into the proprietary driver for a big
            # chunk (bounded by what it still owns).
            need = nbytes - self.cache_bytes
            chunk = min(max(self.cost.pma_chunk_bytes, need), self.unclaimed_bytes)
            if chunk < need:
                raise SimulationError(
                    f"PMA reserve of {nbytes}B without capacity: "
                    f"cache={self.cache_bytes} unclaimed={self.unclaimed_bytes}"
                )
            self.unclaimed_bytes -= chunk
            self.cache_bytes += chunk
            self.stats.calls += 1
            cost_ns += self.cost.pma_call_ns
        else:
            self.stats.cache_hits += 1
        self.cache_bytes -= nbytes
        self.used_bytes += nbytes
        self.stats.reservations += 1
        self.stats.bytes_reserved += nbytes
        self._check()
        return cost_ns

    def release(self, nbytes: int) -> None:
        """Return a VABlock's backing to the cache (eviction path).

        Freed memory goes back to UVM's cache rather than the proprietary
        driver, so subsequent reservations are cache hits - the mechanism
        that keeps PMA cost flat under steady-state eviction.
        """
        if nbytes <= 0 or nbytes > self.used_bytes:
            raise SimulationError(
                f"PMA release of {nbytes}B with only {self.used_bytes}B in use"
            )
        self.used_bytes -= nbytes
        self.cache_bytes += nbytes
        self.stats.releases += 1
        self._check()

    def _check(self) -> None:
        total = self.unclaimed_bytes + self.cache_bytes + self.used_bytes
        if total != self.capacity_bytes:
            raise SimulationError(
                f"PMA conservation violated: {total} != {self.capacity_bytes}"
            )
        if min(self.unclaimed_bytes, self.cache_bytes, self.used_bytes) < 0:
            raise SimulationError("PMA pool went negative")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PMA(used={self.used_bytes}, cache={self.cache_bytes},"
            f" unclaimed={self.unclaimed_bytes})"
        )
