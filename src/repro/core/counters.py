"""Canonical counter names mirroring the paper's instrumentation.

Keeping the names in one module prevents the classic stringly-typed
drift between the driver (which increments) and the analysis code (which
reads).  Each constant documents exactly what the count means in paper
terms, since several superficially similar quantities appear in the
tables (e.g. Table I counts *driver-observed* faults, which include
duplicates the driver later filters).
"""

from __future__ import annotations

# -- fault stream -------------------------------------------------------------
#: Fault entries the GPU successfully enqueued into the hardware buffer.
FAULTS_ENQUEUED = "faults.enqueued"
#: Fault entries the driver read out of the buffer (Table I's "total
#: faults": everything the driver must process, duplicates included).
FAULTS_READ = "faults.read"
#: Entries filtered during pre-processing because the page was already
#: resident (stale duplicates) or repeated within the batch.
FAULTS_DUPLICATE = "faults.duplicate"
#: Unique non-resident pages actually serviced (demand migrations),
#: plus permission upgrades and remote mappings - every fault that
#: required real service work.
FAULTS_SERVICED = "faults.serviced"
#: Write faults on resident read-only (duplicated) pages: permission
#: upgrades that collapse read-mostly duplication.
FAULTS_WRITE_UPGRADE = "faults.write_upgrade"
#: Same-GPC same-page misses absorbed by a uTLB pending entry.
FAULTS_COALESCED = "faults.coalesced_utlb"
#: Faults dropped because the hardware buffer was full (warp refaults).
FAULTS_DROPPED = "faults.dropped"
#: Ready-flag poll iterations during batch assembly.
FAULT_POLLS = "faults.polls"

# -- batching ------------------------------------------------------------------
BATCHES = "batches.count"
#: Distinct VABlock bins serviced across all batches.
VABLOCK_BINS = "batches.vablock_bins"

# -- migration ------------------------------------------------------------------
#: 4 KB pages moved host->device on demand (fault-driven).
PAGES_DEMAND_H2D = "pages.demand_h2d"
#: 4 KB pages moved host->device by the prefetcher.
PAGES_PREFETCH_H2D = "pages.prefetch_h2d"
#: 4 KB pages written back device->host by eviction.
PAGES_WRITEBACK_D2H = "pages.writeback_d2h"
#: Newly allocated GPU pages zeroed before first use.
PAGES_ZEROED = "pages.zeroed"

# -- eviction --------------------------------------------------------------------
EVICTIONS = "evictions.count"
#: Resident pages dropped by evictions (Table II's "pages evicted":
#: every such page requires explicit re-migration if touched again).
EVICTION_PAGES_DROPPED = "evictions.pages_dropped"
#: Subset of dropped pages that were dirty and required D2H migration.
EVICTION_PAGES_DIRTY = "evictions.pages_dirty"

# -- replay policy ----------------------------------------------------------------
REPLAYS_ISSUED = "replays.issued"
BUFFER_FLUSHES = "flushes.count"
FLUSHED_ENTRIES = "flushes.entries"

# -- memory-advise behaviours (Section III-A) ---------------------------------------
#: Pages installed as remote (zero-copy) mappings.
REMOTE_PAGES_MAPPED = "remote.pages_mapped"
#: GPU accesses satisfied over the interconnect via remote mappings.
REMOTE_ACCESSES = "remote.accesses"
#: Read-mostly duplications collapsed by GPU write-permission faults.
DUP_COLLAPSES = "dup.collapses"
#: Duplicated GPU copies invalidated by host writes (no data movement).
DUP_INVALIDATIONS = "dup.host_invalidations"

# -- thrashing mitigation (uvm_perf_thrashing analogue) ---------------------------
#: VABlocks flagged as thrashing and pinned to remote mappings.
THRASH_BLOCKS_PINNED = "thrash.blocks_pinned"
#: Pages serviced as remote mappings because their block was pinned.
THRASH_PAGES_PINNED = "thrash.pages_pinned"

# -- access-counter migrations (Volta notifications) --------------------------------
#: Remote-mapped VABlocks promoted to local memory by access counters.
COUNTER_MIGRATION_BLOCKS = "counter_migration.blocks"
#: Pages migrated by counter-triggered promotions.
COUNTER_MIGRATION_PAGES = "counter_migration.pages"

# -- CPU-side faults -------------------------------------------------------------
#: Host page faults on GPU-resident managed data (one per 64 KB region).
HOST_FAULTS = "host.faults"
#: 4 KB pages migrated device->host by CPU faults (kernel-boundary
#: ping-pong; these pages re-fault on the next GPU touch).
PAGES_HOST_D2H = "host.pages_d2h"

# -- GPU side ------------------------------------------------------------------------
GPU_ACCESSES = "gpu.accesses"
GPU_PHASES = "gpu.phases"
PMA_CALLS = "pma.calls"

# -- chaos (injected faults; always 0 in clean runs) --------------------------------
#: names match ``"chaos." + injection point`` - the driver folds the
#: injector's per-point fire counts in under these at run end.
CHAOS_BUFFER_OVERFLOWS = "chaos.model.fault_buffer_overflow"
CHAOS_DMA_FAILURES = "chaos.model.dma_transfer_fail"
CHAOS_PMA_FAILURES = "chaos.model.pma_alloc_fail"

ALL_COUNTERS = tuple(
    v
    for k, v in sorted(globals().items())
    if k.isupper() and isinstance(v, str) and not k.startswith("_") and k != "ALL_COUNTERS"
)
