"""Fault-driven LRU eviction of VABlocks.

Section V-A1: *"The UVM driver uses least-recently-used eviction.  The
LRU list is updated when a fault is handled from a VABlock.  When
eviction is required, the VABlock at the end of the list is evicted and
removed from the list."*

The crucial - and deliberately reproduced - pathology (Section VI-A) is
that promotion happens **only on page faults**: data that is accessed on
the GPU without faulting never moves up the list, and fully-resident hot
VABlocks sink to the tail until they are evicted and re-faulted.  The
access-counter extension (:mod:`repro.ext.access_counter_eviction`)
exists precisely to contrast this behaviour.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Optional

from repro.checks import sanitizer as uvmsan
from repro.errors import OutOfDeviceMemoryError, SimulationError


class LruEvictionPolicy:
    """An LRU list over backed VABlocks, promoted on fault servicing."""

    def __init__(self) -> None:
        # Insertion order = recency: last item is most recently faulted,
        # first item is the eviction candidate.
        self._lru: OrderedDict[int, None] = OrderedDict()
        self.promotions = 0
        self.insertions = 0
        self.removals = 0
        # UVMSAN monotonicity tracking: per-block last-fault sequence
        # numbers, kept only when sanitizing so the stock path stays at
        # one None comparison per operation.
        self._san_seq: Optional[dict[int, int]] = {} if uvmsan.enabled() else None
        self._san_tick = 0

    def __len__(self) -> int:
        return len(self._lru)

    def __contains__(self, vablock_id: int) -> bool:
        return vablock_id in self._lru

    def insert(self, vablock_id: int) -> None:
        """A VABlock gained GPU backing: enters at the MRU end."""
        if vablock_id in self._lru:
            raise SimulationError(f"VABlock {vablock_id} already on LRU list")
        self._lru[vablock_id] = None
        self.insertions += 1
        if self._san_seq is not None:
            self._san_seq[vablock_id] = self._san_tick
            self._san_tick += 1

    def touch(self, vablock_id: int) -> None:
        """A fault was handled from this VABlock: promote to MRU.

        Note the paper's caveat: GPU accesses that *hit* resident pages
        never reach the driver and therefore never call this.
        """
        if vablock_id not in self._lru:
            raise SimulationError(f"touch of VABlock {vablock_id} not on LRU list")
        self._lru.move_to_end(vablock_id)
        self.promotions += 1
        if self._san_seq is not None:
            self._san_seq[vablock_id] = self._san_tick
            self._san_tick += 1

    def remove(self, vablock_id: int) -> None:
        """Explicitly drop a block (eviction or range free)."""
        if vablock_id not in self._lru:
            raise SimulationError(f"remove of VABlock {vablock_id} not on LRU list")
        del self._lru[vablock_id]
        self.removals += 1
        if self._san_seq is not None:
            self._san_seq.pop(vablock_id, None)

    def select_victim(self, exclude: Iterable[int] = ()) -> Optional[int]:
        """The LRU block not in ``exclude``, or None when nothing fits.

        ``exclude`` carries the block currently being serviced (its lock
        is held; the driver must not evict the block it is faulting on).
        """
        excluded = set(exclude)
        for vablock_id in self._lru:  # front = least recently faulted
            if vablock_id not in excluded:
                return vablock_id
        return None

    def evict_victim(self, exclude: Iterable[int] = ()) -> int:
        """Select and unlink a victim; raises when none is evictable."""
        excluded = set(exclude)
        victim = self.select_victim(excluded)
        if victim is None:
            raise OutOfDeviceMemoryError(
                "no evictable VABlock: device memory exhausted by pinned blocks"
            )
        if self._san_seq is not None:
            oldest = min(
                (vb for vb in self._san_seq if vb not in excluded),
                key=self._san_seq.__getitem__,
            )
            if oldest != victim:
                raise uvmsan.SanitizerError(
                    f"UVMSAN[lru]: evicting VABlock {victim} but VABlock "
                    f"{oldest} was faulted less recently (LRU order broken)"
                )
        self.remove(victim)
        return victim

    def order(self) -> list[int]:
        """Current list, LRU end first (for tests and trace analysis)."""
        return list(self._lru)
