"""Fault servicing: allocation, eviction, prefetch, migration, mapping.

Section III-D: *"Fault servicing is a multi-step process that includes
allocating physical space, zeroing out GPU pages, migrating data from the
source to the destination, mapping pages and permissions, and a number of
other tasks."*  The cost sub-categories reproduced here are the paper's
Fig. 4 trio - **PMA Alloc Pages**, **Migrate Pages**, **Map Pages** -
plus the eviction path of Section V-A that hangs off allocation.

Servicing operates on one :class:`~repro.core.preprocess.VABlockBin` at a
time (the driver's per-VABlock service loop), which is what makes batch
composition matter: a bin with many pages amortizes its per-VABlock fixed
costs and coalesces its DMA, while 256 bins of one page each pay 256 of
everything (the paper's first key insight in III-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.chaos.injector import ChaosAllocationFailure
from repro.core import counters as C
from repro.core.eviction import LruEvictionPolicy
from repro.core.pma import PhysicalMemoryAllocator
from repro.core.preprocess import VABlockBin
from repro.core.prefetch import TreePrefetcher
from repro.errors import SimulationError
from repro.gpu.dma import DmaEngine
from repro.mem.page_table import PageTable
from repro.mem.residency import ResidencyState
from repro.sim.clock import SimClock
from repro.sim.costmodel import CostModel
from repro.sim.stats import CategoryTimer, CounterSet
from repro.trace.recorder import TraceRecorder


@dataclass
class ServiceOutcome:
    """What servicing one VABlock bin did."""

    vablock_id: int
    n_demand: int = 0
    n_prefetch: int = 0
    n_evictions: int = 0


class FaultServicer:
    """Executes the service stage for VABlock bins."""

    def __init__(
        self,
        residency: ResidencyState,
        gpu_table: PageTable,
        host_table: PageTable,
        pma: PhysicalMemoryAllocator,
        lru: LruEvictionPolicy,
        dma: DmaEngine,
        cost: CostModel,
        clock: SimClock,
        timer: CategoryTimer,
        counters: CounterSet,
        recorder: TraceRecorder,
        prefetcher: Optional[TreePrefetcher] = None,
        thrashing=None,
        sanitizer=None,
    ) -> None:
        self.residency = residency
        self.space = residency.space
        self.gpu_table = gpu_table
        self.host_table = host_table
        self.pma = pma
        self.lru = lru
        self.dma = dma
        self.cost = cost
        self.clock = clock
        self.timer = timer
        self.counters = counters
        self.recorder = recorder
        self.prefetcher = prefetcher
        #: optional uvm_perf_thrashing-style detector; when a block is
        #: flagged, its faults are serviced as remote mappings.
        self.thrashing = thrashing
        #: UVMSAN hooks (None unless UVMREPRO_SANITIZE=1).
        self.sanitizer = sanitizer

    # -- helpers -----------------------------------------------------------------
    def _charge(self, category: str, duration_ns: int, count: int = 1) -> None:
        """Attribute driver time and advance the (serial) driver clock."""
        self.timer.charge(category, duration_ns, count=count)
        self.clock.advance(duration_ns)

    def _effective_ptes(self, pages: np.ndarray) -> int:
        """PTE writes needed for ``pages`` with big-page promotion.

        A fully populated 64 KB-aligned group is installed as one big
        PTE (the Power9-emulation big pages of Section IV-A); leftover
        pages get 4 KB PTEs.  Dense (prefetched) migrations therefore
        pay ~1/16th the mapping cost of scattered ones - part of why
        aggressive prefetching approaches explicit-transfer efficiency.
        """
        if pages.size == 0:
            return 0
        ppb = self.space.pages_per_big_page
        groups, counts = np.unique(pages // ppb, return_counts=True)
        full = int((counts == ppb).sum())
        singles = int(counts[counts != ppb].sum())
        return full + singles

    # -- eviction path --------------------------------------------------------------
    def _evict_one(self, exclude_vablock: int) -> None:
        """Evict the LRU victim to free backing for ``exclude_vablock``.

        Direct costs per Section V-A2: the eviction is a device-to-host
        migration of the modified pages plus unmap/invalidate, and the
        lock dance forces the faulting path to restart (the fixed cost).
        """
        victim = self.lru.evict_victim(exclude=(exclude_vablock,))
        start, stop = self.space.page_span_of_vablock(victim)
        res_mask = self.residency.resident[start:stop]
        resident_pages = np.flatnonzero(res_mask).astype(np.int64) + start
        dirty_pages = (
            np.flatnonzero(res_mask & self.residency.dirty[start:stop]).astype(np.int64)
            + start
        )
        n_res, n_dirty = self.residency.evict_vablock(victim)
        if n_res != resident_pages.size or n_dirty != dirty_pages.size:
            raise SimulationError("eviction accounting mismatch")

        if self.thrashing is not None:
            self.thrashing.record_eviction(victim, self.clock.now)
        evict_ns = self.cost.evict_fixed_ns
        evict_ns += self.dma.d2h_pages(dirty_pages) if n_dirty else 0
        evict_ns += n_res * self.cost.unmap_page_ns
        evict_ns += self.cost.tlb_invalidate_ns + self.cost.membar_ns
        self.gpu_table.unmap_pages(resident_pages)
        self.gpu_table.invalidate_tlb()
        self.gpu_table.membar()
        # data is host-resident again
        self.host_table.map_pages(resident_pages)
        evict_ns += n_res * self.cost.map_page_ns
        self._charge("service.evict", evict_ns, count=1)

        self.pma.release(self.space.vablock_size)
        self.counters.add(C.EVICTIONS)
        self.counters.add(C.EVICTION_PAGES_DROPPED, n_res)
        self.counters.add(C.EVICTION_PAGES_DIRTY, n_dirty)
        self.counters.add(C.PAGES_WRITEBACK_D2H, n_dirty)
        self.recorder.record_eviction(self.clock.now, victim, n_res, n_dirty)
        if self.sanitizer is not None:
            self.sanitizer.check_eviction(self.residency, victim, self.lru)

    def _ensure_backed(self, vablock_id: int) -> int:
        """Reserve GPU physical memory for the bin's VABlock.

        Triggered "whenever the driver attempts to allocate memory for a
        VABlock that does not have memory reserved on the GPU already,
        e.g. the first page fault" (Section V-A1).  Returns the number of
        evictions performed.
        """
        if self.residency.backed[vablock_id]:
            return 0
        evictions = 0
        vab_bytes = self.space.vablock_size
        while True:
            while not self.pma.can_reserve(vab_bytes):
                self._evict_one(exclude_vablock=vablock_id)
                evictions += 1
            try:
                reserve_ns = self.pma.reserve(vab_bytes)
                break
            except ChaosAllocationFailure as exc:
                # Injected allocation failure: the wasted proprietary-
                # driver call still costs its latency, then the driver
                # degrades gracefully - shed load by evicting (when
                # anything is evictable) and retry.  The injector's
                # max_fires budget bounds the loop.
                self._charge("service.pma_alloc", exc.cost_ns, count=1)
                self.counters.add(C.PMA_CALLS)
                if self.lru.select_victim(exclude=(vablock_id,)) is not None:
                    self._evict_one(exclude_vablock=vablock_id)
                    evictions += 1
        if reserve_ns:
            self.counters.add(C.PMA_CALLS)
        # PMA cost is "actually part of the migration process" but the
        # paper separates it (Fig. 4 caption); we do the same.
        self._charge("service.pma_alloc", reserve_ns, count=1)
        self.residency.back_vablock(vablock_id)
        self.lru.insert(vablock_id)
        return evictions

    # -- memory-advise service paths ------------------------------------------------
    def _service_remote_bin(self, vbin: VABlockBin) -> ServiceOutcome:
        """Remote mapping (Section III-A): map host memory, migrate nothing.

        No PMA allocation, no eviction pressure, no data transfer - the
        fault is serviced by installing PTEs that point at host memory;
        subsequent accesses cross the interconnect per touch.
        """
        vb = vbin.vablock_id
        outcome = ServiceOutcome(vablock_id=vb)
        pages = vbin.pages
        if pages.size == 0:
            return outcome
        if self.residency.resident[pages].any():
            raise SimulationError("remote bin contains migrated pages")
        n_new = self.residency.map_remote(pages)
        self.gpu_table.map_pages(pages)
        self.gpu_table.invalidate_tlb()
        self.gpu_table.membar()
        map_ns = (
            self.cost.map_vablock_fixed_ns
            + int(pages.size) * (self.cost.map_page_ns + self.cost.service_per_fault_ns)
            + self.cost.tlb_invalidate_ns
            + self.cost.membar_ns
        )
        self._charge("service.map", map_ns, count=int(pages.size))
        outcome.n_demand = int(pages.size)
        self.counters.add(C.FAULTS_SERVICED, outcome.n_demand)
        self.counters.add(C.REMOTE_PAGES_MAPPED, n_new)
        self.recorder.record_service(self.clock.now, vb, outcome.n_demand, 0)
        return outcome

    def _upgrade_permissions(self, vb: int, pages: np.ndarray) -> int:
        """Write faults on duplicated pages: collapse the duplication.

        The host copies become stale, so their host mappings are torn
        down and the GPU PTEs upgraded to read-write; no data moves.
        """
        if not self.residency.duplicated[pages].all():
            raise SimulationError("upgrade request on non-duplicated pages")
        n = self.residency.collapse_duplicates(pages)
        self.host_table.unmap_pages(pages)
        self.gpu_table.map_pages(pages)  # PTE permission rewrite
        self.gpu_table.invalidate_tlb()
        self.gpu_table.membar()
        upgrade_ns = (
            pages.size * (self.cost.map_page_ns + self.cost.unmap_page_ns)
            + self.cost.tlb_invalidate_ns
            + self.cost.membar_ns
        )
        self._charge("service.map", upgrade_ns, count=int(pages.size))
        self.counters.add(C.FAULTS_WRITE_UPGRADE, n)
        self.counters.add(C.FAULTS_SERVICED, n)
        self.counters.add(C.DUP_COLLAPSES, n)
        return n

    def promote_remote_block(self, vablock_id: int) -> int:
        """Counter-triggered promotion: migrate a hot block's remote pages.

        The access counters showed this block's remote mappings are
        heavily re-touched; paying one bulk migration converts every
        future touch from an interconnect trip into an HBM hit.  The
        GPU PTEs are rewritten from sysmem to local (a remap, not an
        unmap), and the pages arrive writable like any migration.
        Returns the number of pages promoted.
        """
        start, stop = self.space.page_span_of_vablock(vablock_id)
        pages = (
            np.flatnonzero(self.residency.remote_mapped[start:stop]).astype(np.int64)
            + start
        )
        if pages.size == 0:
            return 0
        self._ensure_backed(vablock_id)
        self.residency.unmap_remote(pages)
        n = int(pages.size)
        n_ptes = self._effective_ptes(pages)
        promote_ns = (
            n * (self.cost.stage_page_ns + self.cost.unmap_page_ns)
            + n_ptes * (self.cost.zero_page_ns + self.cost.map_page_ns)
            + self.dma.h2d_pages(pages)
            + self.cost.tlb_invalidate_ns
            + self.cost.membar_ns
        )
        self.gpu_table.map_pages(pages)  # PTE rewrite sysmem -> local
        self.gpu_table.invalidate_tlb()
        self.gpu_table.membar()
        self.host_table.unmap_pages(pages)
        self._charge("service.counter_migration", promote_ns, count=n)
        self.residency.make_resident(pages)
        self.lru.touch(vablock_id)
        self.counters.add(C.COUNTER_MIGRATION_BLOCKS)
        self.counters.add(C.COUNTER_MIGRATION_PAGES, n)
        return n

    # -- main entry ---------------------------------------------------------------
    def service_bin(self, vbin: VABlockBin) -> ServiceOutcome:
        """Service all faults of one VABlock bin (plus prefetch)."""
        from repro.mem.advise import MemAdvise

        vb = vbin.vablock_id
        advise = self.space.advise_of_vablock(vb)
        if advise is MemAdvise.PINNED_HOST:
            return self._service_remote_bin(vbin)

        if self.thrashing is not None and advise is MemAdvise.MIGRATE:
            before = self.thrashing.pinned_blocks
            self.thrashing.on_fault(vb, self.clock.now)
            if self.thrashing.pinned_blocks > before:
                self.counters.add(C.THRASH_BLOCKS_PINNED)
            if self.thrashing.should_pin(vb):
                # thrashing remedy: stop migrating this block - service
                # its faults as remote mappings from here on
                outcome = self._service_remote_bin(vbin)
                self.counters.add(C.THRASH_PAGES_PINNED, outcome.n_demand)
                return outcome

        outcome = ServiceOutcome(vablock_id=vb)

        # Split permission upgrades (resident read-only duplicates hit
        # by writes) from true demand misses.
        resident_mask = self.residency.resident[vbin.pages]
        upgrade_pages = vbin.pages[resident_mask]
        demand_pages = vbin.pages[~resident_mask]
        demand_writes = vbin.writes[~resident_mask]
        if upgrade_pages.size:
            self._upgrade_permissions(vb, upgrade_pages)
            if demand_pages.size == 0:
                self.lru.touch(vb)
                self.recorder.record_service(self.clock.now, vb, 0, 0)
                return outcome
        vbin = VABlockBin(
            vablock_id=vb,
            pages=demand_pages,
            writes=demand_writes,
            stream_ids=vbin.stream_ids[~resident_mask],
            sm_ids=vbin.sm_ids[~resident_mask],
        )
        outcome.n_evictions = self._ensure_backed(vb)

        start, stop = self.space.page_span_of_vablock(vb)

        # -- prefetch decision (Section IV-A) ---------------------------------
        prefetch_pages = np.empty(0, dtype=np.int64)
        if self.prefetcher is not None and demand_pages.size:
            prefetch_pages = np.asarray(
                self.prefetcher.prefetch_pages(self.residency, vbin), dtype=np.int64
            )
            if prefetch_pages.size:
                if self.residency.resident[prefetch_pages].any():
                    raise SimulationError("prefetcher returned resident pages")
                if prefetch_pages.min() < start or prefetch_pages.max() >= stop:
                    # Prefetch is per-VABlock: physical backing exists
                    # only for the block being serviced.
                    raise SimulationError("prefetcher escaped the serviced VABlock")
            if self.sanitizer is not None:
                self.sanitizer.check_prefetch(self.residency, vb, prefetch_pages)

        all_pages = np.union1d(demand_pages, prefetch_pages)
        n_all = int(all_pages.size)
        if n_all == 0:
            return outcome

        # -- migrate (zero new phys, stage on host, DMA to device) -------------
        # Per-fault bookkeeping (permission checks, page-state walks) is
        # paid for demand faults only; prefetched pages ride along in the
        # same staging chunks with just their per-page costs - that gap
        # is why aggressive prefetching approaches explicit-transfer
        # efficiency (Section IV-C).
        # write intent aligned with the union page list
        writing = np.zeros(n_all, dtype=bool)
        writing[np.searchsorted(all_pages, demand_pages)] = vbin.writes

        n_ptes = self._effective_ptes(all_pages)
        migrate_ns = n_all * self.cost.stage_page_ns + n_ptes * self.cost.zero_page_ns
        migrate_ns += int(demand_pages.size) * self.cost.service_per_fault_ns
        migrate_ns += self.dma.h2d_pages(all_pages)
        if advise is MemAdvise.READ_MOSTLY:
            # read-only duplication: host mappings survive for pages that
            # were not written; only written pages become exclusive.
            unmap_pages = all_pages[writing]
        else:
            unmap_pages = all_pages  # migration unmaps the source copy
        migrate_ns += int(unmap_pages.size) * self.cost.unmap_page_ns
        self.host_table.unmap_pages(unmap_pages)
        self._charge("service.migrate", migrate_ns, count=n_all)

        # -- map (PTE writes, invalidate, membar) --------------------------------
        map_ns = (
            self.cost.map_vablock_fixed_ns
            + n_ptes * self.cost.map_page_ns
            + self.cost.tlb_invalidate_ns
            + self.cost.membar_ns
        )
        self.gpu_table.map_pages(all_pages)
        self.gpu_table.invalidate_tlb()
        self.gpu_table.membar()
        self._charge("service.map", map_ns, count=n_all)

        # -- residency + LRU promotion --------------------------------------------
        if advise is MemAdvise.READ_MOSTLY:
            # written pages map exclusive+RW; everything else arrives as
            # a read-only duplicate whose host copy stays valid
            self.residency.make_resident(
                all_pages, writing=writing, writable=writing, duplicated=~writing
            )
        else:
            self.residency.make_resident(all_pages, writing=writing)
        self.lru.touch(vb)

        outcome.n_demand = int(demand_pages.size)
        outcome.n_prefetch = int(prefetch_pages.size)
        self.counters.add(C.FAULTS_SERVICED, outcome.n_demand)
        self.counters.add(C.PAGES_DEMAND_H2D, outcome.n_demand)
        self.counters.add(C.PAGES_PREFETCH_H2D, outcome.n_prefetch)
        self.counters.add(C.PAGES_ZEROED, n_all)
        self.recorder.record_service(
            self.clock.now, vb, outcome.n_demand, outcome.n_prefetch
        )
        return outcome
