"""The two-stage UVM prefetcher: big-page upgrade + density tree.

Section IV-A describes the mechanism this module reimplements:

**Stage one - big-page upgrade.**  Every faulted 4 KB page is upgraded to
its 64 KB-aligned "big page": the 16 surrounding pages are flagged for
prefetch.  This satisfies common spatial locality and emulates Power9
page sizes on x86.

**Stage two - density tree.**  Each VABlock is conceptually a 9-level
binary tree whose 512 leaves are its 4 KB pages.  A node's value is the
number of leaves below it that are resident on the GPU *or present in the
current fault batch (including stage-one upgrades)*.  Starting from each
faulted leaf, the prefetch region is the **largest** enclosing subtree
whose access density exceeds the threshold (default 51, i.e. more than
51% of leaves).  All nodes in a chosen region are "set to their maximum
value", so regions chosen for earlier faults in the batch count as
present for later faults - the cascade effect the paper highlights
(one additional fault can trigger fetching an entire enclosing level).

The implementation grows regions greedily upward, testing the *parent*
region's density with strict integer arithmetic
(``count * 100 > threshold * size``), which matches the open-source
driver's ``uvm_perf_prefetch`` computation.  With threshold 1, a single
fault's 16 upgraded pages satisfy ``1600 > 512`` at the root and the
whole VABlock is fetched - the "aggressive prefetching rivals explicit
transfer" behaviour of Section IV-C.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.checks import sanitizer as uvmsan
from repro.errors import ConfigurationError
from repro.units import (
    DEFAULT_DENSITY_THRESHOLD,
    PAGES_PER_BIG_PAGE,
    PAGES_PER_VABLOCK,
)


@dataclass
class PrefetchDecision:
    """Outcome of running the prefetcher over one VABlock's fault bin.

    ``prefetch_offsets`` are leaf indices (page offsets within the
    VABlock) to fetch *in addition to* the demand-faulted pages; they are
    guaranteed non-resident and disjoint from the demand set.
    """

    prefetch_offsets: np.ndarray
    #: leaves flagged by stage one (big-page upgrade) only.
    upgraded: int = 0
    #: leaves added by stage-two tree regions beyond stage one.
    tree_added: int = 0
    #: largest region size (leaves) chosen for any fault in the bin.
    max_region: int = 0
    #: per-fault chosen region sizes, for introspection/demos.
    region_sizes: list[int] = field(default_factory=list)

    @property
    def count(self) -> int:
        return int(self.prefetch_offsets.size)


class TreePrefetcher:
    """Stateless per-VABlock prefetch computation.

    Also implements the generic prefetcher interface the fault servicer
    consumes (:meth:`prefetch_pages`); alternative predictors (e.g. the
    fault-origin stream prefetcher in :mod:`repro.ext.origin_prefetch`)
    provide the same method.
    """

    def __init__(
        self,
        threshold: int = DEFAULT_DENSITY_THRESHOLD,
        pages_per_vablock: int = PAGES_PER_VABLOCK,
        pages_per_big_page: int = PAGES_PER_BIG_PAGE,
    ) -> None:
        if not 1 <= threshold <= 100:
            raise ConfigurationError(
                f"density threshold must be in 1..100, got {threshold}"
            )
        if pages_per_vablock % pages_per_big_page:
            raise ConfigurationError("big page must divide VABlock evenly")
        if pages_per_vablock & (pages_per_vablock - 1):
            raise ConfigurationError("pages_per_vablock must be a power of two")
        self.threshold = threshold
        self.pages_per_vablock = pages_per_vablock
        self.pages_per_big_page = pages_per_big_page

    def compute(
        self,
        resident_leaves: np.ndarray,
        faulted_offsets: np.ndarray,
    ) -> PrefetchDecision:
        """Run both stages for one VABlock.

        ``resident_leaves`` is the VABlock's boolean residency mask
        (length ``pages_per_vablock``); ``faulted_offsets`` the leaf
        indices of this batch's demand faults in the block.
        """
        ppv = self.pages_per_vablock
        ppb = self.pages_per_big_page
        resident_leaves = np.asarray(resident_leaves, dtype=bool)
        if resident_leaves.shape != (ppv,):
            raise ConfigurationError(
                f"resident mask must have shape ({ppv},), got {resident_leaves.shape}"
            )
        faulted_offsets = np.asarray(faulted_offsets, dtype=np.int64)
        if faulted_offsets.size == 0:
            return PrefetchDecision(prefetch_offsets=np.empty(0, dtype=np.int64))
        if faulted_offsets.min() < 0 or faulted_offsets.max() >= ppv:
            raise ConfigurationError("faulted offsets outside VABlock")

        demand = np.zeros(ppv, dtype=bool)
        demand[faulted_offsets] = True
        # Occupancy evolves as regions are chosen ("set to max").
        occ = resident_leaves | demand
        pending = np.zeros(ppv, dtype=bool)  # pages flagged for prefetch

        decision = PrefetchDecision(prefetch_offsets=np.empty(0, dtype=np.int64))

        # Stage one: upgrade every faulted page's 64 KB big page.
        groups = np.unique(faulted_offsets // ppb)
        for g in groups:
            lo, hi = int(g) * ppb, (int(g) + 1) * ppb
            newly = ~occ[lo:hi]
            pending[lo:hi] |= newly
            occ[lo:hi] = True
        decision.upgraded = int(pending.sum())

        # Stage two: grow a region upward from each faulted leaf.
        for leaf in np.sort(faulted_offsets):
            base = (int(leaf) // ppb) * ppb
            size = ppb
            while size < ppv:
                parent_size = size * 2
                parent_base = (base // parent_size) * parent_size
                count = int(occ[parent_base : parent_base + parent_size].sum())
                if count * 100 > self.threshold * parent_size:
                    base, size = parent_base, parent_size
                    newly = ~occ[base : base + size]
                    pending[base : base + size] |= newly
                    occ[base : base + size] = True  # set region to max
                else:
                    break
            decision.region_sizes.append(size)
            decision.max_region = max(decision.max_region, size)

        prefetch_mask = pending & ~demand & ~resident_leaves
        decision.prefetch_offsets = np.flatnonzero(prefetch_mask).astype(np.int64)
        # Stage-one pending leaves were recorded before stage two grew
        # regions and are already demand/resident-disjoint, so the tree's
        # contribution is simply the remainder.
        decision.tree_added = decision.count - decision.upgraded
        return decision

    def prefetch_pages(self, residency, vbin) -> np.ndarray:
        """Generic interface: global pages to prefetch for one fault bin."""
        start, _stop = residency.space.page_span_of_vablock(vbin.vablock_id)
        decision = self.compute(
            residency.vablock_leaf_mask(vbin.vablock_id),
            vbin.pages - start,
        )
        pages = decision.prefetch_offsets + start
        if uvmsan.enabled() and pages.size:
            if residency.resident[pages].any():
                raise uvmsan.SanitizerError(
                    "UVMSAN[prefetch]: tree computed prefetch of resident pages"
                )
            if np.isin(pages, vbin.pages).any():
                raise uvmsan.SanitizerError(
                    "UVMSAN[prefetch]: tree prefetch overlaps demand faults"
                )
        return pages

    def describe_tree(
        self, resident_leaves: np.ndarray, faulted_offsets: np.ndarray
    ) -> list[str]:
        """Human-readable per-level densities (used by the Fig. 6 demo)."""
        ppv = self.pages_per_vablock
        occ = np.asarray(resident_leaves, dtype=bool).copy()
        occ[np.asarray(faulted_offsets, dtype=np.int64)] = True
        lines = []
        size = 1
        level = 0
        while size <= ppv:
            counts = occ.reshape(-1, size).sum(axis=1)
            dens = ", ".join(
                f"{int(c)}/{size}" for c in counts[: min(len(counts), 16)]
            )
            suffix = " ..." if len(counts) > 16 else ""
            lines.append(f"level {level} (subtree size {size:>4}): {dens}{suffix}")
            size *= 2
            level += 1
        return lines
