"""The top-level UVM driver loop and run orchestration.

:class:`UvmDriver` wires the whole Fig. 2 architecture together and runs
a kernel to completion:

1. the GPU advances warp streams and deposits far-faults in the hardware
   fault buffer (:meth:`~repro.gpu.device.GpuDevice.run_phase`),
2. the driver wakes, drains batches (:mod:`~repro.core.batch`), filters
   and bins them (:mod:`~repro.core.preprocess`), and services each
   VABlock bin (:mod:`~repro.core.service`) - evicting, prefetching,
   migrating, and mapping as required,
3. the configured replay policy (:mod:`~repro.core.replay`) decides when
   to flush the buffer and when to notify the GPU to replay, waking
   stalled warps (which may re-fault, producing duplicates).

Every nanosecond of driver work is attributed to the paper's categories
(``preprocess`` / ``service.*`` / ``replay_policy``) via
:class:`~repro.sim.stats.CategoryTimer`, reproducing the measurement
infrastructure behind Figs. 3-5 and 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro.chaos.injector import make_injector
from repro.chaos.plan import MODEL_BUFFER_OVERFLOW
from repro.checks.sanitizer import make_sanitizer
from repro.core import counters as C
from repro.core.batch import assemble_batch
from repro.core.eviction import LruEvictionPolicy
from repro.core.pma import PhysicalMemoryAllocator
from repro.core.prefetch import TreePrefetcher
from repro.core.preprocess import preprocess_batch
from repro.core.replay import ReplayAction, ReplayPolicy, ReplayPolicyKind, make_replay_policy
from repro.core.service import FaultServicer
from repro.errors import ConfigurationError, DeadlockError, SimulationError
from repro.gpu.device import GpuDevice, GpuDeviceConfig
from repro.gpu.dma import DmaEngine, DmaStats
from repro.gpu.warp import WarpStream
from repro.mem.address_space import AddressSpace
from repro.mem.page_table import PageTable
from repro.mem.residency import ResidencyState
from repro.sim.clock import SimClock
from repro.sim.costmodel import CostModel
from repro.sim.rng import SimRng
from repro.sim.stats import (
    PAPER_CATEGORIES,
    SERVICE_SUBCATEGORIES,
    CategoryTimer,
    CounterSet,
    TimeBreakdown,
)
from repro.trace.recorder import FinalizedTrace, NullRecorder, TraceRecorder
from repro.units import DEFAULT_BATCH_SIZE, DEFAULT_DENSITY_THRESHOLD


@dataclass(frozen=True)
class DriverConfig:
    """UVM driver tunables (module parameters of the real driver)."""

    batch_size: int = DEFAULT_BATCH_SIZE
    replay_policy: ReplayPolicyKind = ReplayPolicyKind.BATCH_FLUSH
    prefetch_enabled: bool = True
    density_threshold: int = DEFAULT_DENSITY_THRESHOLD
    #: which predictor drives prefetching: "tree" is the stock density
    #: prefetcher; "origin" is the Section VI-B what-if that exploits
    #: fault-origin information the real driver lacks.
    prefetcher_kind: str = "tree"
    #: Section VI-B "adaptive prefetching": auto-tune the density
    #: threshold from the observed eviction/fault load.
    adaptive_prefetch: bool = False
    #: "lru" is the stock fault-driven LRU; "access_counter" is the
    #: Section VI-B what-if using Volta-style access counters (requires
    #: GpuDeviceConfig.track_access_counters).
    eviction_policy: str = "lru"
    #: batch assembly fetch policy (Section III-C): poll per-entry ready
    #: flags (default) or close the batch at the first unready entry.
    batch_stop_at_not_ready: bool = False
    #: uvm_perf_thrashing analogue: detect evict/re-fault cycles and pin
    #: thrashing VABlocks with remote mappings instead of migrating.
    thrashing_mitigation: bool = False
    #: evictions of one block before pinning is considered.
    thrashing_evict_threshold: int = 3
    #: Volta access-counter notifications: promote remote-mapped blocks
    #: that the GPU keeps re-touching to local memory (requires
    #: GpuDeviceConfig.track_access_counters).
    counter_migration: bool = False
    #: safety valve for runaway simulations.
    max_phases: int = 2_000_000

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        if not 1 <= self.density_threshold <= 100:
            raise ConfigurationError("density_threshold must be in 1..100")
        if self.prefetcher_kind not in ("tree", "origin"):
            raise ConfigurationError(
                f"unknown prefetcher_kind {self.prefetcher_kind!r}"
            )
        if self.eviction_policy not in ("lru", "access_counter"):
            raise ConfigurationError(
                f"unknown eviction_policy {self.eviction_policy!r}"
            )

    def with_overrides(self, **kwargs) -> "DriverConfig":
        return replace(self, **kwargs)


@dataclass
class RunResult:
    """Everything a completed kernel run produced."""

    total_time_ns: int
    timer: CategoryTimer
    counters: CounterSet
    trace: FinalizedTrace
    dma: DmaStats
    driver_config: DriverConfig
    gpu_config: GpuDeviceConfig
    n_streams: int
    data_bytes: int
    gpu_phases: int

    @property
    def total_time_us(self) -> float:
        return self.total_time_ns / 1000.0

    def breakdown(self) -> TimeBreakdown:
        """Paper Fig. 3 trio: preprocess / service / replay policy."""
        return self.timer.breakdown(PAPER_CATEGORIES)

    def service_breakdown(self) -> TimeBreakdown:
        """Paper Fig. 4 trio: PMA alloc / migrate / map (+ evict)."""
        return self.timer.breakdown(SERVICE_SUBCATEGORIES + ("service.evict",))

    @property
    def faults_read(self) -> int:
        """Driver-observed faults (Table I's 'total faults')."""
        return self.counters[C.FAULTS_READ]

    @property
    def faults_serviced(self) -> int:
        return self.counters[C.FAULTS_SERVICED]

    @property
    def evictions(self) -> int:
        return self.counters[C.EVICTIONS]

    @property
    def pages_evicted(self) -> int:
        return self.counters[C.EVICTION_PAGES_DROPPED]

    @property
    def bytes_transferred(self) -> int:
        return self.dma.total_bytes


class UvmDriver:
    """One simulated application run: GPU + driver + policies."""

    def __init__(
        self,
        space: AddressSpace,
        streams: list[WarpStream] | None = None,
        driver_config: DriverConfig | None = None,
        gpu_config: GpuDeviceConfig | None = None,
        cost: CostModel | None = None,
        rng: SimRng | None = None,
        recorder: TraceRecorder | None = None,
        phases: list | None = None,
    ) -> None:
        from repro.workloads.base import KernelPhase

        if phases is None:
            phases = [KernelPhase(streams=list(streams or []))]
        elif streams is not None:
            raise ConfigurationError("pass either streams or phases, not both")
        self._phases = phases
        streams = phases[0].streams
        self.space = space
        self.driver_config = driver_config or DriverConfig()
        self.gpu_config = gpu_config or GpuDeviceConfig()
        self.cost = cost or CostModel()
        self.rng = rng or SimRng()
        self.recorder = recorder if recorder is not None else NullRecorder()

        if self.space.vablock_size > self.gpu_config.memory_bytes:
            raise ConfigurationError(
                "GPU memory smaller than one VABlock: nothing can ever fit"
            )

        self.clock = SimClock()
        self.timer = CategoryTimer()
        self.counters = CounterSet()
        #: UVMSAN invariant hooks; None unless UVMREPRO_SANITIZE=1.
        self.sanitizer = make_sanitizer()
        #: chaos fault injector; None unless a model-family plan is
        #: armed (same zero-cost sentinel pattern as UVMSAN).  Draws
        #: from a dedicated "chaos" RNG fork so injection never
        #: perturbs workload/scheduler randomness.
        self.chaos = make_injector(self.rng)
        self.residency = ResidencyState(space)
        self.gpu_table = PageTable(space, side="gpu")
        self.host_table = PageTable(space, side="host")
        # All managed data begins host-resident and host-mapped.
        self.host_table.mapped[:] = True
        self.pma = PhysicalMemoryAllocator(
            self.cost, self.gpu_config.memory_bytes, chaos=self.chaos
        )
        self.dma = DmaEngine(self.cost, space.page_size, chaos=self.chaos)
        self.device = GpuDevice(
            self.gpu_config,
            streams,
            rng=self.rng,
            total_vablocks=space.total_vablocks,
        )
        self.device.set_vablock_geometry(space.pages_per_vablock)
        self.lru = self._make_eviction_policy()
        self.policy: ReplayPolicy = make_replay_policy(self.driver_config.replay_policy)
        prefetcher = self._make_prefetcher()
        self._thrashing = None
        if self.driver_config.thrashing_mitigation:
            from repro.ext.thrashing import ThrashingDetector

            self._thrashing = ThrashingDetector(
                evict_threshold=self.driver_config.thrashing_evict_threshold
            )
        self._counter_migration = None
        if self.driver_config.counter_migration:
            if self.device.access_counters is None:
                raise ConfigurationError(
                    "counter_migration requires "
                    "GpuDeviceConfig.track_access_counters=True"
                )
            from repro.ext.counter_migration import CounterMigrationController

            self._counter_migration = CounterMigrationController()
        self._adaptive = None
        if self.driver_config.adaptive_prefetch:
            if prefetcher is None or not isinstance(prefetcher, TreePrefetcher):
                raise ConfigurationError(
                    "adaptive_prefetch requires the tree prefetcher to be enabled"
                )
            from repro.ext.adaptive_prefetch import AdaptiveThresholdController

            self._adaptive = AdaptiveThresholdController(
                initial_threshold=self.driver_config.density_threshold,
                managed_fraction=(
                    space.total_bytes_requested / self.gpu_config.memory_bytes
                ),
            )
        self.servicer = FaultServicer(
            residency=self.residency,
            gpu_table=self.gpu_table,
            host_table=self.host_table,
            pma=self.pma,
            lru=self.lru,
            dma=self.dma,
            cost=self.cost,
            clock=self.clock,
            timer=self.timer,
            counters=self.counters,
            recorder=self.recorder,
            prefetcher=prefetcher,
            thrashing=self._thrashing,
            sanitizer=self.sanitizer,
        )
        self._n_streams = sum(len(p.streams) for p in self._phases)
        self._compute_parallelism = max(1, self.gpu_config.n_sms * 8)
        # snapshot which advise behaviours are in play so the hot phase
        # loop only pays for permission/remote checks when needed
        from repro.mem.advise import MemAdvise

        advises = {space.advise_of_range(r.index) for r in space.ranges}
        self._has_remote = (
            MemAdvise.PINNED_HOST in advises or self._thrashing is not None
        )
        self._permission_aware = MemAdvise.READ_MOSTLY in advises
        self._finished = False
        # Resumable run-loop state.  All loop progress lives on the
        # instance (not in locals) so a pickled driver restores mid-run
        # and run() continues exactly where the checkpoint was taken.
        self._init_charged = False
        self._phase_i = 0
        self._phase_started = False
        self._gpu_phases_total = 0
        self._kernel_phases = 0
        self._kernel_stagnant = 0
        self._kernel_last_progress = (-1, -1)

    def _make_eviction_policy(self):
        if self.driver_config.eviction_policy == "access_counter":
            if self.device.access_counters is None:
                raise ConfigurationError(
                    "eviction_policy='access_counter' requires "
                    "GpuDeviceConfig.track_access_counters=True"
                )
            from repro.ext.access_counter_eviction import AccessCounterEviction

            return AccessCounterEviction(self.device.access_counters)
        return LruEvictionPolicy()

    def _make_prefetcher(self):
        if not self.driver_config.prefetch_enabled:
            return None
        if self.driver_config.prefetcher_kind == "origin":
            from repro.ext.origin_prefetch import OriginStreamPrefetcher

            return OriginStreamPrefetcher(
                pages_per_big_page=self.space.pages_per_big_page
            )
        return TreePrefetcher(
            threshold=self.driver_config.density_threshold,
            pages_per_vablock=self.space.pages_per_vablock,
            pages_per_big_page=self.space.pages_per_big_page,
        )

    # -- policy action handling -------------------------------------------------
    def _apply_action(self, action: ReplayAction) -> None:
        if action.flush_buffer:
            flushed = self.device.fault_buffer.flush()
            flush_ns = self.cost.flush_fixed_ns + flushed * self.cost.flush_per_entry_ns
            self.timer.charge("replay_policy.flush", flush_ns, count=1)
            self.clock.advance(flush_ns)
            self.counters.add(C.BUFFER_FLUSHES)
            self.counters.add(C.FLUSHED_ENTRIES, flushed)
        if action.issue_replay:
            self.timer.charge("replay_policy.replay", self.cost.replay_issue_ns, count=1)
            # in-fabric latency before SMs observe the replay: wall time,
            # accounted under the same category so breakdowns cover the
            # clock exactly
            self.timer.charge("replay_policy.delivery", self.cost.replay_delivery_ns)
            self.clock.advance(self.cost.replay_issue_ns + self.cost.replay_delivery_ns)
            self.device.deliver_replay()
            self.counters.add(C.REPLAYS_ISSUED)
            self.recorder.record_replay(self.clock.now)

    # -- GPU-side bookkeeping ---------------------------------------------------
    def _run_device_phase(self, max_streams: int | None = None):
        """One GPU phase against the current access masks."""
        return self.device.run_phase(
            self.residency.read_ok,
            self.clock,
            max_streams=max_streams,
            write_ok=self.residency.write_ok if self._permission_aware else None,
            remote=self.residency.remote_mapped if self._has_remote else None,
        )

    def _absorb_phase(self, result) -> None:
        """Fold one GPU phase's results into counters and compute time."""
        self.counters.add(C.GPU_PHASES)
        self.counters.add(C.GPU_ACCESSES, result.accesses_retired)
        self.counters.add(C.FAULTS_ENQUEUED, result.faults_enqueued)
        self.counters.add(C.FAULTS_COALESCED, result.faults_coalesced)
        self.counters.add(C.FAULTS_DROPPED, result.faults_dropped)
        if result.remote_accesses:
            self.counters.add(C.REMOTE_ACCESSES, result.remote_accesses)
            remote_ns = round(
                result.remote_accesses
                * self.cost.remote_touch_bytes
                * 1e9
                / self.cost.remote_access_bytes_per_s
            )
            if remote_ns:
                self.timer.charge("gpu.remote_access", remote_ns)
                self.clock.advance(remote_ns)
        if result.accesses_retired:
            compute_ns = (
                result.accesses_retired * self.cost.access_ns
            ) // self._compute_parallelism
            if result.flops_retired:
                compute_ns += round(
                    result.flops_retired * 1e9 / self.gpu_config.compute_flops_per_s
                )
            if compute_ns:
                self.timer.charge("gpu.compute", compute_ns)
                self.clock.advance(compute_ns)

    def _gpu_arrivals(self, service_ns: int) -> None:
        """Faults that arrived while the driver spent ``service_ns``.

        The SMs never pause for the driver: while a batch is serviced,
        other warps keep running and stalling, refilling the fault
        buffer.  The arrival count scales with the time the driver just
        spent, which is what couples slow (scattered) servicing to large
        flush backlogs and duplicate faults.
        """
        n = int(self.gpu_config.service_arrival_per_us * service_ns / 1000)
        if n <= 0:
            return
        result = self._run_device_phase(max_streams=n)
        self._absorb_phase(result)

    # -- driver service pass --------------------------------------------------------
    def _driver_pass(self) -> int:
        """Process the fault buffer until empty; returns batches handled."""
        cfg = self.driver_config
        self.timer.charge("preprocess.wakeup", self.cost.driver_wakeup_ns)
        self.clock.advance(self.cost.driver_wakeup_ns)
        batches = 0
        while len(self.device.fault_buffer):
            batch = assemble_batch(
                self.device.fault_buffer,
                self.clock.now,
                cfg.batch_size,
                stop_at_not_ready=cfg.batch_stop_at_not_ready,
            )
            if not len(batch):
                break
            batches += 1
            if self.sanitizer is not None:
                self.sanitizer.check_batch(batch, cfg.batch_size)
            pre = preprocess_batch(batch, self.residency)
            pre_ns = (
                self.cost.batch_fetch_fixed_ns
                + len(batch) * self.cost.fault_read_ns
                + batch.polls * self.cost.fault_poll_ns
                + self.cost.sort_fixed_ns
                + len(batch) * self.cost.sort_per_fault_ns
                + len(batch) * self.cost.preprocess_per_fault_ns
            )
            self.timer.charge("preprocess.batch", pre_ns, count=len(batch))
            self.clock.advance(pre_ns)
            self.counters.add(C.FAULTS_READ, pre.n_read)
            self.counters.add(C.FAULTS_DUPLICATE, pre.n_duplicate)
            self.counters.add(C.FAULT_POLLS, batch.polls)
            self.counters.add(C.BATCHES)
            self.counters.add(C.VABLOCK_BINS, len(pre.bins))
            if self.recorder.enabled:
                ppv = self.space.pages_per_vablock
                for page, stream_id, dup in zip(
                    batch.page.tolist(),
                    batch.stream_id.tolist(),
                    pre.entry_duplicate.tolist(),
                ):
                    self.recorder.record_fault(
                        self.clock.now, page, page // ppv, stream_id, dup
                    )
                self.recorder.record_batch(self.clock.now, pre.n_read, pre.n_duplicate)

            service_start = self.clock.now
            for vbin in pre.bins:
                self.servicer.service_bin(vbin)
                self._apply_action(self.policy.after_vablock())
            self._gpu_arrivals(self.clock.now - service_start)
            self._apply_action(self.policy.after_batch())
            if self.sanitizer is not None:
                self.sanitizer.check_state(
                    self.residency, self.gpu_table, self.host_table, self.lru
                )
        if batches:
            self._apply_action(self.policy.after_buffer_drained())
            if self._counter_migration is not None:
                hot = self._counter_migration.candidates(
                    self.device.access_counters,
                    self.residency.remote_mapped,
                    self.space.pages_per_vablock,
                )
                for vb in hot:
                    if self.servicer.promote_remote_block(vb):
                        self._counter_migration.note_promotion(vb)
            if self._adaptive is not None:
                self.servicer.prefetcher.threshold = self._adaptive.observe(
                    self.counters,
                    used_fraction=self.pma.used_bytes / self.pma.capacity_bytes,
                )
        return batches

    # -- CPU-side fault path ---------------------------------------------------------
    def _host_access(self, host) -> None:
        """Service host touches of managed data between kernels.

        Each touched page that is GPU-resident takes a CPU page fault;
        the driver migrates it back at 64 KB-region granularity, unmaps
        it from the GPU, and remaps it on the host - the kernel-boundary
        ping-pong that keeps iterative solvers faulting every iteration.
        """
        pages = np.unique(np.asarray(host.pages, dtype=np.int64))
        if pages.size == 0:
            return
        self.space.validate_pages(pages)
        if getattr(host, "writes", False):
            # host writes to read-duplicated pages invalidate the (clean)
            # GPU copies without moving any data
            dropping = pages[self.residency.duplicated[pages]]
            n_dropped = self.residency.invalidate_duplicates(pages)
            if n_dropped:
                self.gpu_table.unmap_pages(dropping)
                self.gpu_table.invalidate_tlb()
                inv_ns = (
                    n_dropped * self.cost.unmap_page_ns + self.cost.tlb_invalidate_ns
                )
                self.timer.charge("host_fault", inv_ns, count=n_dropped)
                self.clock.advance(inv_ns)
                self.counters.add(C.DUP_INVALIDATIONS, n_dropped)
        moving = pages[
            self.residency.resident[pages] & ~self.residency.duplicated[pages]
        ]
        n_moved, _n_dirty = self.residency.migrate_to_host(pages)
        if not n_moved:
            return
        groups = np.unique(moving // self.space.pages_per_big_page)
        host_ns = len(groups) * self.cost.host_fault_group_ns
        host_ns += self.dma.d2h_pages(moving)
        host_ns += n_moved * (self.cost.unmap_page_ns + self.cost.map_page_ns)
        host_ns += self.cost.tlb_invalidate_ns + self.cost.membar_ns
        self.gpu_table.unmap_pages(moving)
        self.gpu_table.invalidate_tlb()
        self.gpu_table.membar()
        self.host_table.map_pages(moving)
        self.timer.charge("host_fault", host_ns, count=len(groups))
        self.clock.advance(host_ns)
        self.counters.add(C.HOST_FAULTS, len(groups))
        self.counters.add(C.PAGES_HOST_D2H, n_moved)

    # -- main loop ---------------------------------------------------------------------
    def run(self, checkpointer=None) -> RunResult:
        """Run all kernel phases to completion; returns the result.

        ``checkpointer`` (a
        :class:`~repro.sim.engine.SimulationCheckpointer`) enables
        periodic whole-driver snapshots at phase boundaries; a driver
        restored from such a snapshot calls ``run()`` again and
        continues mid-kernel, producing a result bit-identical to an
        uninterrupted run (snapshotting only reads state).
        """
        if self._finished:
            raise SimulationError("UvmDriver.run() may only be called once")

        if not self._init_charged:
            # First-touch session overhead (the 400-600 us floor, Section III-C).
            self.timer.charge("init", self.cost.session_base_ns)
            self.clock.advance(self.cost.session_base_ns)
            self._init_charged = True

        while self._phase_i < len(self._phases):
            phase = self._phases[self._phase_i]
            if not self._phase_started:
                if phase.host_before is not None:
                    self._host_access(phase.host_before)
                if self._phase_i > 0:
                    self.device.load_kernel(phase.streams)
                self._kernel_phases = 0
                self._kernel_stagnant = 0
                self._kernel_last_progress = (-1, -1)
                self._phase_started = True
            self._run_kernel(checkpointer)
            # accumulated only at kernel completion, so a mid-kernel
            # checkpoint never double-counts on resume
            self._gpu_phases_total += self._kernel_phases
            self._phase_i += 1
            self._phase_started = False

        self._finished = True
        if self.sanitizer is not None:
            self.sanitizer.check_state(
                self.residency, self.gpu_table, self.host_table, self.lru
            )
        if self.chaos is not None:
            for point, count in sorted(self.chaos.fired.items()):
                self.counters.add(f"chaos.{point}", count)

        return RunResult(
            total_time_ns=self.clock.now,
            timer=self.timer,
            counters=self.counters,
            trace=self.recorder.finalize(),
            dma=self.dma.stats,
            driver_config=self.driver_config,
            gpu_config=self.gpu_config,
            n_streams=self._n_streams,
            data_bytes=self.space.total_bytes_requested,
            gpu_phases=self._gpu_phases_total,
        )

    def _run_kernel(self, checkpointer=None) -> None:
        """Drive the currently loaded kernel to completion."""
        while self._kernel_phases < self.driver_config.max_phases:
            self._kernel_phases += 1
            result = self._run_device_phase()
            self._absorb_phase(result)

            if self.device.kernel_finished():
                break

            if (
                self.chaos is not None
                and len(self.device.fault_buffer)
                and self.chaos.fire(MODEL_BUFFER_OVERFLOW) is not None
            ):
                # Injected fault-buffer overflow: pending entries are
                # flushed (dropped) and a replay storms the SMs - the
                # stalled warps wake, re-walk, and re-raise their
                # faults.  Costs flush + replay + duplicate faults,
                # never correctness (the drop/re-raise path is the
                # hardware's own overflow behaviour).
                self._apply_action(
                    ReplayAction(flush_buffer=True, issue_replay=True)
                )

            if len(self.device.fault_buffer):
                self._driver_pass()
            elif self.device.has_stalled_streams():
                # Stalled warps with an empty buffer: every entry was
                # dropped/flushed without a replay reaching them.  Real
                # hardware re-walks after replays; nudge with one.
                self._apply_action(ReplayAction(issue_replay=True))

            progress = (
                self.counters[C.GPU_ACCESSES],
                self.counters[C.FAULTS_SERVICED],
            )
            if progress == self._kernel_last_progress:
                self._kernel_stagnant += 1
                if self._kernel_stagnant > 1000:
                    raise DeadlockError(
                        f"no progress for {self._kernel_stagnant} phases: "
                        f"{self.device.scheduler!r}, buffer={len(self.device.fault_buffer)}"
                    )
            else:
                self._kernel_stagnant = 0
                self._kernel_last_progress = progress

            if checkpointer is not None:
                # phase boundary: all driver state is consistent here
                checkpointer.maybe_save(self)
        else:
            raise SimulationError(
                f"kernel did not finish within {self.driver_config.max_phases} phases"
            )
