"""The four fault-replay policies (Section III-E).

After servicing, the driver notifies the GPU to *replay* far-faults so
stalled warps retry their accesses.  When to notify is a latency/overhead
trade-off, and the NVIDIA driver ships four policies:

* **Block** - replay after every serviced VABlock within a batch.
  Earliest resume, most replays.
* **Batch** - replay after each serviced batch.  Fewer replays, larger
  fault-resolution latency; stale duplicates stay in the buffer and
  inflate pre-processing (Fig. 5).
* **Batch-flush** (the driver default) - like Batch, but the hardware
  fault buffer is flushed after the batch completes and before the
  replay, preventing duplicates at the cost of remote queue management
  (the flush cost is accounted to the replay-policy category, which is
  why Fig. 3 shows a large replay component that vanishes in Fig. 5).
* **Once** - replay only when every fault in the buffer has been
  serviced.  Simplest, longest stalls.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError


class ReplayPolicyKind(enum.Enum):
    """Names match the driver's replay-policy module parameter."""

    BLOCK = "block"
    BATCH = "batch"
    BATCH_FLUSH = "batch_flush"
    ONCE = "once"


@dataclass(frozen=True)
class ReplayAction:
    """What the driver should do at a policy hook point."""

    flush_buffer: bool = False
    issue_replay: bool = False


class ReplayPolicy:
    """Base policy: subclasses override the three hook points."""

    kind: ReplayPolicyKind

    def after_vablock(self) -> ReplayAction:
        """Called after each VABlock bin within a batch is serviced."""
        return ReplayAction()

    def after_batch(self) -> ReplayAction:
        """Called after a whole batch has been serviced."""
        return ReplayAction()

    def after_buffer_drained(self) -> ReplayAction:
        """Called when the fault buffer is empty and all batches serviced."""
        return ReplayAction()


class BlockReplayPolicy(ReplayPolicy):
    kind = ReplayPolicyKind.BLOCK

    def after_vablock(self) -> ReplayAction:
        return ReplayAction(issue_replay=True)


class BatchReplayPolicy(ReplayPolicy):
    kind = ReplayPolicyKind.BATCH

    def after_batch(self) -> ReplayAction:
        return ReplayAction(issue_replay=True)


class BatchFlushReplayPolicy(ReplayPolicy):
    kind = ReplayPolicyKind.BATCH_FLUSH

    def after_batch(self) -> ReplayAction:
        return ReplayAction(flush_buffer=True, issue_replay=True)


class OnceReplayPolicy(ReplayPolicy):
    kind = ReplayPolicyKind.ONCE

    def after_buffer_drained(self) -> ReplayAction:
        return ReplayAction(issue_replay=True)


_POLICIES: dict[ReplayPolicyKind, type[ReplayPolicy]] = {
    ReplayPolicyKind.BLOCK: BlockReplayPolicy,
    ReplayPolicyKind.BATCH: BatchReplayPolicy,
    ReplayPolicyKind.BATCH_FLUSH: BatchFlushReplayPolicy,
    ReplayPolicyKind.ONCE: OnceReplayPolicy,
}


def make_replay_policy(kind: ReplayPolicyKind | str) -> ReplayPolicy:
    """Instantiate a policy by enum or name (``"batch_flush"`` etc.)."""
    if isinstance(kind, str):
        try:
            kind = ReplayPolicyKind(kind.lower())
        except ValueError as exc:
            names = ", ".join(k.value for k in ReplayPolicyKind)
            raise ConfigurationError(
                f"unknown replay policy {kind!r}; expected one of: {names}"
            ) from exc
    return _POLICIES[kind]()
