"""Fault batch assembly (the front half of pre-processing).

Section III-C: *"Faults are fetched until the fault pointer queue is
empty, the current batch of faults is full, or a fault that is not ready
is encountered, depending on policy.  The default batch size is 256
faults."*  The driver "will generally read at least a full batch from the
queue during every pass and cache the faults on the host to avoid having
to make multiple remote updates to the queue", polling per-entry ready
flags when the producer is still writing.

:func:`assemble_batch` reproduces that: it drains up to ``batch_size``
entries, accumulating the poll count so the driver can charge the
polling cost to the pre-processing category.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.fault_buffer import FaultBuffer, FaultEntry


@dataclass
class FaultBatch:
    """One driver batch: the raw entries plus assembly-time costs."""

    entries: list[FaultEntry] = field(default_factory=list)
    polls: int = 0

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def pages(self) -> list[int]:
        return [e.page for e in self.entries]


def assemble_batch(
    buffer: FaultBuffer,
    now_ns: int,
    batch_size: int,
    stop_at_not_ready: bool = False,
) -> FaultBatch:
    """Drain up to ``batch_size`` entries from the fault buffer.

    The paper: assembly stops when "the fault pointer queue is empty,
    the current batch of faults is full, or a fault that is not ready is
    encountered, **depending on policy**".  The default policy polls
    per-entry ready flags (the cost surfaces as ``FaultBatch.polls``);
    with ``stop_at_not_ready`` the driver instead closes the batch at
    the first unready entry, trading smaller batches for zero polling.
    To guarantee forward progress, a batch that would otherwise be empty
    still polls for its first entry.
    """
    batch = FaultBatch()
    while len(batch.entries) < batch_size:
        if stop_at_not_ready and batch.entries and not buffer.head_ready(now_ns):
            break
        entry, polls = buffer.pop_ready(now_ns)
        if entry is None:
            break
        batch.polls += polls
        batch.entries.append(entry)
    return batch
