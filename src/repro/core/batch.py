"""Fault batch assembly (the front half of pre-processing).

Section III-C: *"Faults are fetched until the fault pointer queue is
empty, the current batch of faults is full, or a fault that is not ready
is encountered, depending on policy.  The default batch size is 256
faults."*  The driver "will generally read at least a full batch from the
queue during every pass and cache the faults on the host to avoid having
to make multiple remote updates to the queue", polling per-entry ready
flags when the producer is still writing.

:func:`assemble_batch` reproduces that: it drains up to ``batch_size``
entries, accumulating the poll count so the driver can charge the
polling cost to the pre-processing category.  The drained batch is held
as parallel field arrays (the driver's host-side fault cache), so
pre-processing consumes numpy arrays directly instead of iterating
per-entry objects; :attr:`FaultBatch.entries` reconstructs the object
view on demand for tests and analysis.
"""

from __future__ import annotations

import numpy as np

from repro.checks import sanitizer as uvmsan
from repro.gpu.fault_buffer import FaultBuffer, FaultEntry


class FaultBatch:
    """One driver batch: parallel field arrays plus assembly-time costs."""

    __slots__ = (
        "page",
        "is_write",
        "timestamp_ns",
        "gpc_id",
        "utlb_id",
        "stream_id",
        "sm_id",
        "polls",
    )

    def __init__(
        self,
        entries: list[FaultEntry] | None = None,
        polls: int = 0,
        *,
        arrays: tuple | None = None,
    ) -> None:
        self.polls = polls
        if arrays is not None:
            (
                self.page,
                self.is_write,
                self.timestamp_ns,
                self.gpc_id,
                self.utlb_id,
                self.stream_id,
                self.sm_id,
            ) = arrays
            return
        entries = entries or []
        n = len(entries)
        self.page = np.fromiter((e.page for e in entries), dtype=np.int64, count=n)
        self.is_write = np.fromiter((e.is_write for e in entries), dtype=bool, count=n)
        self.timestamp_ns = np.fromiter(
            (e.timestamp_ns for e in entries), dtype=np.int64, count=n
        )
        self.gpc_id = np.fromiter((e.gpc_id for e in entries), dtype=np.int64, count=n)
        self.utlb_id = np.fromiter((e.utlb_id for e in entries), dtype=np.int64, count=n)
        self.stream_id = np.fromiter(
            (e.stream_id for e in entries), dtype=np.int64, count=n
        )
        self.sm_id = np.fromiter((e.sm_id for e in entries), dtype=np.int64, count=n)

    def __len__(self) -> int:
        return int(self.page.size)

    @property
    def pages(self) -> list[int]:
        return self.page.tolist()

    @property
    def entries(self) -> list[FaultEntry]:
        """Per-entry object view (reconstructed; for tests/analysis)."""
        return [
            FaultEntry(
                page=int(self.page[i]),
                is_write=bool(self.is_write[i]),
                timestamp_ns=int(self.timestamp_ns[i]),
                gpc_id=int(self.gpc_id[i]),
                utlb_id=int(self.utlb_id[i]),
                stream_id=int(self.stream_id[i]),
                sm_id=int(self.sm_id[i]),
            )
            for i in range(len(self))
        ]


def assemble_batch(
    buffer: FaultBuffer,
    now_ns: int,
    batch_size: int,
    stop_at_not_ready: bool = False,
) -> FaultBatch:
    """Drain up to ``batch_size`` entries from the fault buffer.

    The paper: assembly stops when "the fault pointer queue is empty,
    the current batch of faults is full, or a fault that is not ready is
    encountered, **depending on policy**".  The default policy polls
    per-entry ready flags (the cost surfaces as ``FaultBatch.polls``);
    with ``stop_at_not_ready`` the driver instead closes the batch at
    the first unready entry, trading smaller batches for zero polling.
    To guarantee forward progress, a batch that would otherwise be empty
    still polls for its first entry.
    """
    drained = buffer.drain_arrays(now_ns, batch_size, stop_at_not_ready)
    if drained is None:
        return FaultBatch()
    batch = FaultBatch(arrays=drained[:7], polls=drained[7])
    if uvmsan.enabled() and len(batch) > batch_size:
        raise uvmsan.SanitizerError(
            f"UVMSAN[batch]: drained {len(batch)} faults > batch_size {batch_size}"
        )
    return batch
