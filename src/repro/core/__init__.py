"""The UVM driver reimplementation - the paper's primary subject.

This package reproduces the NVIDIA UVM driver pipeline the paper
instruments (Sections III-V):

* :mod:`~repro.core.batch` / :mod:`~repro.core.preprocess` - draining the
  fault buffer into 256-fault batches, duplicate filtering, and VABlock
  binning ("pre/post-processing"),
* :mod:`~repro.core.service` - fault servicing: PMA allocation, page
  migration, page mapping,
* :mod:`~repro.core.pma` - the physical memory allocator with
  over-allocation caching,
* :mod:`~repro.core.prefetch` - the two-stage prefetcher: 64 KB big-page
  upgrade plus the 9-level density tree (Fig. 6),
* :mod:`~repro.core.eviction` - fault-driven LRU eviction of VABlocks,
* :mod:`~repro.core.replay` - the four replay policies (Block, Batch,
  Batch-flush, Once),
* :mod:`~repro.core.driver` - the top-level service loop tying it all to
  the GPU model, with the paper's category instrumentation.
"""

from repro.core.pma import PhysicalMemoryAllocator
from repro.core.eviction import LruEvictionPolicy
from repro.core.prefetch import PrefetchDecision, TreePrefetcher
from repro.core.replay import ReplayPolicy, make_replay_policy
from repro.core.driver import DriverConfig, RunResult, UvmDriver

__all__ = [
    "PhysicalMemoryAllocator",
    "LruEvictionPolicy",
    "TreePrefetcher",
    "PrefetchDecision",
    "ReplayPolicy",
    "make_replay_policy",
    "UvmDriver",
    "DriverConfig",
    "RunResult",
]
