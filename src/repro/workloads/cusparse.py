"""cuSparse workload: dense-to-CSR conversion followed by SpMM.

Section III-B: "a cuSparse kernel that converts a dense matrix to a
sparse matrix and performs a sparse matrix multiplication."  Two phases
with very different page behaviour, which is what makes its Fig. 7 panel
interesting:

1. **Conversion** (``cusparseSdense2csr``-style): a sequential sweep of
   the dense matrix, writing the CSR value/column arrays sequentially -
   dense, prefetcher-friendly.
2. **SpMM** (``C = S @ B``): per sparse row, a sequential read of that
   row's CSR segment plus *scattered* reads of B rows selected by the
   column indices - the "portions that mimic the random access pattern,
   characterizing the access behavior of sparse matrix representations"
   (Section IV-B).

Sparsity is synthetic (seeded uniform column selection at the requested
density), which preserves exactly the property that matters to the
driver: B is touched at page granularity in data-dependent, scattered
order.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.gpu.warp import WarpStream
from repro.mem.address_space import AddressSpace
from repro.sim.rng import SimRng
from repro.workloads.base import Workload, WorkloadBuild, chunk_indices

_F32 = 4
_I32 = 4


class CusparseWorkload(Workload):
    """Dense->CSR conversion + SpMM with scattered B access."""

    name = "cusparse"

    def __init__(
        self,
        n: int = 2048,
        density: float = 0.02,
        b_cols: int = 64,
        rows_per_stream: int = 16,
    ) -> None:
        if n <= 0:
            raise ConfigurationError("n must be positive")
        if not 0.0 < density <= 1.0:
            raise ConfigurationError("density must be in (0, 1]")
        if b_cols <= 0 or rows_per_stream <= 0:
            raise ConfigurationError("b_cols and rows_per_stream must be positive")
        self.n = n
        self.density = density
        self.b_cols = b_cols
        self.rows_per_stream = rows_per_stream
        self.nnz = max(1, int(n * n * density))

    def required_bytes(self) -> int:
        dense = self.n * self.n * _F32
        csr_vals = self.nnz * _F32
        csr_cols = self.nnz * _I32
        rowptr = (self.n + 1) * _I32
        b = self.n * self.b_cols * _F32
        c = self.n * self.b_cols * _F32
        return dense + csr_vals + csr_cols + rowptr + b + c

    def build(self, space: AddressSpace, rng: SimRng) -> WorkloadBuild:
        n = self.n
        dense = space.malloc_managed(n * n * _F32, name="dense")
        vals = space.malloc_managed(self.nnz * _F32, name="csr_vals")
        cols = space.malloc_managed(self.nnz * _I32, name="csr_cols")
        rowptr = space.malloc_managed((n + 1) * _I32, name="csr_rowptr")
        bmat = space.malloc_managed(n * self.b_cols * _F32, name="B")
        cmat = space.malloc_managed(n * self.b_cols * _F32, name="C")
        page_size = space.page_size
        wl_rng = rng.fork(self.name)

        nnz_per_row = max(1, self.nnz // n)
        streams: list[WarpStream] = []
        sid = 0

        # -- phase 1: dense -> CSR conversion (sequential sweep) ----------------
        dense_pages_per_row = max(1, (n * _F32) // page_size)
        for lo, hi in chunk_indices(n, self.rows_per_stream):
            d_lo = (lo * n * _F32) // page_size
            d_hi = ((hi * n - 1) * _F32) // page_size + 1
            d_pages = dense.start_page + np.arange(d_lo, d_hi, dtype=np.int64)
            v_lo = (lo * nnz_per_row * _F32) // page_size
            v_hi = (hi * nnz_per_row * _F32 - 1) // page_size + 1
            v_pages = vals.start_page + np.arange(v_lo, v_hi, dtype=np.int64)
            c_pages = cols.start_page + np.arange(v_lo, v_hi, dtype=np.int64)
            r_page = rowptr.start_page + np.array(
                [(lo * _I32) // page_size], dtype=np.int64
            )
            pages = np.concatenate([d_pages, v_pages, c_pages, r_page])
            writes = np.zeros(pages.shape, dtype=bool)
            writes[d_pages.size :] = True  # CSR arrays are written
            streams.append(self.make_stream(sid, pages, writes))
            sid += 1

        # -- phase 2: SpMM C = S @ B (scattered B reads) ---------------------------
        b_row_bytes = self.b_cols * _F32
        for lo, hi in chunk_indices(n, self.rows_per_stream):
            v_lo = (lo * nnz_per_row * _F32) // page_size
            v_hi = (hi * nnz_per_row * _F32 - 1) // page_size + 1
            v_pages = vals.start_page + np.arange(v_lo, v_hi, dtype=np.int64)
            c_pages = cols.start_page + np.arange(v_lo, v_hi, dtype=np.int64)
            # data-dependent scatter: each nonzero pulls a B row
            n_scatter = (hi - lo) * nnz_per_row
            scatter_rows = wl_rng.integers(0, n, size=n_scatter)
            b_pages = self.pages_of_elements(
                bmat, scatter_rows, b_row_bytes, page_size
            )
            out_lo = (lo * b_row_bytes) // page_size
            out_hi = (hi * b_row_bytes - 1) // page_size + 1
            out_pages = cmat.start_page + np.arange(out_lo, out_hi, dtype=np.int64)
            pages = np.concatenate([v_pages, c_pages, b_pages, out_pages])
            writes = np.zeros(pages.shape, dtype=bool)
            writes[pages.size - out_pages.size :] = True
            streams.append(self.make_stream(sid, pages, writes))
            sid += 1

        return WorkloadBuild(
            streams=streams,
            ranges={
                "dense": dense,
                "csr_vals": vals,
                "csr_cols": cols,
                "csr_rowptr": rowptr,
                "B": bmat,
                "C": cmat,
            },
        )
