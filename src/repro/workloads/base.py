"""Workload abstraction.

A workload knows how to (a) allocate its managed ranges into an
:class:`~repro.mem.address_space.AddressSpace` and (b) emit the warp
streams whose page accesses the GPU will execute.  Both happen in
:meth:`Workload.build`, which returns a :class:`WorkloadBuild`.

Conventions:

* element indices are converted to *global page indices* via the range's
  ``start_page`` plus byte arithmetic - workloads never hand-compute
  raw addresses;
* a stream's ``writes`` mask marks stores (dirty pages must migrate back
  on eviction, Section V-A1); read-only streams pass ``writes=None``;
* workloads are deterministic given the forked rng the builder receives.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.gpu.warp import WarpStream
from repro.mem.address_space import AddressSpace, ManagedRange
from repro.sim.rng import SimRng
from repro.units import human_size


@dataclass
class HostAccess:
    """CPU-side touches of managed data between kernel launches.

    Real UVM ports hit this constantly: the host inspects results,
    finalizes a reduction, or fills boundaries between kernels; each
    touch of a GPU-resident page takes a *CPU* page fault and migrates
    the page back, so the next kernel re-faults it - the ping-pong that
    keeps iterative solvers' fault counts high.  ``writes`` marks host
    stores (the GPU copy is stale either way; writes matter for
    host-side dirty tracking symmetry).
    """

    pages: np.ndarray
    writes: bool = False


@dataclass
class KernelPhase:
    """One kernel launch, optionally preceded by host-side accesses."""

    streams: list[WarpStream]
    host_before: Optional[HostAccess] = None


@dataclass
class WorkloadBuild:
    """The product of building a workload against an address space.

    Simple workloads fill ``streams`` (a single kernel); multi-kernel
    applications with host interaction fill ``phases`` instead, and
    ``streams`` is derived for analysis convenience.
    """

    streams: list[WarpStream]
    ranges: dict[str, ManagedRange] = field(default_factory=dict)
    phases: Optional[list[KernelPhase]] = None

    @classmethod
    def from_phases(
        cls, phases: list[KernelPhase], ranges: dict[str, ManagedRange]
    ) -> "WorkloadBuild":
        streams = [s for phase in phases for s in phase.streams]
        return cls(streams=streams, ranges=ranges, phases=phases)

    @property
    def total_accesses(self) -> int:
        return sum(len(s) for s in self.streams)


class Workload(abc.ABC):
    """Base class for page-level workload generators."""

    #: registry key and display name (paper Table I row label).
    name: str = "workload"

    @abc.abstractmethod
    def required_bytes(self) -> int:
        """Total managed bytes the workload will allocate."""

    @abc.abstractmethod
    def build(self, space: AddressSpace, rng: SimRng) -> WorkloadBuild:
        """Allocate ranges and emit warp streams."""

    # -- helpers for subclasses ---------------------------------------------------
    @staticmethod
    def pages_of_elements(
        rng_range: ManagedRange,
        element_indices: np.ndarray,
        element_bytes: int,
        page_size: int,
    ) -> np.ndarray:
        """Global pages touched by element indices (duplicates preserved).

        Consecutive accesses to the same page are collapsed to a single
        touch - a warp re-touching the page it just used never re-walks
        the TLB, and the driver could never observe the repetition.
        """
        if element_bytes <= 0:
            raise ConfigurationError("element_bytes must be positive")
        element_indices = np.asarray(element_indices, dtype=np.int64)
        pages = rng_range.start_page + (element_indices * element_bytes) // page_size
        if pages.size and (
            pages.min() < rng_range.start_page or pages.max() >= rng_range.end_page_aligned
        ):
            raise ConfigurationError(
                f"element accesses escape range {rng_range.name!r}"
            )
        return _dedup_consecutive(pages)

    @staticmethod
    def make_stream(
        stream_id: int,
        pages: np.ndarray,
        writes: Optional[np.ndarray] = None,
        flops: float = 0.0,
    ) -> WarpStream:
        """Create a stream; ``flops`` is the stream's total compute work."""
        per_access = flops / max(len(pages), 1) if flops else 0.0
        return WarpStream(stream_id, pages, writes, flops_per_access=per_access)

    def describe(self) -> str:
        return f"{self.name} ({human_size(self.required_bytes())} managed)"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"


def _dedup_consecutive(pages: np.ndarray) -> np.ndarray:
    """Collapse runs of identical consecutive page touches."""
    if pages.size <= 1:
        return pages
    keep = np.empty(pages.shape, dtype=bool)
    keep[0] = True
    np.not_equal(pages[1:], pages[:-1], out=keep[1:])
    return pages[keep]


def chunk_indices(n: int, chunk: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into ``[start, stop)`` chunks of size ``chunk``."""
    if chunk <= 0:
        raise ConfigurationError("chunk must be positive")
    return [(i, min(i + chunk, n)) for i in range(0, n, chunk)]
