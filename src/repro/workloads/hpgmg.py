"""HPGMG: geometric multigrid V-cycles.

HPGMG-FV (Section III-B, Sakharnykh's GPU port) smooths on a hierarchy
of grid levels, restricting down to a coarse level and interpolating
back up.  The GPU port processes each level as a collection of *boxes*
whose launch order is effectively arbitrary, and the coarse levels are
small and scattered - which is why the paper observes that "the hpgmg
benchmark [shows] portions that mimic the random access pattern"
(Section IV-B) and why it has the *lowest* fault reduction in Table I
(64.06%): scattered small-box faults never saturate VABlock density.

Structure reproduced:

* one managed range per multigrid level (sizes shrinking by 4x in 2-D),
* V-cycles: fine -> coarse (smooth + restrict reads fine, writes coarse)
  then coarse -> fine (interpolate reads coarse, writes fine),
* per-level box streams in a shuffled order, with the shuffle strength
  growing on coarser levels.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.gpu.warp import WarpStream
from repro.mem.address_space import AddressSpace
from repro.sim.rng import SimRng
from repro.units import bytes_to_pages
from repro.workloads.base import Workload, WorkloadBuild, chunk_indices

_F64 = 8


class HpgmgWorkload(Workload):
    """Multigrid V-cycles over a level hierarchy of managed grids."""

    name = "hpgmg"

    def __init__(
        self,
        fine_n: int = 1024,
        levels: int = 4,
        v_cycles: int = 2,
        box_pages: int = 8,
    ) -> None:
        if fine_n <= 0 or levels < 2 or v_cycles < 1 or box_pages < 1:
            raise ConfigurationError("invalid HPGMG parameters")
        if fine_n % (2 ** (levels - 1)):
            raise ConfigurationError("fine_n must be divisible by 2**(levels-1)")
        self.fine_n = fine_n
        self.levels = levels
        self.v_cycles = v_cycles
        self.box_pages = box_pages

    def _level_bytes(self, level: int) -> int:
        n = self.fine_n >> level
        return max(n * n * _F64, _F64)

    def required_bytes(self) -> int:
        return sum(self._level_bytes(lv) for lv in range(self.levels))

    def build(self, space: AddressSpace, rng: SimRng) -> WorkloadBuild:
        grids = [
            space.malloc_managed(self._level_bytes(lv), name=f"level{lv}")
            for lv in range(self.levels)
        ]
        level_pages = [bytes_to_pages(self._level_bytes(lv)) for lv in range(self.levels)]
        wl_rng = rng.fork(self.name)

        streams: list[WarpStream] = []
        sid = 0

        def emit_level_sweep(level: int, write: bool, read_level: int | None) -> None:
            """Streams sweeping a level's boxes in shuffled order.

            ``read_level`` adds the corresponding (coarser/finer) region
            of another level to each box stream, modelling restriction/
            interpolation's two-level touch.
            """
            nonlocal sid
            grid = grids[level]
            npages = level_pages[level]
            boxes = chunk_indices(npages, self.box_pages)
            # coarse levels launch boxes in near-arbitrary order
            strength = 0.1 + 0.25 * level
            order = wl_rng.jitter_order(len(boxes), strength=strength)
            for bi in order:
                lo, hi = boxes[int(bi)]
                own = grid.start_page + np.arange(lo, hi, dtype=np.int64)
                parts = [own]
                if read_level is not None:
                    other = grids[read_level]
                    scale = level_pages[read_level] / max(npages, 1)
                    olo = int(lo * scale)
                    ohi = max(olo + 1, int(hi * scale))
                    ohi = min(ohi, level_pages[read_level])
                    parts.append(
                        other.start_page + np.arange(olo, ohi, dtype=np.int64)
                    )
                pages = np.concatenate(parts)
                writes = np.zeros(pages.shape, dtype=bool)
                if write:
                    writes[: own.size] = True
                streams.append(self.make_stream(sid, pages, writes))
                sid += 1

        for _ in range(self.v_cycles):
            # down sweep: smooth on each level, restrict into the coarser
            for lv in range(self.levels - 1):
                emit_level_sweep(lv, write=True, read_level=None)  # smooth
                emit_level_sweep(lv + 1, write=True, read_level=lv)  # restrict
            # coarse solve
            emit_level_sweep(self.levels - 1, write=True, read_level=None)
            # up sweep: interpolate back and smooth
            for lv in range(self.levels - 2, -1, -1):
                emit_level_sweep(lv, write=True, read_level=lv + 1)  # interp
                emit_level_sweep(lv, write=True, read_level=None)  # smooth
        return WorkloadBuild(
            streams=streams,
            ranges={f"level{lv}": g for lv, g in enumerate(grids)},
        )
