"""The paper's two synthetic page-touch kernels (Section III-C).

* **Regular access** - "each thread accesses exactly one page
  corresponding to the thread's global ID", so access is regular within
  a warp and block; as a fault stream it appears mostly ascending with
  scheduler jitter (Fig. 7 top-left).
* **Random access** - "each thread accesses a single, random, unique
  page from the global buffer": a global permutation of the pages.

Both are single-allocation kernels; each warp stream covers
``pages_per_stream`` thread accesses (default one page per stream, the
paper's one-page-per-thread structure at warp granularity).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.gpu.warp import WarpStream
from repro.mem.address_space import AddressSpace
from repro.sim.rng import SimRng
from repro.workloads.base import Workload, WorkloadBuild, chunk_indices


class _PageTouch(Workload):
    """Shared scaffolding for the two synthetic kernels."""

    def __init__(
        self,
        data_bytes: int,
        pages_per_stream: int = 1,
        write: bool = True,
    ) -> None:
        if data_bytes <= 0:
            raise ConfigurationError("data_bytes must be positive")
        if pages_per_stream <= 0:
            raise ConfigurationError("pages_per_stream must be positive")
        self.data_bytes = data_bytes
        self.pages_per_stream = pages_per_stream
        self.write = write

    def required_bytes(self) -> int:
        return self.data_bytes

    def _page_order(self, npages: int, rng: SimRng) -> np.ndarray:
        raise NotImplementedError

    def build(self, space: AddressSpace, rng: SimRng) -> WorkloadBuild:
        buf = space.malloc_managed(self.data_bytes, name="buffer")
        order = self._page_order(buf.npages, rng.fork(self.name))
        pages = buf.start_page + order
        streams: list[WarpStream] = []
        for sid, (lo, hi) in enumerate(chunk_indices(len(pages), self.pages_per_stream)):
            chunk = pages[lo:hi]
            writes = np.full(chunk.shape, self.write, dtype=bool) if self.write else None
            streams.append(self.make_stream(sid, chunk, writes))
        return WorkloadBuild(streams=streams, ranges={"buffer": buf})


class RegularAccess(_PageTouch):
    """Thread *i* touches page *i*: the regular page-touch kernel."""

    name = "regular"

    def _page_order(self, npages: int, rng: SimRng) -> np.ndarray:
        return np.arange(npages, dtype=np.int64)


class RandomAccess(_PageTouch):
    """Thread *i* touches a unique random page: the random kernel."""

    name = "random"

    def _page_order(self, npages: int, rng: SimRng) -> np.ndarray:
        return rng.permutation(npages).astype(np.int64)
