"""Page-level workload generators for the paper's eight benchmarks.

Section III-B evaluates: two synthetic kernels (regular and random
page-touch), cuBLAS SGEMM, STREAM (triad only), TeaLeaf, HPGMG, forward
and inverse cuFFT, and a cuSparse dense-to-sparse conversion plus SpMM.

The UVM driver only ever observes the *page fault stream* - the paper
itself analyzes workloads purely at page granularity (Fig. 7) - so each
generator reproduces its application's page-granularity access structure:
which ranges exist, in what order pages are touched, what is re-used,
what is written, and what ordering dependencies constrain the faults.
"""

from repro.workloads.base import Workload, WorkloadBuild
from repro.workloads.synthetic import RandomAccess, RegularAccess
from repro.workloads.sgemm import SgemmWorkload
from repro.workloads.stream_triad import StreamTriadWorkload
from repro.workloads.fft import CufftWorkload
from repro.workloads.tealeaf import TealeafWorkload
from repro.workloads.hpgmg import HpgmgWorkload
from repro.workloads.cusparse import CusparseWorkload
from repro.workloads.graph import BfsWorkload
from repro.workloads.registry import PAPER_WORKLOADS, make_workload, workload_names

__all__ = [
    "Workload",
    "WorkloadBuild",
    "RegularAccess",
    "RandomAccess",
    "SgemmWorkload",
    "StreamTriadWorkload",
    "CufftWorkload",
    "TealeafWorkload",
    "HpgmgWorkload",
    "CusparseWorkload",
    "BfsWorkload",
    "PAPER_WORKLOADS",
    "make_workload",
    "workload_names",
]
