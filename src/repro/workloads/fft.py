"""cuFFT-style forward + inverse FFT page-access workload.

An out-of-place complex-to-complex FFT pair (Section III-B runs "forward
and inverse cuFFT").  Large 1-D FFTs are executed as a small number of
batched passes over the signal: each pass streams the whole buffer, with
early passes unit-stride and later passes visiting butterfly groups whose
*page-level* order is a strided/bit-reversal-flavoured permutation.

What matters to the UVM driver is reproduced:

* two buffers (input and output of the out-of-place transform),
* a few full sweeps per direction (so the total fault count is small
  relative to the page-touch kernels - cuFFT has by far the fewest
  faults in Table I),
* sequential sweeps interleaved with strided ones, giving the prefetcher
  dense VABlock saturation on some passes and scattered single faults on
  others (Fig. 7's cuFFT panel shows banded sweeps).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.gpu.warp import WarpStream
from repro.mem.address_space import AddressSpace
from repro.sim.rng import SimRng
from repro.units import bytes_to_pages
from repro.workloads.base import Workload, WorkloadBuild, chunk_indices


def _bit_reverse_permutation(n: int) -> np.ndarray:
    """Bit-reversal order of ``range(n)`` for power-of-two ``n``."""
    bits = max(1, (n - 1).bit_length())
    idx = np.arange(n, dtype=np.int64)
    rev = np.zeros_like(idx)
    work = idx.copy()
    for _ in range(bits):
        rev = (rev << 1) | (work & 1)
        work >>= 1
    return rev[rev < n] if (1 << bits) != n else rev


class CufftWorkload(Workload):
    """Forward + inverse out-of-place FFT over two managed buffers."""

    name = "cufft"

    def __init__(
        self,
        signal_bytes: int = 32 << 20,
        passes_per_direction: int = 2,
        pages_per_stream: int = 16,
    ) -> None:
        if signal_bytes <= 0:
            raise ConfigurationError("signal_bytes must be positive")
        if passes_per_direction < 1:
            raise ConfigurationError("need at least one pass per direction")
        if pages_per_stream <= 0:
            raise ConfigurationError("pages_per_stream must be positive")
        self.signal_bytes = signal_bytes
        self.passes_per_direction = passes_per_direction
        self.pages_per_stream = pages_per_stream

    def required_bytes(self) -> int:
        return 2 * self.signal_bytes

    def build(self, space: AddressSpace, rng: SimRng) -> WorkloadBuild:
        src = space.malloc_managed(self.signal_bytes, name="signal")
        dst = space.malloc_managed(self.signal_bytes, name="spectrum")
        npages = bytes_to_pages(self.signal_bytes)
        rev = _bit_reverse_permutation(1 << (npages - 1).bit_length())
        rev = rev[rev < npages]

        streams: list[WarpStream] = []
        sid = 0
        # forward: read src, write dst; inverse: read dst, write src.
        directions = [(src, dst), (dst, src)]
        for read_rng, write_rng in directions:
            for p in range(self.passes_per_direction):
                order = np.arange(npages, dtype=np.int64) if p % 2 == 0 else rev
                read_pages = read_rng.start_page + order
                write_pages = write_rng.start_page + order
                for lo, hi in chunk_indices(npages, self.pages_per_stream):
                    # butterfly: read a group, then write the transform.
                    pages = np.concatenate([read_pages[lo:hi], write_pages[lo:hi]])
                    writes = np.zeros(pages.shape, dtype=bool)
                    writes[hi - lo :] = True
                    streams.append(self.make_stream(sid, pages, writes))
                    sid += 1
        return WorkloadBuild(streams=streams, ranges={"signal": src, "spectrum": dst})
