"""TeaLeaf: implicit heat-conduction solved with CG over a 5-point stencil.

TeaLeaf (UK-MAC's CUDA port, Section III-B) solves a 2-D diffusion
problem; each conjugate-gradient iteration sweeps several field arrays
(solution u, search direction p, residual r, and the matrix-free
operator's output w) with nearest-neighbour stencil reads.

Page-level structure reproduced here:

* four equally sized managed grids,
* per CG iteration, row-band streams that read a band of ``p`` plus its
  halo rows (the 5-point stencil) and the matching bands of ``u``/``r``,
  writing ``w`` and updating ``u``/``r`` - so each iteration braids all
  four ranges in fault order,
* later iterations mostly re-touch resident data (undersubscribed runs
  fault only on the leading sweeps), producing the moderate fault
  reduction the paper records for TeaLeaf (66.97%, Table I): the
  interleaving across four ranges spreads faults across VABlocks,
  building density slowly.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.gpu.warp import WarpStream
from repro.mem.address_space import AddressSpace
from repro.mem.address_space import ManagedRange
from repro.sim.rng import SimRng
from repro.workloads.base import Workload, WorkloadBuild

_F64 = 8


class TealeafWorkload(Workload):
    """CG iterations over a square 2-D grid with 5-point stencil sweeps."""

    name = "tealeaf"

    def __init__(
        self,
        n: int = 1024,
        iterations: int = 3,
        rows_per_stream: int = 8,
        host_check: bool = False,
    ) -> None:
        if n <= 2:
            raise ConfigurationError("grid must be larger than the stencil halo")
        if iterations < 1 or rows_per_stream < 1:
            raise ConfigurationError("iterations and rows_per_stream must be >= 1")
        self.n = n
        self.iterations = iterations
        self.rows_per_stream = rows_per_stream
        #: model the naive-UVM-port convergence check: between CG
        #: iterations the *host* reads a sample of the residual, CPU
        #: faults migrate those pages back, and the next iteration
        #: re-faults them on the GPU - the ping-pong that keeps real
        #: iterative solvers' fault counts high (and their Table I
        #: prefetch coverage low).
        self.host_check = host_check

    def required_bytes(self) -> int:
        return 4 * self.n * self.n * _F64

    def _row_pages(
        self, rng_range: ManagedRange, row_lo: int, row_hi: int, page_size: int
    ) -> np.ndarray:
        """Pages of grid rows ``[row_lo, row_hi)`` (rows are contiguous)."""
        row_lo = max(row_lo, 0)
        row_hi = min(row_hi, self.n)
        first_byte = row_lo * self.n * _F64
        last_byte = row_hi * self.n * _F64 - 1
        lo_page = rng_range.start_page + first_byte // page_size
        hi_page = rng_range.start_page + last_byte // page_size
        return np.arange(lo_page, hi_page + 1, dtype=np.int64)

    def build(self, space: AddressSpace, rng: SimRng) -> WorkloadBuild:
        nbytes = self.n * self.n * _F64
        u = space.malloc_managed(nbytes, name="u")
        p = space.malloc_managed(nbytes, name="p")
        r = space.malloc_managed(nbytes, name="r")
        w = space.malloc_managed(nbytes, name="w")
        page_size = space.page_size

        from repro.workloads.base import HostAccess, KernelPhase

        phases: list[KernelPhase] = []
        sid = 0
        for iteration in range(self.iterations):
            streams: list[WarpStream] = []
            for row in range(0, self.n, self.rows_per_stream):
                hi = min(row + self.rows_per_stream, self.n)
                # stencil reads p with a one-row halo on each side
                p_pages = self._row_pages(p, row - 1, hi + 1, page_size)
                u_pages = self._row_pages(u, row, hi, page_size)
                r_pages = self._row_pages(r, row, hi, page_size)
                w_pages = self._row_pages(w, row, hi, page_size)
                pages = np.concatenate([p_pages, u_pages, r_pages, w_pages])
                writes = np.zeros(pages.shape, dtype=bool)
                # w is written by the operator; u and r are updated.
                writes[p_pages.size :] = True
                streams.append(self.make_stream(sid, pages, writes))
                sid += 1
            host_before = None
            if self.host_check and iteration > 0:
                # The host samples the residual for the convergence norm.
                # One page per 64 KB big page is the prefetcher's worst
                # case: each re-fault's big-page upgrade covers only
                # already-resident neighbours, so every migrated page
                # costs one uncoverable fault next iteration.
                host_before = HostAccess(
                    pages=r.pages()[:: space.pages_per_big_page], writes=False
                )
            phases.append(KernelPhase(streams=streams, host_before=host_before))
        ranges = {"u": u, "p": p, "r": r, "w": w}
        if self.iterations == 1 and not self.host_check:
            return WorkloadBuild(streams=phases[0].streams, ranges=ranges)
        return WorkloadBuild.from_phases(phases, ranges)
