"""Tiled SGEMM (cuBLAS-style) page-access workload.

``C = A @ B`` with three managed ranges of ``n*n`` float32 each
(Table II: "problem size is n for matrices A, B, C where size = n^2").
The access pattern is a classic tiled GEMM: thread block (bi, bj) walks
the K dimension in ``tile`` steps, touching an A row-band tile and a
B column-band tile per step and writing its C tile at the end.

The properties the paper leans on are reproduced:

* *heavy data reuse* invisible to the driver (Section IV-B: the pattern
  "does not show the heavy data reuse taking place on the GPU") - A
  row-bands are shared by every block in a grid row and B column-bands
  by every grid column, so resident data is re-touched without faulting,
* under oversubscription the LRU never sees those re-touches, evicting
  hot bands that immediately re-fault (Fig. 8's evict-then-refault), and
  the eviction count scales as Table II shows,
* FLOP count ``2*n^3`` backs the Fig. 10 compute-rate axis.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.gpu.warp import WarpStream
from repro.mem.address_space import AddressSpace
from repro.mem.address_space import ManagedRange
from repro.sim.rng import SimRng
from repro.workloads.base import Workload, WorkloadBuild

_F32 = 4  # bytes per element


class SgemmWorkload(Workload):
    """Tiled dense matrix multiply over managed A, B, C."""

    name = "sgemm"

    def __init__(self, n: int = 2048, tile: int = 128) -> None:
        if n <= 0 or tile <= 0:
            raise ConfigurationError("n and tile must be positive")
        if n % tile:
            raise ConfigurationError(f"tile {tile} must divide n {n}")
        self.n = n
        self.tile = tile

    def required_bytes(self) -> int:
        return 3 * self.n * self.n * _F32

    @property
    def flops(self) -> int:
        """FLOPs of the multiply (Fig. 10's compute-rate numerator)."""
        return 2 * self.n**3

    def _band_pages(
        self,
        rng_range: ManagedRange,
        rows: np.ndarray,
        col_lo: int,
        col_hi: int,
        page_size: int,
    ) -> np.ndarray:
        """Pages touched by a ``rows x [col_lo, col_hi)`` tile.

        A tile row segment spans at most a few pages; sampling its first
        and last element and deduplicating captures every page touched.
        """
        first = rows * self.n + col_lo
        last = rows * self.n + (col_hi - 1)
        elems = np.empty(rows.size * 2, dtype=np.int64)
        elems[0::2] = first
        elems[1::2] = last
        return self.pages_of_elements(rng_range, elems, _F32, page_size)

    def build(self, space: AddressSpace, rng: SimRng) -> WorkloadBuild:
        n, tile = self.n, self.tile
        nbytes = n * n * _F32
        a = space.malloc_managed(nbytes, name="A")
        b = space.malloc_managed(nbytes, name="B")
        c = space.malloc_managed(nbytes, name="C")
        page_size = space.page_size

        grid = n // tile
        streams: list[WarpStream] = []
        sid = 0
        k_steps = range(0, n, tile)
        for bi in range(grid):
            a_rows = np.arange(bi * tile, (bi + 1) * tile, dtype=np.int64)
            for bj in range(grid):
                parts: list[np.ndarray] = []
                for kk in k_steps:
                    b_rows = np.arange(kk, kk + tile, dtype=np.int64)
                    parts.append(self._band_pages(a, a_rows, kk, kk + tile, page_size))
                    parts.append(
                        self._band_pages(b, b_rows, bj * tile, (bj + 1) * tile, page_size)
                    )
                c_pages = self._band_pages(c, a_rows, bj * tile, (bj + 1) * tile, page_size)
                read_pages = np.concatenate(parts) if parts else np.empty(0, np.int64)
                pages = np.concatenate([read_pages, c_pages])
                writes = np.zeros(pages.shape, dtype=bool)
                writes[read_pages.size :] = True
                block_flops = 2 * tile * tile * n  # tile^2 outputs, n-MACs each
                streams.append(self.make_stream(sid, pages, writes, flops=block_flops))
                sid += 1
        return WorkloadBuild(streams=streams, ranges={"A": a, "B": b, "C": c})
