"""BFS over a synthetic scale-free graph (the out-of-core graph case).

The paper's related work highlights EMOGI [13]: "efficient memory-access
for out-of-memory graph-traversal in GPUs" - the canonical workload
where UVM's 2 MB-granule migration loses badly, because each frontier
vertex touches a short, data-dependent adjacency segment scattered
across an edge array far larger than GPU memory.

Structure reproduced at page level:

* CSR-style ranges: ``offsets`` (per-vertex), ``edges`` (adjacency
  lists), ``status`` (visited flags / frontier),
* BFS levels run as separate kernels (level barriers): each level's
  streams read their frontier slice of ``offsets``/``status``
  sequentially and then dereference *scattered* ``edges`` segments whose
  placement follows a heavy-tailed degree distribution,
* frontier sizes follow the classic BFS ramp (explode then collapse),
* optionally the host manages the frontier between levels
  (``host_frontier=True``), touching ``status`` - the naive-port
  ping-pong.

Marking ``edges`` as ``MemAdvise.PINNED_HOST`` (zero-copy) is the
EMOGI remedy; the memadvise ablation quantifies it.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.gpu.warp import WarpStream
from repro.mem.address_space import AddressSpace
from repro.mem.advise import MemAdvise
from repro.sim.rng import SimRng
from repro.units import bytes_to_pages
from repro.workloads.base import (
    HostAccess,
    KernelPhase,
    Workload,
    WorkloadBuild,
    chunk_indices,
)

_I64 = 8
_I32 = 4


class BfsWorkload(Workload):
    """Level-synchronous BFS with scattered adjacency dereferences."""

    name = "bfs"

    def __init__(
        self,
        n_vertices: int = 1 << 16,
        avg_degree: int = 16,
        levels: int = 4,
        vertices_per_stream: int = 512,
        host_frontier: bool = False,
        pin_edges: bool = False,
    ) -> None:
        if n_vertices <= 0 or avg_degree <= 0 or levels < 1:
            raise ConfigurationError("invalid BFS parameters")
        if vertices_per_stream < 1:
            raise ConfigurationError("vertices_per_stream must be >= 1")
        self.n_vertices = n_vertices
        self.avg_degree = avg_degree
        self.levels = levels
        self.vertices_per_stream = vertices_per_stream
        self.host_frontier = host_frontier
        #: apply the EMOGI remedy: zero-copy map the edge array.
        self.pin_edges = pin_edges
        self.n_edges = n_vertices * avg_degree

    def required_bytes(self) -> int:
        offsets = (self.n_vertices + 1) * _I64
        edges = self.n_edges * _I64
        status = self.n_vertices * _I32
        return offsets + edges + status

    def _frontier_sizes(self) -> list[int]:
        """The BFS ramp: frontier explodes then collapses."""
        peak_level = max(1, self.levels // 2)
        sizes = []
        for lv in range(self.levels):
            scale = 2.0 ** (-abs(lv - peak_level))
            sizes.append(max(64, int(self.n_vertices * 0.5 * scale)))
        return sizes

    def build(self, space: AddressSpace, rng: SimRng) -> WorkloadBuild:
        offsets = space.malloc_managed((self.n_vertices + 1) * _I64, name="offsets")
        edges = space.malloc_managed(self.n_edges * _I64, name="edges")
        status = space.malloc_managed(self.n_vertices * _I32, name="status")
        if self.pin_edges:
            space.mem_advise("edges", MemAdvise.PINNED_HOST)
        page_size = space.page_size
        wl_rng = rng.fork(self.name)
        gen = wl_rng.generator

        edge_pages_total = bytes_to_pages(self.n_edges * _I64)
        phases: list[KernelPhase] = []
        sid = 0
        for level, frontier_size in enumerate(self._frontier_sizes()):
            frontier = np.sort(gen.choice(self.n_vertices, size=frontier_size, replace=False))
            streams: list[WarpStream] = []
            for lo, hi in chunk_indices(frontier_size, self.vertices_per_stream):
                verts = frontier[lo:hi]
                # sequential-ish reads of offsets + status for the chunk
                off_pages = self.pages_of_elements(offsets, verts, _I64, page_size)
                st_pages = self.pages_of_elements(status, verts, _I32, page_size)
                # scattered adjacency segments: heavy-tailed lengths at
                # data-dependent positions across the whole edge array
                deg = np.minimum(
                    gen.pareto(1.5, size=verts.size).astype(np.int64) + 1, 512
                )
                seg_pages = gen.integers(0, edge_pages_total, size=verts.size)
                parts = [off_pages, st_pages]
                span_pages = np.maximum(deg * _I64 // page_size, 0)
                for seg, span in zip(seg_pages, span_pages):
                    stop = min(int(seg) + int(span) + 1, edge_pages_total)
                    parts.append(
                        edges.start_page + np.arange(int(seg), stop, dtype=np.int64)
                    )
                # status updates for newly discovered vertices
                upd_pages = self.pages_of_elements(status, verts, _I32, page_size)
                pages = np.concatenate(parts + [upd_pages])
                writes = np.zeros(pages.shape, dtype=bool)
                writes[pages.size - upd_pages.size :] = True
                streams.append(self.make_stream(sid, pages, writes))
                sid += 1
            host_before = None
            if self.host_frontier and level > 0:
                # naive port: the host compacts the frontier each level
                host_before = HostAccess(pages=status.pages(), writes=True)
            phases.append(KernelPhase(streams=streams, host_before=host_before))
        ranges = {"offsets": offsets, "edges": edges, "status": status}
        return WorkloadBuild.from_phases(phases, ranges)
