"""Name-based workload construction.

Experiments refer to workloads by the paper's Table I row labels.  The
registry provides default-parameter factories *scaled by a target data
size*: each factory takes the approximate number of managed bytes the
run should allocate and picks its shape parameters accordingly, so
sweeps (Fig. 1/3/9) and fixed-size table reproductions share one code
path.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.errors import ConfigurationError
from repro.workloads.base import Workload
from repro.workloads.cusparse import CusparseWorkload
from repro.workloads.fft import CufftWorkload
from repro.workloads.hpgmg import HpgmgWorkload
from repro.workloads.sgemm import SgemmWorkload
from repro.workloads.stream_triad import StreamTriadWorkload
from repro.workloads.synthetic import RandomAccess, RegularAccess
from repro.workloads.tealeaf import TealeafWorkload

_F32 = 4
_F64 = 8


def _sgemm_for_bytes(data_bytes: int) -> SgemmWorkload:
    """SGEMM whose 3 n^2 float32 matrices total about ``data_bytes``."""
    tile = 128
    n = int(math.sqrt(data_bytes / (3 * _F32)))
    n = max(tile, (n // tile) * tile)
    return SgemmWorkload(n=n, tile=tile)


def _tealeaf_for_bytes(data_bytes: int) -> TealeafWorkload:
    n = int(math.sqrt(data_bytes / (4 * _F64)))
    n = max(64, (n // 64) * 64)
    # the real UVM port checks convergence on the host between CG
    # iterations; the resulting CPU-fault ping-pong is part of why the
    # paper's TeaLeaf coverage is comparatively low (Table I)
    return TealeafWorkload(n=n, host_check=True)


def _hpgmg_for_bytes(data_bytes: int) -> HpgmgWorkload:
    # fine level dominates: sum over 4 levels ~ 1.33 * fine bytes.
    fine_n = int(math.sqrt(data_bytes / (1.34 * _F64)))
    fine_n = max(64, (fine_n // 8) * 8)
    return HpgmgWorkload(fine_n=fine_n)


def _cusparse_for_bytes(data_bytes: int) -> CusparseWorkload:
    # dense matrix dominates the footprint.
    n = int(math.sqrt(0.8 * data_bytes / _F32))
    n = max(256, (n // 128) * 128)
    return CusparseWorkload(n=n)


def _bfs_for_bytes(data_bytes: int) -> "Workload":
    from repro.workloads.graph import BfsWorkload

    # edges dominate: V*(degree*8 + 12) bytes
    degree = 16
    n_vertices = max(1024, int(data_bytes / (degree * 8 + 12)))
    n_vertices = 1 << (n_vertices.bit_length() - 1)  # power of two
    return BfsWorkload(n_vertices=n_vertices, avg_degree=degree)


#: Table I's eight rows, in the paper's order.
PAPER_WORKLOADS: dict[str, Callable[[int], Workload]] = {
    "regular": lambda b: RegularAccess(b),
    "random": lambda b: RandomAccess(b),
    "sgemm": _sgemm_for_bytes,
    "stream": lambda b: StreamTriadWorkload(total_bytes=b),
    "cufft": lambda b: CufftWorkload(signal_bytes=b // 2),
    "tealeaf": _tealeaf_for_bytes,
    "hpgmg": _hpgmg_for_bytes,
    "cusparse": _cusparse_for_bytes,
}

#: Additional workloads beyond the paper's Table I (kept out of
#: `workload_names()` so the table reproductions keep the paper's rows).
EXTRA_WORKLOADS: dict[str, Callable[[int], Workload]] = {
    "bfs": _bfs_for_bytes,
}


def workload_names() -> list[str]:
    """The benchmark names, in Table I order."""
    return list(PAPER_WORKLOADS)


def all_workload_names() -> list[str]:
    """Table I rows plus the extra (non-paper) workloads."""
    return list(PAPER_WORKLOADS) + list(EXTRA_WORKLOADS)


def make_workload(name: str, data_bytes: int) -> Workload:
    """Build a workload scaled to roughly ``data_bytes``."""
    factory = PAPER_WORKLOADS.get(name) or EXTRA_WORKLOADS.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown workload {name!r}; choose from {all_workload_names()}"
        )
    if data_bytes <= 0:
        raise ConfigurationError("data_bytes must be positive")
    return factory(data_bytes)
