"""STREAM triad: ``a[i] = b[i] + scalar * c[i]`` (triad-only, Section III-B).

Three equal managed vectors.  Each warp stream covers one page-sized
chunk of the index space and must read its ``b`` and ``c`` pages before
writing its ``a`` page - the "three-vector access pattern [that] enforces
a page-access dependency, enforcing a much more strict ordering of page
fault handling than the regular access pattern" (Section IV-B): a
stream's ``a`` fault can only appear after its ``b`` and ``c`` faults
were serviced, interleaving the three ranges tightly in fault order
(the braided bands of Fig. 7).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.gpu.warp import WarpStream
from repro.mem.address_space import AddressSpace
from repro.sim.rng import SimRng
from repro.workloads.base import Workload, WorkloadBuild
from repro.units import bytes_to_pages

_F64 = 8  # STREAM uses doubles


class StreamTriadWorkload(Workload):
    """GPU-STREAM triad over three managed vectors."""

    name = "stream"

    def __init__(self, total_bytes: int = 48 << 20) -> None:
        if total_bytes < 3 * _F64:
            raise ConfigurationError("total_bytes too small for three vectors")
        self.total_bytes = total_bytes

    def required_bytes(self) -> int:
        return 3 * (self.total_bytes // 3)

    def build(self, space: AddressSpace, rng: SimRng) -> WorkloadBuild:
        vec_bytes = self.total_bytes // 3
        a = space.malloc_managed(vec_bytes, name="a")
        b = space.malloc_managed(vec_bytes, name="b")
        c = space.malloc_managed(vec_bytes, name="c")
        npages = bytes_to_pages(vec_bytes)

        streams: list[WarpStream] = []
        for i in range(npages):
            pages = np.array(
                [b.start_page + i, c.start_page + i, a.start_page + i],
                dtype=np.int64,
            )
            writes = np.array([False, False, True])
            streams.append(self.make_stream(i, pages, writes))
        return WorkloadBuild(streams=streams, ranges={"a": a, "b": b, "c": c})
