"""Forward taint propagation over the project call graph.

The engine answers one question for a configurable :class:`TaintSpec`:
*which sink positions can a value carrying a given taint label reach?*
It is summary-based and context-insensitive:

1. every function gets a :class:`Summary` - the labels its return value
   can carry, which parameters flow to the return, and which parameters
   reach a sink *inside* the function (transitively);
2. summaries are computed to a fixpoint in bottom-up call order, so a
   wall-clock read three calls below a seed assignment still surfaces;
3. a final pass re-walks every function with the stable summaries and
   emits :class:`Flow` records wherever concretely-tainted values meet
   a sink.

The abstract domain is a set of string labels per expression.  Branches
merge by union, loop bodies run twice (loop-carried taint), and unknown
calls optionally propagate the union of their argument taints - sound
for "does nondeterminism reach state" questions, quiet enough to hold
the real tree clean.  Heap state is *not* modeled: attribute stores do
not taint later attribute loads.  That is a deliberate precision choice
(see docs/checks.md); the planted fixtures pin the flows that matter.

Synthetic ``param:<i>`` labels seed parameters during summary
computation; they never appear in reported flows.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.checks.graph import (
    CallSite,
    FunctionInfo,
    ProjectGraph,
    dotted_chain,
)

Labels = frozenset[str]
EMPTY: Labels = frozenset()

_PARAM_PREFIX = "param:"


def _param_label(index: int) -> str:
    return f"{_PARAM_PREFIX}{index}"


def concrete(labels: Labels) -> Labels:
    """Labels with the synthetic parameter markers stripped."""
    return frozenset(l for l in labels if not l.startswith(_PARAM_PREFIX))


def _params_of(labels: Labels) -> frozenset[int]:
    return frozenset(
        int(l[len(_PARAM_PREFIX):]) for l in labels if l.startswith(_PARAM_PREFIX)
    )


def match_dotted(pattern: str, name: Optional[str]) -> bool:
    """Exact dotted match, or prefix match for ``pkg.mod.*`` patterns."""
    if name is None:
        return False
    if pattern.endswith(".*"):
        stem = pattern[:-2]
        return name == stem or name.startswith(stem + ".")
    return name == pattern


@dataclass(frozen=True)
class CallSink:
    """A call whose (selected) arguments are taint sinks.

    Matching is by resolved dotted callee (``callee``), by trailing
    attribute name (``attr``) and optionally a dotted-receiver suffix
    (``receiver``), e.g. ``attr="append", receiver="journal"`` matches
    ``self.journal.append(...)`` and ``self._journal.append(...)``.
    ``args``/``kwargs`` select positions; None means every argument.
    """

    name: str
    callee: Optional[str] = None
    attr: Optional[str] = None
    attrs: tuple[str, ...] = ()
    receiver: Optional[str] = None
    args: Optional[tuple[int, ...]] = None
    kwargs: Optional[tuple[str, ...]] = None

    def matches(self, site: CallSite) -> bool:
        if self.callee is not None and match_dotted(self.callee, site.callee):
            return True
        names = self.attrs or ((self.attr,) if self.attr else ())
        if not names or site.attr not in names:
            # a bare-name call ``cache_key(x)`` should still match an
            # attr-style sink: compare the callee's last component too.
            if not (
                names
                and site.callee
                and site.callee.rsplit(".", 1)[-1] in names
                and self.receiver is None
            ):
                return False
        if self.receiver is not None:
            recv = site.receiver or ""
            last = recv.rsplit(".", 1)[-1]
            if self.receiver not in last:
                return False
        return True


@dataclass(frozen=True)
class AttrSink:
    """Attribute stores (``self.x = value``) in scoped paths are sinks."""

    name: str
    #: relpath prefixes where attribute stores count as state writes.
    scope: tuple[str, ...] = ()

    def matches(self, relpath: str) -> bool:
        return any(relpath.startswith(p) for p in self.scope) if self.scope else True


@dataclass
class TaintSpec:
    """Sources, sanitizers, and sinks for one analysis family."""

    #: dotted callee pattern -> label (``time.time`` -> ``wallclock``).
    call_sources: dict[str, str] = field(default_factory=dict)
    #: trailing attribute name -> label, for calls whose receiver we
    #: cannot resolve (``anything.hexdigest`` style).  Use sparingly.
    attr_sources: dict[str, str] = field(default_factory=dict)
    #: dotted name-load pattern -> label (``repro.units.PAGE_SIZE``).
    name_sources: dict[str, str] = field(default_factory=dict)
    #: callee pattern -> labels it strips (None = strips everything).
    sanitizers: dict[str, Optional[frozenset[str]]] = field(default_factory=dict)
    call_sinks: tuple[CallSink, ...] = ()
    attr_sinks: tuple[AttrSink, ...] = ()
    #: labels meaning "iterating this container is order-nondeterministic".
    unordered_labels: frozenset[str] = EMPTY
    #: label granted to a for-target iterating an unordered container.
    iter_order_label: Optional[str] = None
    #: label set() literals/constructors carry (feeds unordered_labels).
    set_literal_label: Optional[str] = None
    #: unknown calls propagate the union of their argument taints.
    propagate_unknown_calls: bool = True
    #: called per BinOp/Compare with (left, right, opname); returns the
    #: offending label set (reported as sink "mix") or None.
    mix: Optional[Callable[[Labels, Labels, str], Optional[Labels]]] = None
    #: BinOp result algebra (left, right, opname) -> labels; None means
    #: plain union.  Lets a units spec cancel ``bytes // bytes`` ratios.
    binop_result: Optional[Callable[[Labels, Labels, str], Labels]] = None
    #: keyword-argument laundering: (kwarg name, labels) -> labels kept.
    #: This is the *sanctioned-sink* hook: a wall-clock value passed as
    #: ``submitted_at=...`` is a record timestamp, not a leak.
    kwarg_launder: Optional[Callable[[str, Labels], Labels]] = None

    def source_for(self, site: CallSite) -> Labels:
        labels: set[str] = set()
        for pattern, label in self.call_sources.items():
            if match_dotted(pattern, site.callee):
                labels.add(label)
        if site.attr and site.attr in self.attr_sources:
            labels.add(self.attr_sources[site.attr])
        return frozenset(labels)

    def is_sanitizer(self, site: CallSite) -> bool:
        return any(
            match_dotted(p, site.callee)
            or (site.attr is not None and p == "." + site.attr)
            for p in self.sanitizers
        )

    def cleared(self, site: CallSite) -> Optional[frozenset[str]]:
        for pattern, labels in self.sanitizers.items():
            if match_dotted(pattern, site.callee) or (
                site.attr is not None and pattern == "." + site.attr
            ):
                return labels
        return None


@dataclass(frozen=True)
class Flow:
    """One tainted value reaching one sink."""

    sink: str
    labels: Labels
    function: str
    relpath: str
    lineno: int
    #: human detail: the attribute / callee the sink matched.
    detail: str = ""

    def key(self) -> tuple:
        return (self.sink, self.relpath, self.lineno, self.labels, self.detail)


@dataclass
class Summary:
    """Interprocedural behaviour of one function."""

    ret_labels: Labels = EMPTY
    ret_params: frozenset[int] = frozenset()
    #: parameter index -> sink names it (transitively) reaches.
    param_flows: dict[int, frozenset[str]] = field(default_factory=dict)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Summary)
            and self.ret_labels == other.ret_labels
            and self.ret_params == other.ret_params
            and self.param_flows == other.param_flows
        )


class TaintEngine:
    """Run one :class:`TaintSpec` over a :class:`ProjectGraph`."""

    MAX_ROUNDS = 12

    def __init__(self, graph: ProjectGraph, spec: TaintSpec) -> None:
        self.graph = graph
        self.spec = spec
        self.summaries: dict[str, Summary] = {}
        self._sites: dict[int, CallSite] = {}
        for fn in graph.functions.values():
            for site in fn.calls:
                self._sites[id(site.node)] = site

    def run(self) -> list[Flow]:
        order = self.graph.call_order()
        for qual in order:
            self.summaries[qual] = Summary()
        for _ in range(self.MAX_ROUNDS):
            changed = False
            for qual in order:
                fn = self.graph.functions[qual]
                analysis = _FunctionAnalysis(self, fn, seed_params=True)
                summary = analysis.run()
                if summary != self.summaries[qual]:
                    self.summaries[qual] = summary
                    changed = True
            if not changed:
                break
        flows: dict[tuple, Flow] = {}

        def emit(flow: Flow) -> None:
            flows.setdefault(flow.key(), flow)

        for qual in order:
            fn = self.graph.functions[qual]
            _FunctionAnalysis(self, fn, seed_params=False, emit=emit).run()
        return sorted(
            flows.values(), key=lambda f: (f.relpath, f.lineno, f.sink, f.detail)
        )

    def site(self, node: ast.Call) -> Optional[CallSite]:
        return self._sites.get(id(node))


class _FunctionAnalysis:
    """One abstract-interpretation pass over one function body."""

    def __init__(
        self,
        engine: TaintEngine,
        fn: FunctionInfo,
        seed_params: bool,
        emit: Optional[Callable[[Flow], None]] = None,
    ) -> None:
        self.engine = engine
        self.spec = engine.spec
        self.fn = fn
        self.emit = emit
        self.env: dict[str, Labels] = {}
        self.ret: Labels = EMPTY
        self.param_flows: dict[int, set[str]] = {}
        self.param_names = fn.param_names()
        if seed_params:
            for i, name in enumerate(self.param_names):
                self.env[name] = frozenset({_param_label(i)})

    # -- driving --------------------------------------------------------------
    def run(self) -> Summary:
        self._exec_block(self.fn.node.body, self.env)
        return Summary(
            ret_labels=concrete(self.ret),
            ret_params=_params_of(self.ret),
            param_flows={
                i: frozenset(sinks) for i, sinks in sorted(self.param_flows.items())
            },
        )

    def _flow(self, sink: str, labels: Labels, node: ast.AST, detail: str) -> None:
        hit = concrete(labels)
        if hit and self.emit is not None:
            self.emit(
                Flow(
                    sink=sink,
                    labels=hit,
                    function=self.fn.qualname,
                    relpath=self.fn.relpath,
                    lineno=getattr(node, "lineno", 0),
                    detail=detail,
                )
            )
        for index in _params_of(labels):
            self.param_flows.setdefault(index, set()).add(sink)

    # -- statements -----------------------------------------------------------
    def _exec_block(self, stmts: Iterable[ast.stmt], env: dict[str, Labels]) -> None:
        for stmt in stmts:
            self._exec(stmt, env)

    def _merge(self, env: dict[str, Labels], *branches: dict[str, Labels]) -> None:
        keys: set[str] = set(env)
        for branch in branches:
            keys |= set(branch)
        for key in keys:
            merged: Labels = env.get(key, EMPTY)
            for branch in branches:
                merged |= branch.get(key, EMPTY)
            env[key] = merged

    def _exec(self, stmt: ast.stmt, env: dict[str, Labels]) -> None:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._exec_assign(stmt, env)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.ret |= self._eval(stmt.value, env)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value, env)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test, env)
            body_env, else_env = dict(env), dict(env)
            self._exec_block(stmt.body, body_env)
            self._exec_block(stmt.orelse, else_env)
            self._merge(env, body_env, else_env)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_labels = self._eval(stmt.iter, env)
            target_labels = iter_labels
            if (
                self.spec.iter_order_label
                and iter_labels & self.spec.unordered_labels
            ):
                target_labels |= frozenset({self.spec.iter_order_label})
            body_env = dict(env)
            for _ in range(2):  # loop-carried taint needs a second pass
                self._bind(stmt.target, target_labels, body_env)
                self._exec_block(stmt.body, body_env)
            self._exec_block(stmt.orelse, body_env)
            self._merge(env, body_env)
        elif isinstance(stmt, ast.While):
            body_env = dict(env)
            for _ in range(2):
                self._eval(stmt.test, body_env)
                self._exec_block(stmt.body, body_env)
            self._exec_block(stmt.orelse, body_env)
            self._merge(env, body_env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                labels = self._eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, labels, env)
            self._exec_block(stmt.body, env)
        elif isinstance(stmt, ast.Try):
            body_env = dict(env)
            self._exec_block(stmt.body, body_env)
            branch_envs = [body_env]
            for handler in stmt.handlers:
                handler_env = dict(env)
                self._exec_block(handler.body, handler_env)
                branch_envs.append(handler_env)
            self._merge(env, *branch_envs)
            self._exec_block(stmt.orelse, env)
            self._exec_block(stmt.finalbody, env)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for value in (getattr(stmt, "exc", None), getattr(stmt, "test", None),
                          getattr(stmt, "msg", None), getattr(stmt, "cause", None)):
                if value is not None:
                    self._eval(value, env)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        # nested defs/classes, import, pass, break, continue, global:
        # not executed - flows inside nested functions are out of scope.

    def _exec_assign(self, stmt: ast.stmt, env: dict[str, Labels]) -> None:
        if isinstance(stmt, ast.Assign):
            value, targets = stmt.value, stmt.targets
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is None:
                return
            value, targets = stmt.value, [stmt.target]
        else:  # AugAssign
            value, targets = stmt.value, [stmt.target]
        labels = self._eval(value, env)
        if isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Name):
            labels |= env.get(stmt.target.id, EMPTY)
        for target in targets:
            self._bind(target, labels, env, store_node=stmt)

    def _bind(
        self,
        target: ast.AST,
        labels: Labels,
        env: dict[str, Labels],
        store_node: Optional[ast.stmt] = None,
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = labels
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, labels, env, store_node)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, labels, env, store_node)
        elif isinstance(target, ast.Attribute):
            for sink in self.spec.attr_sinks:
                if sink.matches(self.fn.relpath):
                    self._flow(sink.name, labels, store_node or target, target.attr)
        elif isinstance(target, ast.Subscript):
            if isinstance(target.value, ast.Name):
                name = target.value.id
                env[name] = env.get(name, EMPTY) | labels

    # -- expressions ----------------------------------------------------------
    def _eval(self, node: ast.AST, env: dict[str, Labels]) -> Labels:
        spec = self.spec
        if isinstance(node, ast.Name):
            labels = env.get(node.id, EMPTY)
            if node.id not in env:
                labels |= self._name_source(node.id)
            return labels
        if isinstance(node, ast.Attribute):
            base = self._eval(node.value, env)
            chain = dotted_chain(node)
            if chain is not None and chain.split(".")[0] not in env:
                base |= self._name_source(chain)
            return base
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left, env)
            right = self._eval(node.right, env)
            self._check_mix(left, right, node.op, node)
            if spec.binop_result is not None:
                return spec.binop_result(
                    concrete(left), concrete(right), type(node.op).__name__
                ) | (left - concrete(left)) | (right - concrete(right))
            return left | right
        if isinstance(node, ast.Compare):
            left = self._eval(node.left, env)
            out = left
            for op, comparator in zip(node.ops, node.comparators):
                right = self._eval(comparator, env)
                self._check_mix(left, right, op, node)
                out |= right
                left = right
            return out
        if isinstance(node, ast.BoolOp):
            out: Labels = EMPTY
            for value in node.values:
                out |= self._eval(value, env)
            return out
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand, env)
        if isinstance(node, ast.IfExp):
            self._eval(node.test, env)
            return self._eval(node.body, env) | self._eval(node.orelse, env)
        if isinstance(node, (ast.Tuple, ast.List)):
            out = EMPTY
            for element in node.elts:
                out |= self._eval(element, env)
            return out
        if isinstance(node, ast.Set):
            out = EMPTY
            for element in node.elts:
                out |= self._eval(element, env)
            if spec.set_literal_label:
                out |= frozenset({spec.set_literal_label})
            return out
        if isinstance(node, ast.Dict):
            out = EMPTY
            for key in node.keys:
                if key is not None:
                    out |= self._eval(key, env)
            for value in node.values:
                out |= self._eval(value, env)
            return out
        if isinstance(node, ast.Subscript):
            out = self._eval(node.value, env)
            self._eval(node.slice, env)
            return out
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self._eval(part, env)
            return EMPTY
        if isinstance(node, ast.JoinedStr):
            out = EMPTY
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    out |= self._eval(value.value, env)
            return out
        if isinstance(node, ast.Starred):
            return self._eval(node.value, env)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            comp_env = dict(env)
            self._bind_comprehensions(node.generators, comp_env)
            out = self._eval(node.elt, comp_env)
            if isinstance(node, ast.SetComp) and spec.set_literal_label:
                out |= frozenset({spec.set_literal_label})
            return out
        if isinstance(node, ast.DictComp):
            comp_env = dict(env)
            self._bind_comprehensions(node.generators, comp_env)
            return self._eval(node.key, comp_env) | self._eval(node.value, comp_env)
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self._eval(node.value, env)
        if isinstance(node, ast.Yield):
            return self._eval(node.value, env) if node.value else EMPTY
        if isinstance(node, ast.NamedExpr):
            labels = self._eval(node.value, env)
            self._bind(node.target, labels, env)
            return labels
        if isinstance(node, ast.Lambda):
            return EMPTY
        return EMPTY

    def _bind_comprehensions(
        self, generators: Iterable[ast.comprehension], env: dict[str, Labels]
    ) -> None:
        for gen in generators:
            iter_labels = self._eval(gen.iter, env)
            target_labels = iter_labels
            if (
                self.spec.iter_order_label
                and iter_labels & self.spec.unordered_labels
            ):
                target_labels |= frozenset({self.spec.iter_order_label})
            self._bind(gen.target, target_labels, env)
            for condition in gen.ifs:
                self._eval(condition, env)

    def _name_source(self, chain: str) -> Labels:
        qual, _known = self.engine.graph.resolve_name(
            self.fn.module, chain, self.fn.class_name
        )
        if qual is None:
            return EMPTY
        labels = {
            label
            for pattern, label in self.spec.name_sources.items()
            if match_dotted(pattern, qual)
        }
        return frozenset(labels)

    def _check_mix(
        self, left: Labels, right: Labels, op: ast.AST, node: ast.AST
    ) -> None:
        if self.spec.mix is None:
            return
        bad = self.spec.mix(concrete(left), concrete(right), type(op).__name__)
        if bad:
            self._flow("mix", bad, node, type(op).__name__)
        # parameter-carried operands cannot be judged context-free; skip.

    # -- calls ----------------------------------------------------------------
    def _eval_call(self, node: ast.Call, env: dict[str, Labels]) -> Labels:
        spec = self.spec
        site = self.engine.site(node)
        arg_labels = [self._eval(arg, env) for arg in node.args]
        kw_labels = {
            kw.arg: self._eval(kw.value, env) for kw in node.keywords
        }  # **kwargs lands under key None
        if spec.kwarg_launder is not None:
            kw_labels = {
                name: (
                    spec.kwarg_launder(name, labels) if name is not None else labels
                )
                for name, labels in kw_labels.items()
            }
        recv_labels: Labels = EMPTY
        if isinstance(node.func, ast.Attribute):
            recv_labels = self._eval(node.func.value, env)
        elif not isinstance(node.func, ast.Name):
            self._eval(node.func, env)
        everything: Labels = recv_labels
        for labels in arg_labels:
            everything |= labels
        for labels in kw_labels.values():
            everything |= labels

        if site is None:
            return everything if spec.propagate_unknown_calls else EMPTY

        if spec.is_sanitizer(site):
            stripped = spec.cleared(site)
            base = EMPTY if stripped is None else everything - stripped
            # a converter is sanitizer + source: bytes_to_pages() strips
            # the incoming unit and stamps its own.
            return base | spec.source_for(site)

        out = spec.source_for(site)
        if spec.set_literal_label and site.callee in (
            "builtins.set",
            "builtins.frozenset",
        ):
            out |= frozenset({spec.set_literal_label})

        target = self._call_target(site)
        if target is not None:
            summary = self.engine.summaries.get(target.qualname)
            if summary is not None:
                by_param = self._map_args_to_params(
                    target, site, arg_labels, kw_labels, recv_labels
                )
                out |= summary.ret_labels
                for index in summary.ret_params:
                    out |= by_param.get(index, EMPTY)
                for index, sinks in summary.param_flows.items():
                    labels = by_param.get(index, EMPTY)
                    if labels:
                        for sink in sorted(sinks):
                            self._flow(
                                sink,
                                labels,
                                node,
                                site.callee or target.qualname,
                            )
        elif spec.propagate_unknown_calls:
            out |= everything

        for sink in spec.call_sinks:
            if sink.matches(site):
                for labels, detail in self._sink_positions(
                    sink, node, arg_labels, kw_labels
                ):
                    self._flow(sink.name, labels, node, detail)
        return out

    def _call_target(self, site: CallSite) -> Optional[FunctionInfo]:
        if not site.known or site.callee is None:
            return None
        graph = self.engine.graph
        qual = site.callee
        if qual in graph.classes:
            init = graph.classes[qual].methods.get("__init__")
            if init is None:
                return None
            qual = init
        return graph.functions.get(qual)

    def _map_args_to_params(
        self,
        target: FunctionInfo,
        site: CallSite,
        arg_labels: list[Labels],
        kw_labels: dict[Optional[str], Labels],
        recv_labels: Labels,
    ) -> dict[int, Labels]:
        """Call-site argument taints keyed by callee parameter index."""
        offset = 0
        by_param: dict[int, Labels] = {}
        if target.class_name is not None:
            # bound method / constructor: parameter 0 is self.
            offset = 1
            by_param[0] = recv_labels
        names = target.param_names()
        for position, labels in enumerate(arg_labels):
            by_param[position + offset] = labels
        for keyword, labels in kw_labels.items():
            if keyword is None:
                continue
            if keyword in names:
                by_param[names.index(keyword)] = labels
        return by_param

    def _sink_positions(
        self,
        sink: CallSink,
        node: ast.Call,
        arg_labels: list[Labels],
        kw_labels: dict[Optional[str], Labels],
    ) -> Iterable[tuple[Labels, str]]:
        detail = dotted_chain(node.func) or (
            node.func.attr if isinstance(node.func, ast.Attribute) else "<call>"
        )
        if sink.args is None and sink.kwargs is None:
            union: Labels = EMPTY
            for labels in arg_labels:
                union |= labels
            for labels in kw_labels.values():
                union |= labels
            if union:
                yield union, detail
            return
        for position in sink.args or ():
            if position < len(arg_labels) and arg_labels[position]:
                yield arg_labels[position], detail
        for keyword in sink.kwargs or ():
            labels = kw_labels.get(keyword, EMPTY)
            if labels:
                yield labels, detail
