"""Codebase-specific lint rules for the UVM reproduction.

Each rule encodes one of the conventions the simulator's correctness
rests on (see the package docstring).  The rule set intentionally errs
on the side of precision over recall: a rule that cries wolf gets
waived into noise, while a quiet, sharp rule keeps failing CI exactly
when a convention is broken.

Scopes and allowlists are expressed as repo-relative path prefixes.
The *simulation core* (``core/``, ``gpu/``, ``mem/``, ``sim/``,
``workloads/``, ``experiments/``, ``trace/``, ``ext/``) must be
deterministic and unit-disciplined; the *operational shell*
(``serve/``, ``cli.py``) legitimately reads wall clocks.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from repro.checks.linter import ParsedModule, Rule, Violation

#: paths where wall-clock and ad-hoc randomness are legitimate: the
#: service layer measures real elapsed time, the CLI talks to humans,
#: and benchmarks time real execution.
_NONDETERMINISM_ALLOWLIST = (
    "src/repro/serve/",
    "src/repro/fleet/",
    "src/repro/cli.py",
    "benchmarks/",
)

def _root_name(node: ast.AST) -> str | None:
    """The leftmost Name of an attribute chain (``a.b.c`` -> ``a``)."""
    while isinstance(node, ast.Attribute):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


class WallClockRule(Rule):
    """Forbid wall-clock reads in the deterministic simulation core.

    Simulated time is :class:`repro.sim.clock.SimClock` nanoseconds;
    any ``time.time()``/``datetime.now()`` in the core makes replays
    non-reproducible (and, as UVMBench observes for real UVM runs,
    quietly couples results to runtime variation).
    """

    name = "determinism-wallclock"
    description = (
        "wall-clock reads (time.*, datetime.now, ...) are forbidden in the "
        "simulation core; simulated time flows through sim.clock"
    )
    allowlist = _NONDETERMINISM_ALLOWLIST

    _TIME_ATTRS = {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
    }
    _DATETIME_ATTRS = {"now", "utcnow", "today"}

    def check(self, module: ParsedModule) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                root = _root_name(node)
                if root == "time" and node.attr in self._TIME_ATTRS:
                    yield self.violation(
                        module, node, f"wall-clock read time.{node.attr}"
                    )
                elif root in ("datetime", "date") and node.attr in self._DATETIME_ATTRS:
                    yield self.violation(
                        module, node, f"wall-clock read {root}.{node.attr}"
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                names = sorted(
                    a.name for a in node.names if a.name in self._TIME_ATTRS
                )
                if names:
                    yield self.violation(
                        module,
                        node,
                        f"importing wall-clock functions from time: {names}",
                    )


class RngRule(Rule):
    """All randomness must flow through :mod:`repro.sim.rng`.

    Direct ``random``/``np.random`` use creates draws outside the named
    generator tree, so adding randomness in one component perturbs every
    other - exactly the cross-contamination ``SimRng.fork`` exists to
    prevent - and unseeded draws break bit-identical replay outright.
    """

    name = "determinism-rng"
    description = (
        "direct random/np.random use is forbidden; randomness flows through "
        "sim.rng.SimRng (fork a named stream)"
    )
    allowlist = _NONDETERMINISM_ALLOWLIST + ("src/repro/sim/rng.py",)

    def check(self, module: ParsedModule) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.violation(
                            module, node, "import of the stdlib random module"
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.violation(
                        module, node, "import from the stdlib random module"
                    )
                elif node.module in ("numpy.random", "numpy.random.mtrand"):
                    yield self.violation(module, node, "import from numpy.random")
            elif isinstance(node, ast.Attribute):
                value = node.value
                if (
                    isinstance(value, ast.Attribute)
                    and value.attr == "random"
                    and _root_name(value) in ("np", "numpy")
                ):
                    yield self.violation(
                        module, node, f"direct numpy RNG use np.random.{node.attr}"
                    )


class MagicLiteralRule(Rule):
    """Byte-size magic numbers in the core must come from repro.units.

    A literal ``4096`` is ambiguous (page size? entry count?); the named
    constant is not.  Powers of two >= 4096 in ``core/``/``gpu/``/
    ``mem/`` are flagged; genuine non-byte counts carry an inline
    waiver explaining what the number actually is.
    """

    name = "units-magic-literal"
    description = (
        "power-of-two byte-size literal in the simulation core; use the "
        "named repro.units constant (PAGE_SIZE, BIG_PAGE_SIZE, VABLOCK_SIZE, "
        "KiB/MiB/GiB multiples)"
    )
    scope = ("src/repro/core/", "src/repro/gpu/", "src/repro/mem/")

    _NAMED = {
        4096: "PAGE_SIZE",
        65536: "BIG_PAGE_SIZE",
        1048576: "MiB",
        2097152: "VABLOCK_SIZE",
        1073741824: "GiB",
    }
    _THRESHOLD = 4096

    def check(self, module: ParsedModule) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Constant):
                continue
            value = node.value
            if not isinstance(value, int) or isinstance(value, bool):
                continue
            if value < self._THRESHOLD or value & (value - 1):
                continue
            suggestion = self._NAMED.get(value)
            hint = (
                f"use repro.units.{suggestion}"
                if suggestion
                else "derive it from repro.units (KiB/MiB/GiB)"
            )
            yield self.violation(module, node, f"magic literal {value}; {hint}")


class IntNanosecondRule(Rule):
    """Clock/timer arguments must be integer-nanosecond expressions.

    ``units.py``'s contract: simulated time accumulates in integer
    nanoseconds so millions of events cannot drift.  An expression with
    true division or a float literal feeding ``clock.advance`` /
    ``timer.charge`` reintroduces float error unless explicitly rounded.
    """

    name = "units-int-ns"
    description = (
        "float arithmetic (true division / float literal) flowing into "
        "clock.advance/advance_to or timer.charge without round()/int()"
    )
    scope = (
        "src/repro/core/",
        "src/repro/gpu/",
        "src/repro/mem/",
        "src/repro/sim/",
    )
    #: the clock itself rounds at its boundary; the cost model's
    #: bandwidth formulas round at their return sites.
    allowlist = ("src/repro/sim/clock.py",)

    _GUARDS = {"round", "int"}

    def _unguarded(self, node: ast.AST) -> Iterator[ast.AST]:
        """Float-producing nodes in ``node`` not wrapped in round()/int()."""
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in self._GUARDS:
                return  # everything below is explicitly re-integered
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            yield node
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            yield node
        for child in ast.iter_child_nodes(node):
            yield from self._unguarded(child)

    def check(self, module: ParsedModule) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr in ("advance", "advance_to"):
                duration_args = node.args[:1]
            elif func.attr == "charge":
                duration_args = node.args[1:2]
            else:
                continue
            for arg in duration_args:
                for bad in self._unguarded(arg):
                    kind = (
                        "true division"
                        if isinstance(bad, ast.BinOp)
                        else f"float literal {bad.value}"  # type: ignore[attr-defined]
                    )
                    yield self.violation(
                        module,
                        node,
                        f"{kind} in {func.attr}() duration; wrap in round()",
                    )


class EngineParityRule(Rule):
    """The SoA and scalar scheduler engines must not drift apart.

    ``GpuDevice`` drives both engines through one contract; the
    equivalence suite proves behavioural identity, but only for the
    methods it exercises.  This rule pins the *surface*: the contract
    methods must exist in both classes with identical signatures, so a
    change to one engine forces the matching change (or a conscious
    contract revision here) in the other.
    """

    name = "engine-parity"
    description = (
        "public contract of SoaBlockScheduler (gpu/soa.py) must match "
        "BlockScheduler (gpu/scheduler.py)"
    )
    scope = ("src/repro/gpu/soa.py",)

    _SCALAR_RELPATH = "scheduler.py"
    _CLASSES = ("BlockScheduler", "SoaBlockScheduler")
    #: the methods GpuDevice calls on whichever engine is configured.
    _CONTRACT = (
        "__init__",
        "refill",
        "has_stalled",
        "all_done",
        "wake_all_stalled",
        "progress",
    )

    @staticmethod
    def _class_methods(tree: ast.Module, class_name: str) -> dict[str, str] | None:
        for node in tree.body:
            if isinstance(node, ast.ClassDef) and node.name == class_name:
                methods: dict[str, str] = {}
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        returns = (
                            ast.unparse(item.returns) if item.returns else ""
                        )
                        methods[item.name] = f"({ast.unparse(item.args)}) -> {returns}"
                return methods
        return None

    def check(self, module: ParsedModule) -> Iterator[Violation]:
        scalar_path = module.abspath.parent / self._SCALAR_RELPATH
        if not scalar_path.exists():
            yield self.violation(
                module, module.tree, f"scalar reference {scalar_path.name} not found"
            )
            return
        scalar_tree = ast.parse(scalar_path.read_text(encoding="utf-8"))
        scalar = self._class_methods(scalar_tree, self._CLASSES[0])
        soa = self._class_methods(module.tree, self._CLASSES[1])
        if scalar is None or soa is None:
            missing = self._CLASSES[0] if scalar is None else self._CLASSES[1]
            yield self.violation(module, module.tree, f"class {missing} not found")
            return
        for method in self._CONTRACT:
            if method not in scalar or method not in soa:
                where = "scalar" if method not in scalar else "SoA"
                yield self.violation(
                    module,
                    module.tree,
                    f"contract method {method}() missing from the {where} engine",
                )
                continue
            if scalar[method] != soa[method]:
                yield self.violation(
                    module,
                    module.tree,
                    f"signature drift on {method}(): scalar {scalar[method]!r} "
                    f"vs SoA {soa[method]!r}",
                )


class MutableDefaultRule(Rule):
    """Mutable default arguments are shared across calls - forbid them."""

    name = "mutable-default-arg"
    description = "mutable default argument ([], {}, set(), ...); use None"

    _MUTABLE_CALLS = {"list", "dict", "set", "OrderedDict", "defaultdict", "deque"}

    def _is_mutable(self, node: ast.AST | None) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in self._MUTABLE_CALLS
        )

    def check(self, module: ParsedModule) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.violation(
                        module,
                        default,
                        f"mutable default argument in {node.name}()",
                    )


class BareExceptRule(Rule):
    """Bare ``except:`` swallows KeyboardInterrupt/SystemExit - forbid it.

    Worker and supervisor paths that must survive arbitrary job failures
    catch ``Exception`` (or ``BaseException`` with an explicit report),
    never a bare clause.
    """

    name = "bare-except"
    description = "bare 'except:' clause; catch Exception (or narrower)"

    def check(self, module: ParsedModule) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.violation(module, node, "bare except clause")


def default_rules() -> list[Rule]:
    """The full rule set ``uvmrepro check`` runs."""
    return [
        WallClockRule(),
        RngRule(),
        MagicLiteralRule(),
        IntNanosecondRule(),
        EngineParityRule(),
        MutableDefaultRule(),
        BareExceptRule(),
    ]
