"""Correctness tooling: static analysis engine and runtime invariant sanitizer.

The reproduction's credibility rests on two properties the experiment
layer assumes implicitly:

* **determinism** - bit-identical replays under a fixed seed: all
  randomness flows through :mod:`repro.sim.rng`, all simulated time is
  integer nanoseconds (:mod:`repro.units`), and no wall-clock reads leak
  into the simulation core;
* **driver invariants** - the state-machine rules of Section III/IV
  (VABlock-granularity residency, bounded fault batches, LRU eviction
  order, prefetch confined to backed blocks) hold at every step.

Two complementary tools enforce them:

* static analysis, run by ``uvmrepro check`` and in CI:

  - :mod:`repro.checks.linter` + :mod:`repro.checks.rules` - the
    per-statement AST tier (stdlib ``ast``, no dependencies), with a
    committed baseline for grandfathered violations
    (:mod:`repro.checks.baseline`) and inline/file-level waivers;
  - :mod:`repro.checks.graph` + :mod:`repro.checks.dataflow` +
    :mod:`repro.checks.flow_rules` - the interprocedural tier: a
    package-wide module/call graph, a summary-based taint engine on
    top of it, and four analysis families (determinism taint, lock
    discipline + fork safety, journal/hook protocol, units flow);
  - :mod:`repro.checks.sarif` - SARIF 2.1.0 emitter for code-scanning
    UIs (``uvmrepro check --format sarif``);

* :mod:`repro.checks.sanitizer` - "UVMSAN", runtime assertion hooks in
  the driver pipeline, zero-cost unless ``UVMREPRO_SANITIZE=1``.
"""

from repro.checks.linter import LintReport, Violation, lint_paths
from repro.checks.sanitizer import SanitizerError, enabled as sanitize_enabled

__all__ = [
    "LintReport",
    "Violation",
    "lint_paths",
    "SanitizerError",
    "sanitize_enabled",
]
