"""Correctness tooling: static lint pass and runtime invariant sanitizer.

The reproduction's credibility rests on two properties the experiment
layer assumes implicitly:

* **determinism** - bit-identical replays under a fixed seed: all
  randomness flows through :mod:`repro.sim.rng`, all simulated time is
  integer nanoseconds (:mod:`repro.units`), and no wall-clock reads leak
  into the simulation core;
* **driver invariants** - the state-machine rules of Section III/IV
  (VABlock-granularity residency, bounded fault batches, LRU eviction
  order, prefetch confined to backed blocks) hold at every step.

Two complementary tools enforce them:

* :mod:`repro.checks.linter` + :mod:`repro.checks.rules` - an AST-based
  lint pass (stdlib ``ast``, no dependencies) run by ``uvmrepro check``
  and in CI, with a committed baseline for grandfathered violations
  (:mod:`repro.checks.baseline`);
* :mod:`repro.checks.sanitizer` - "UVMSAN", runtime assertion hooks in
  the driver pipeline, zero-cost unless ``UVMREPRO_SANITIZE=1``.
"""

from repro.checks.linter import LintReport, Violation, lint_paths
from repro.checks.sanitizer import SanitizerError, enabled as sanitize_enabled

__all__ = [
    "LintReport",
    "Violation",
    "lint_paths",
    "SanitizerError",
    "sanitize_enabled",
]
