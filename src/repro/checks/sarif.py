"""Minimal SARIF 2.1.0 emitter for lint reports.

SARIF (Static Analysis Results Interchange Format) is the lingua
franca code-scanning UIs ingest (GitHub code scanning, VS Code SARIF
viewer, ...).  The emitter maps the linter's vocabulary directly:

* every :class:`~repro.checks.linter.Rule`/flow rule becomes a
  ``tool.driver.rules`` entry (id + short description),
* every :class:`~repro.checks.linter.Violation` becomes a ``result``
  with one physical location,
* parse errors and expired waivers become tool-level notifications,
  so ``--strict`` failures are visible in the artifact too.

Output is fully deterministic: rules and results are sorted, and the
JSON is dumped with sorted keys - the golden-file test diffs it byte
for byte.
"""

from __future__ import annotations

import json
from typing import Mapping, Sequence

from repro.checks.linter import LintReport, Violation

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "uvmrepro-check"


def _result(violation: Violation, rule_index: Mapping[str, int]) -> dict:
    return {
        "ruleId": violation.rule,
        "ruleIndex": rule_index.get(violation.rule, -1),
        "level": "warning",
        "message": {"text": violation.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": violation.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {"startLine": max(violation.line, 1)},
                }
            }
        ],
    }


def _notification(message: str, level: str) -> dict:
    return {"level": level, "message": {"text": message}}


def to_sarif(
    report: LintReport,
    rule_descriptions: Mapping[str, str] | None = None,
    tool_version: str = "0",
) -> dict:
    """Render one lint run as a SARIF ``log`` dict.

    ``rule_descriptions`` maps rule id -> human description; rules that
    produced violations are always listed even when no description is
    known.
    """
    descriptions = dict(rule_descriptions or {})
    for violation in report.violations:
        descriptions.setdefault(violation.rule, "")
    rule_ids = sorted(descriptions)
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    rules = [
        {
            "id": rule_id,
            "shortDescription": {"text": descriptions[rule_id] or rule_id},
        }
        for rule_id in rule_ids
    ]
    results = [
        _result(v, rule_index)
        for v in sorted(
            report.violations, key=lambda v: (v.path, v.line, v.rule, v.message)
        )
    ]
    notifications = [
        _notification(text, "error") for text in sorted(report.parse_errors)
    ] + [
        _notification(text, "warning") for text in sorted(report.expired_waivers)
    ]
    run: dict = {
        "tool": {
            "driver": {
                "name": TOOL_NAME,
                "version": tool_version,
                "informationUri": "https://example.invalid/uvm-repro",
                "rules": rules,
            }
        },
        "results": results,
        "columnKind": "utf16CodeUnits",
    }
    if notifications:
        run["invocations"] = [
            {
                "executionSuccessful": not report.parse_errors,
                "toolExecutionNotifications": notifications,
            }
        ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [run],
    }


def render_sarif(
    report: LintReport,
    rule_descriptions: Mapping[str, str] | None = None,
    tool_version: str = "0",
) -> str:
    """The SARIF log as deterministic, pretty-printed JSON text."""
    log = to_sarif(report, rule_descriptions, tool_version)
    return json.dumps(log, indent=2, sort_keys=True) + "\n"


def rule_catalog(
    rules: Sequence[object], flow_rules: Sequence[object]
) -> dict[str, str]:
    """id -> description for every standard and flow rule."""
    catalog: dict[str, str] = {}
    for rule in list(rules) + list(flow_rules):
        name = getattr(rule, "name", "")
        if name:
            catalog[name] = getattr(rule, "description", "")
    return catalog
