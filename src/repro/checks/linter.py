"""AST lint framework: parsed modules, rules, waivers, and reports.

The framework is deliberately tiny and dependency-free: a
:class:`ParsedModule` bundles one file's AST with its source lines and
inline waivers, a :class:`Rule` walks it and yields
:class:`Violation` records, and :func:`lint_paths` drives a rule set
over a file tree.  Codebase-specific per-statement rules live in
:mod:`repro.checks.rules`; package-wide flow rules (built on the
module/call graph of :mod:`repro.checks.graph` and the taint engine of
:mod:`repro.checks.dataflow`) live in :mod:`repro.checks.flow_rules`.
This module knows nothing about either.

Waivers
-------
A violation can be silenced at its source line with an inline marker::

    fault_buffer_capacity: int = 4096  # lint: allow(units-magic-literal) entry count

The marker names the rule explicitly, so a waiver never hides a
*different* problem appearing on the same line later.  Two extensions:

* **module-level** waivers silence a rule for the whole file::

      # lint: allow-file(flow-lock-discipline) probe thread owns this state

* **expiring** waivers carry a date after which they stop silencing
  (and ``--strict`` fails them outright, so they cannot quietly rot)::

      deadline = time.time() + 5  # lint: allow(determinism-wallclock, until=2026-12-31)

Waivers are for lines that are genuinely correct (e.g. a literal that
looks like a byte size but is an entry count); systematic debt belongs
in the baseline file instead (:mod:`repro.checks.baseline`).
"""

from __future__ import annotations

import ast
import datetime as _datetime
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

_WAIVER_RE = re.compile(r"#\s*lint:\s*allow(-file)?\(([^)]*)\)")
_UNTIL_RE = re.compile(r"^until\s*=\s*(\d{4}-\d{2}-\d{2})$")


def _today() -> _datetime.date:
    # the linter is operational tooling, not simulation state: waiver
    # expiry is judged against the real calendar by design.
    return _datetime.date.today()  # lint: allow(determinism-wallclock)


@dataclass(frozen=True)
class Violation:
    """One rule violation at one source location."""

    rule: str
    path: str  # posix-style, relative to the lint root
    line: int
    message: str

    def key(self) -> str:
        """Baseline identity: stable across unrelated line drift."""
        return f"{self.rule}::{self.path}::{self.message}"

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass(frozen=True)
class Waiver:
    """One ``# lint: allow(...)`` marker."""

    rules: frozenset[str]
    line: int
    file_level: bool = False
    until: Optional[_datetime.date] = None

    def expired(self, today: _datetime.date) -> bool:
        return self.until is not None and today > self.until


class ParsedModule:
    """One source file, parsed once and shared by every rule."""

    def __init__(self, root: Path, path: Path) -> None:
        self.abspath = path
        self.relpath = path.relative_to(root).as_posix()
        self.source = path.read_text(encoding="utf-8")
        self.lines = self.source.splitlines()
        self.tree = ast.parse(self.source, filename=str(path))
        self.waiver_errors: list[str] = []
        self.waivers: list[Waiver] = self._collect_waivers(self.lines)

    def _collect_waivers(self, lines: Sequence[str]) -> list[Waiver]:
        waivers: list[Waiver] = []
        for lineno, text in enumerate(lines, start=1):
            match = _WAIVER_RE.search(text)
            if not match:
                continue
            file_level = match.group(1) == "-file"
            rules: set[str] = set()
            until: Optional[_datetime.date] = None
            bad = False
            for token in match.group(2).split(","):
                token = token.strip()
                if not token:
                    continue
                until_match = _UNTIL_RE.match(token)
                if until_match:
                    try:
                        until = _datetime.date.fromisoformat(until_match.group(1))
                    except ValueError:
                        bad = True
                elif "=" in token:
                    bad = True
                else:
                    rules.add(token)
            if bad or not rules:
                self.waiver_errors.append(
                    f"{self.relpath}:{lineno}: malformed lint waiver {text.strip()!r}"
                )
                continue
            waivers.append(
                Waiver(
                    rules=frozenset(rules),
                    line=lineno,
                    file_level=file_level,
                    until=until,
                )
            )
        return waivers

    def waived(
        self, rule: str, line: int, today: Optional[_datetime.date] = None
    ) -> bool:
        today = today or _today()
        for waiver in self.waivers:
            if rule not in waiver.rules or waiver.expired(today):
                continue
            if waiver.file_level or waiver.line == line:
                return True
        return False

    def expired_waivers(
        self, today: Optional[_datetime.date] = None
    ) -> list[Waiver]:
        today = today or _today()
        return [w for w in self.waivers if w.expired(today)]


class Rule:
    """Base class: one named check over a parsed module.

    Subclasses set ``name``/``description`` and implement
    :meth:`check`.  ``scope`` optionally restricts the rule to relative
    path prefixes; an empty scope means the whole tree.
    """

    name: str = ""
    description: str = ""
    #: relative-path prefixes the rule applies to ("" = everywhere).
    scope: tuple[str, ...] = ()
    #: relative-path prefixes exempt from the rule.
    allowlist: tuple[str, ...] = ()

    def applies_to(self, relpath: str) -> bool:
        if self.scope and not any(relpath.startswith(p) for p in self.scope):
            return False
        return not any(relpath.startswith(p) for p in self.allowlist)

    def check(self, module: ParsedModule) -> Iterator[Violation]:  # pragma: no cover
        raise NotImplementedError

    def violation(self, module: ParsedModule, node: ast.AST, message: str) -> Violation:
        return Violation(
            rule=self.name,
            path=module.relpath,
            line=getattr(node, "lineno", 0),
            message=message,
        )


@dataclass
class LintReport:
    """Everything one lint run produced."""

    violations: list[Violation] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: list[str] = field(default_factory=list)
    #: "path:line: waiver for rule(s) ... expired YYYY-MM-DD" records;
    #: informational by default, failures under ``--strict``.
    expired_waivers: list[str] = field(default_factory=list)

    def by_rule(self) -> dict[str, list[Violation]]:
        grouped: dict[str, list[Violation]] = {}
        for v in self.violations:
            grouped.setdefault(v.rule, []).append(v)
        return grouped

    def render(self) -> str:
        lines = [v.render() for v in self.violations]
        lines.append(
            f"{len(self.violations)} violation(s) in {self.files_checked} file(s)"
        )
        if self.parse_errors:
            lines.append(f"{len(self.parse_errors)} file(s) failed to parse:")
            lines.extend(f"  {e}" for e in self.parse_errors)
        if self.expired_waivers:
            lines.append(f"{len(self.expired_waivers)} expired waiver(s):")
            lines.extend(f"  {e}" for e in self.expired_waivers)
        return "\n".join(lines)


def iter_python_files(root: Path, paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories under ``root`` into sorted .py files."""
    seen: set[Path] = set()
    for path in paths:
        path = path if path.is_absolute() else root / path
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def lint_paths(
    root: Path,
    paths: Sequence[Path] | None = None,
    rules: Sequence[Rule] | None = None,
    flow: bool = False,
    analyses: Sequence[str] | None = None,
    today: Optional[_datetime.date] = None,
) -> LintReport:
    """Run ``rules`` over every python file in ``paths`` (under ``root``).

    ``root`` anchors the relative paths that scopes, allowlists, and the
    baseline key on; ``paths`` defaults to ``src/repro`` under it.

    With ``flow=True`` the package-wide flow analyses also run: the
    whole package under ``root`` is parsed into a
    :class:`~repro.checks.graph.ProjectGraph` (interprocedural context
    never shrinks with ``paths``), but flow findings are only *reported*
    for the files selected by ``paths``.  ``analyses`` narrows the flow
    families (``determinism``/``concurrency``/``protocol``/``units``).
    """
    from repro.checks.rules import default_rules

    root = root.resolve()
    today = today or _today()
    if rules is None:
        rules = default_rules()
    if paths is None:
        paths = [root / "src" / "repro"]
    report = LintReport()
    by_relpath: dict[str, ParsedModule] = {}
    for path in iter_python_files(root, paths):
        try:
            module = ParsedModule(root, path.resolve())
        except (SyntaxError, UnicodeDecodeError, ValueError) as exc:
            report.parse_errors.append(f"{path}: {exc}")
            continue
        report.files_checked += 1
        by_relpath[module.relpath] = module
        report.parse_errors.extend(module.waiver_errors)
        for waiver in module.expired_waivers(today):
            rules_text = ", ".join(sorted(waiver.rules))
            report.expired_waivers.append(
                f"{module.relpath}:{waiver.line}: waiver for {rules_text} "
                f"expired {waiver.until.isoformat()}"  # type: ignore[union-attr]
            )
        for rule in rules:
            if not rule.applies_to(module.relpath):
                continue
            for violation in rule.check(module):
                if not module.waived(violation.rule, violation.line, today):
                    report.violations.append(violation)
    if flow:
        _run_flow(root, report, by_relpath, analyses, today)
    report.violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return report


def _run_flow(
    root: Path,
    report: LintReport,
    by_relpath: dict[str, ParsedModule],
    analyses: Sequence[str] | None,
    today: _datetime.date,
) -> None:
    """Run the interprocedural analyses and fold findings into ``report``."""
    from repro.checks.flow_rules import default_flow_rules
    from repro.checks.graph import ProjectGraph

    graph = ProjectGraph.build(root)
    for rule in default_flow_rules(analyses):
        for violation in rule.check_project(graph):
            module = by_relpath.get(violation.path)
            if module is None:
                continue  # outside the linted file selection
            if not rule.applies_to(violation.path):
                continue
            if not module.waived(violation.rule, violation.line, today):
                report.violations.append(violation)
