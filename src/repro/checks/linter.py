"""AST lint framework: parsed modules, rules, waivers, and reports.

The framework is deliberately tiny and dependency-free: a
:class:`ParsedModule` bundles one file's AST with its source lines and
inline waivers, a :class:`Rule` walks it and yields
:class:`Violation` records, and :func:`lint_paths` drives a rule set
over a file tree.  Codebase-specific rules live in
:mod:`repro.checks.rules`; this module knows nothing about them.

Waivers
-------
A violation can be silenced at its source line with an inline marker::

    fault_buffer_capacity: int = 4096  # lint: allow(units-magic-literal) entry count

The marker names the rule explicitly, so a waiver never hides a
*different* problem appearing on the same line later.  Waivers are for
lines that are genuinely correct (e.g. a literal that looks like a byte
size but is an entry count); systematic debt belongs in the baseline
file instead (:mod:`repro.checks.baseline`).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

_WAIVER_RE = re.compile(r"#\s*lint:\s*allow\(([a-z0-9_,\- ]+)\)")


@dataclass(frozen=True)
class Violation:
    """One rule violation at one source location."""

    rule: str
    path: str  # posix-style, relative to the lint root
    line: int
    message: str

    def key(self) -> str:
        """Baseline identity: stable across unrelated line drift."""
        return f"{self.rule}::{self.path}::{self.message}"

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class ParsedModule:
    """One source file, parsed once and shared by every rule."""

    def __init__(self, root: Path, path: Path) -> None:
        self.abspath = path
        self.relpath = path.relative_to(root).as_posix()
        self.source = path.read_text(encoding="utf-8")
        self.lines = self.source.splitlines()
        self.tree = ast.parse(self.source, filename=str(path))
        self.waivers = self._collect_waivers(self.lines)

    @staticmethod
    def _collect_waivers(lines: Sequence[str]) -> dict[int, set[str]]:
        waivers: dict[int, set[str]] = {}
        for lineno, text in enumerate(lines, start=1):
            match = _WAIVER_RE.search(text)
            if match:
                rules = {r.strip() for r in match.group(1).split(",") if r.strip()}
                waivers[lineno] = rules
        return waivers

    def waived(self, rule: str, line: int) -> bool:
        return rule in self.waivers.get(line, ())


class Rule:
    """Base class: one named check over a parsed module.

    Subclasses set ``name``/``description`` and implement
    :meth:`check`.  ``scope`` optionally restricts the rule to relative
    path prefixes; an empty scope means the whole tree.
    """

    name: str = ""
    description: str = ""
    #: relative-path prefixes the rule applies to ("" = everywhere).
    scope: tuple[str, ...] = ()
    #: relative-path prefixes exempt from the rule.
    allowlist: tuple[str, ...] = ()

    def applies_to(self, relpath: str) -> bool:
        if self.scope and not any(relpath.startswith(p) for p in self.scope):
            return False
        return not any(relpath.startswith(p) for p in self.allowlist)

    def check(self, module: ParsedModule) -> Iterator[Violation]:  # pragma: no cover
        raise NotImplementedError

    def violation(self, module: ParsedModule, node: ast.AST, message: str) -> Violation:
        return Violation(
            rule=self.name,
            path=module.relpath,
            line=getattr(node, "lineno", 0),
            message=message,
        )


@dataclass
class LintReport:
    """Everything one lint run produced."""

    violations: list[Violation] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: list[str] = field(default_factory=list)

    def by_rule(self) -> dict[str, list[Violation]]:
        grouped: dict[str, list[Violation]] = {}
        for v in self.violations:
            grouped.setdefault(v.rule, []).append(v)
        return grouped

    def render(self) -> str:
        lines = [v.render() for v in self.violations]
        lines.append(
            f"{len(self.violations)} violation(s) in {self.files_checked} file(s)"
        )
        if self.parse_errors:
            lines.append(f"{len(self.parse_errors)} file(s) failed to parse:")
            lines.extend(f"  {e}" for e in self.parse_errors)
        return "\n".join(lines)


def iter_python_files(root: Path, paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories under ``root`` into sorted .py files."""
    seen: set[Path] = set()
    for path in paths:
        path = path if path.is_absolute() else root / path
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def lint_paths(
    root: Path,
    paths: Sequence[Path] | None = None,
    rules: Sequence[Rule] | None = None,
) -> LintReport:
    """Run ``rules`` over every python file in ``paths`` (under ``root``).

    ``root`` anchors the relative paths that scopes, allowlists, and the
    baseline key on; ``paths`` defaults to ``src/repro`` under it.
    """
    from repro.checks.rules import default_rules

    root = root.resolve()
    if rules is None:
        rules = default_rules()
    if paths is None:
        paths = [root / "src" / "repro"]
    report = LintReport()
    for path in iter_python_files(root, paths):
        try:
            module = ParsedModule(root, path.resolve())
        except (SyntaxError, UnicodeDecodeError, ValueError) as exc:
            report.parse_errors.append(f"{path}: {exc}")
            continue
        report.files_checked += 1
        for rule in rules:
            if not rule.applies_to(module.relpath):
                continue
            for violation in rule.check(module):
                if not module.waived(violation.rule, violation.line):
                    report.violations.append(violation)
    report.violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return report
