"""Baseline handling: grandfathered violations and the check verdict.

The baseline file (``checks_baseline.json``, committed at the repo
root) records violations that predate a rule and are accepted for now.
``uvmrepro check`` fails only on violations *not* in the baseline, so
a new rule can land with existing debt recorded instead of blocking
every PR - while any **new** violation still fails immediately.  Each
entry counts occurrences per (rule, path, message) key, so adding a
second instance of a baselined problem is also caught.

``--strict`` additionally fails when baseline entries no longer occur,
forcing the file to be trimmed as debt is paid down (and keeping a
stale baseline from masking regressions that happen to reuse a key).
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.checks.linter import Violation

BASELINE_VERSION = 1


@dataclass
class BaselineDiff:
    """How a lint run compares against the committed baseline."""

    #: violations not covered by the baseline (fail the check).
    new: list[Violation] = field(default_factory=list)
    #: violations absorbed by baseline entries.
    baselined: list[Violation] = field(default_factory=list)
    #: baseline keys (with leftover counts) that no longer occur.
    stale: dict[str, int] = field(default_factory=dict)

    def ok(self, strict: bool = False) -> bool:
        if self.new:
            return False
        return not (strict and self.stale)


def load_baseline(path: Path) -> dict[str, int]:
    """Read a baseline file; a missing file is an empty baseline."""
    if not path.exists():
        return {}
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {payload.get('version')!r} in {path}"
        )
    violations = payload.get("violations", {})
    if not isinstance(violations, dict):
        raise ValueError(f"baseline 'violations' must be an object in {path}")
    return {str(k): int(v) for k, v in violations.items()}


def save_baseline(path: Path, violations: Sequence[Violation]) -> dict[str, int]:
    """Write the current violations as the new baseline; returns it."""
    counts = dict(sorted(Counter(v.key() for v in violations).items()))
    payload = {
        "_comment": (
            "Grandfathered `uvmrepro check` violations. Keys are "
            "rule::path::message with occurrence counts. Fix the code and "
            "re-run `uvmrepro check --update-baseline` to trim entries; "
            "never add entries by hand to silence a new violation."
        ),
        "version": BASELINE_VERSION,
        "violations": counts,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return counts


def diff_against_baseline(
    violations: Sequence[Violation], baseline: dict[str, int]
) -> BaselineDiff:
    """Split violations into new vs baselined, and find stale entries."""
    remaining = Counter(baseline)
    diff = BaselineDiff()
    for violation in violations:
        key = violation.key()
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            diff.baselined.append(violation)
        else:
            diff.new.append(violation)
    diff.stale = {k: n for k, n in sorted(remaining.items()) if n > 0}
    return diff
