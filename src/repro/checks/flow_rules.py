"""Interprocedural flow rules: the analysis tier above the AST linter.

Four analysis families run over the package-wide
:class:`~repro.checks.graph.ProjectGraph` (most of them through the
taint engine of :mod:`repro.checks.dataflow`):

* **determinism taint** (``flow-determinism-taint``) - values born from
  wall clocks, ad-hoc RNG, builtin ``hash()``/``id()``, or
  order-nondeterministic iteration must never reach simulation state,
  ``SimRng`` seeds, content digests/cache keys, journal records, or the
  simulated clock.  Monotonic deadlines and wall-clock *record
  timestamps* are modeled as sanctioned sinks (``time.monotonic`` is
  not a source; ``*_at``/``*timestamp`` fields launder ``wallclock``) -
  the allowance is part of the model, not a waiver.
* **concurrency discipline** (``flow-lock-discipline``,
  ``flow-fork-capture``) - an attribute written under a
  ``threading.Lock``/``RLock``/``Condition`` anywhere must be accessed
  under the same lock everywhere (lock context propagates through the
  intra-class call graph, so helpers documented "lock held" are proven,
  not trusted); and no lock/file/socket handle may be captured into a
  ``multiprocessing.Process``.
* **protocol checks** (``flow-journal-before-act``,
  ``flow-hook-sentinel``) - in the serve layer every job-state mutation
  must be followed by a journal append/compact in the same function
  (the PR 5 write-ahead invariant, checked through call-graph
  summaries: ``self._journal_record(...)`` counts because it reaches
  ``journal.append``); and chaos/UVMSAN hooks stay None-sentinel
  zero-cost - every dereference is dominated by an ``is not None``
  guard.
* **units flow** (``flow-units-mix``) - ns/bytes/pages taints from
  :mod:`repro.units` constructors are tracked through assignments and
  call boundaries; adding, subtracting, or ordering values of different
  units is flagged.  The algebra cancels same-unit ratios
  (``size // PAGE_SIZE`` is a page *count*, not bytes).

All findings are ordinary :class:`~repro.checks.linter.Violation`
records: inline/module waivers, the baseline file, and the SARIF
emitter apply unchanged.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional, Sequence

from repro.checks.dataflow import (
    AttrSink,
    CallSink,
    Flow,
    Labels,
    TaintEngine,
    TaintSpec,
)
from repro.checks.graph import FunctionInfo, ProjectGraph, dotted_chain
from repro.checks.linter import Violation

#: the analysis families, in the order ``--list-rules`` shows them.
FAMILIES = ("determinism", "concurrency", "protocol", "units")

_CORE_SCOPE = (
    "src/repro/core/",
    "src/repro/gpu/",
    "src/repro/mem/",
    "src/repro/sim/",
)


class FlowRule:
    """One package-wide analysis producing :class:`Violation` records."""

    name: str = ""
    family: str = ""
    description: str = ""
    scope: tuple[str, ...] = ()
    allowlist: tuple[str, ...] = ()

    def applies_to(self, relpath: str) -> bool:
        if self.scope and not any(relpath.startswith(p) for p in self.scope):
            return False
        return not any(relpath.startswith(p) for p in self.allowlist)

    def check_project(self, graph: ProjectGraph) -> Iterator[Violation]:
        raise NotImplementedError  # pragma: no cover

    def violation(self, relpath: str, line: int, message: str) -> Violation:
        return Violation(rule=self.name, path=relpath, line=line, message=message)


# ---------------------------------------------------------------------------
# determinism taint
# ---------------------------------------------------------------------------

#: fields that legitimately hold wall-clock time: record timestamps.
_TIMESTAMP_RE = re.compile(r"(^|_)(at|ts|time|timestamp|stamp)s?$")

_SINK_HINTS = {
    "rng-seed": "SimRng seeds must be configuration, never runtime values",
    "cache-key": "content digests must be pure functions of the spec",
    "journal": "journal records must replay bit-identically",
    "sim-clock": "simulated time advances only by modeled costs",
    "sim-state": "simulation state must be reproducible under a fixed seed",
}


def _determinism_spec() -> TaintSpec:
    def launder(name: str, labels: Labels) -> Labels:
        if _TIMESTAMP_RE.search(name):
            return labels - {"wallclock"}
        return labels

    return TaintSpec(
        call_sources={
            "time.time": "wallclock",
            "time.time_ns": "wallclock",
            "datetime.datetime.now": "wallclock",
            "datetime.datetime.utcnow": "wallclock",
            "datetime.datetime.today": "wallclock",
            "datetime.date.today": "wallclock",
            # module-level RNG functions use hidden global state; an
            # explicitly *seeded* constructor (random.Random(seed),
            # numpy.random.default_rng(seed)) is deterministic and not
            # a source.
            "random.random": "random",
            "random.randint": "random",
            "random.randrange": "random",
            "random.uniform": "random",
            "random.choice": "random",
            "random.choices": "random",
            "random.sample": "random",
            "random.shuffle": "random",
            "random.getrandbits": "random",
            "random.gauss": "random",
            "random.seed": "random",
            "random.SystemRandom": "random",
            "numpy.random.random": "random",
            "numpy.random.rand": "random",
            "numpy.random.randn": "random",
            "numpy.random.randint": "random",
            "numpy.random.choice": "random",
            "numpy.random.shuffle": "random",
            "numpy.random.permutation": "random",
            "numpy.random.seed": "random",
            "os.urandom": "random",
            "uuid.uuid1": "random",
            "uuid.uuid4": "random",
            "secrets.*": "random",
            "builtins.hash": "hashseed",
            "builtins.id": "hashseed",
            "os.listdir": "unordered-fs",
            "os.scandir": "unordered-fs",
            "glob.glob": "unordered-fs",
            "glob.iglob": "unordered-fs",
        },
        sanitizers={
            # sorting restores a deterministic order (the *values* keep
            # any wallclock/random taint they carry).
            "builtins.sorted": frozenset(
                {"unordered-set", "unordered-fs", "iter-order"}
            ),
        },
        call_sinks=(
            CallSink(
                name="rng-seed",
                callee="repro.sim.rng.SimRng",
                args=(0,),
                kwargs=("seed",),
            ),
            CallSink(name="rng-seed", attrs=("fork",), receiver="rng"),
            CallSink(
                name="cache-key",
                attrs=(
                    "spec_digest",
                    "cache_key",
                    "batch_signature",
                    "stable_hash",
                    "content_key",
                ),
            ),
            CallSink(name="journal", attrs=("append",), receiver="journal"),
            CallSink(
                name="sim-clock",
                attrs=("advance", "advance_to"),
                receiver="clock",
                args=(0,),
            ),
        ),
        attr_sinks=(AttrSink(name="sim-state", scope=_CORE_SCOPE),),
        unordered_labels=frozenset({"unordered-set", "unordered-fs"}),
        iter_order_label="iter-order",
        set_literal_label="unordered-set",
        propagate_unknown_calls=True,
        kwarg_launder=launder,
    )


class DeterminismTaintRule(FlowRule):
    """Nondeterministic values must not reach reproducibility sinks."""

    name = "flow-determinism-taint"
    family = "determinism"
    description = (
        "wall-clock/random/hash()/iteration-order values flowing (possibly "
        "through calls) into SimRng seeds, content digests, journal records, "
        "the simulated clock, or simulation state; monotonic deadlines and "
        "record timestamps are sanctioned sinks"
    )

    #: internal bookkeeping labels that never constitute a finding on
    #: their own: holding a set is fine, *iterating* it into a sink is not.
    _SILENT = frozenset({"unordered-set", "unordered-fs"})

    def check_project(self, graph: ProjectGraph) -> Iterator[Violation]:
        flows = TaintEngine(graph, _determinism_spec()).run()
        for flow in flows:
            labels = flow.labels - self._SILENT
            if not labels:
                continue
            if flow.sink == "sim-state" and labels == {"wallclock"} and (
                _TIMESTAMP_RE.search(flow.detail)
            ):
                continue  # sanctioned: a wall-clock record timestamp
            pretty = "+".join(sorted(labels))
            hint = _SINK_HINTS.get(flow.sink, "")
            yield self.violation(
                flow.relpath,
                flow.lineno,
                f"{pretty} value reaches {flow.sink} sink ({flow.detail}) "
                f"in {flow.function.rsplit('.', 1)[-1]}(); {hint}",
            )


# ---------------------------------------------------------------------------
# concurrency discipline
# ---------------------------------------------------------------------------

_LOCK_FACTORIES = {
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
}


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.X`` -> ``X`` (one level only)."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _Access:
    __slots__ = ("attr", "method", "lineno", "held", "write")

    def __init__(
        self, attr: str, method: str, lineno: int, held: frozenset[str], write: bool
    ) -> None:
        self.attr = attr
        self.method = method
        self.lineno = lineno
        self.held = held
        self.write = write


class _MethodWalker(ast.NodeVisitor):
    """Collect self-attribute accesses with the held-lock set."""

    def __init__(
        self, owner: "_ClassAnalysis", method: str
    ) -> None:
        self.owner = owner
        self.method = method
        self.held: frozenset[str] = frozenset()

    # -- lock regions ---------------------------------------------------------
    def visit_With(self, node: ast.With) -> None:
        added: set[str] = set()
        for item in node.items:
            lock = self._lock_of(item.context_expr)
            if lock is not None:
                added.add(lock)
            else:
                self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        before = self.held
        self.held = before | added
        for stmt in node.body:
            self.visit(stmt)
        self.held = before

    visit_AsyncWith = visit_With

    def _lock_of(self, expr: ast.AST) -> Optional[str]:
        attr = _self_attr(expr)
        if attr is not None and attr in self.owner.locks:
            return self.owner.locks[attr]
        return None

    # -- accesses and calls ---------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func_attr = _self_attr(node.func)
        if func_attr is not None:
            if func_attr in self.owner.methods:
                self.owner.intra_calls.append((self.method, func_attr, self.held))
            # the receiver ``self`` itself is not an attribute access.
        else:
            lock_recv = (
                self._lock_of(node.func.value)
                if isinstance(node.func, ast.Attribute)
                else None
            )
            if lock_recv is not None and isinstance(node.func, ast.Attribute):
                # self._lock.acquire()/release(): treat the rest of the
                # enclosing block conservatively as manual-locking; the
                # model does not narrow it, so skip discipline here.
                if node.func.attr in ("acquire", "release"):
                    self.owner.manual_lock_methods.add(self.method)
            self.visit(node.func)
        for arg in node.args:
            self.visit(arg)
        for kw in node.keywords:
            self.visit(kw.value)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = _self_attr(node)
        if attr is not None and attr not in self.owner.locks:
            self.owner.accesses.append(
                _Access(
                    attr=attr,
                    method=self.method,
                    lineno=node.lineno,
                    held=self.held,
                    write=isinstance(node.ctx, (ast.Store, ast.Del)),
                )
            )
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        # ``self._items[k] = v`` / ``del self._items[k]`` mutate the
        # container: count them as writes to the attribute.
        attr = _self_attr(node.value)
        if attr is not None and attr not in self.owner.locks and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            self.owner.accesses.append(
                _Access(
                    attr=attr,
                    method=self.method,
                    lineno=node.lineno,
                    held=self.held,
                    write=True,
                )
            )
            self.visit(node.slice)
            return
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested defs run in unknown thread contexts; skip

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_Lambda = visit_FunctionDef


class _ClassAnalysis:
    """Lock attrs, accesses, and intra-class call sites of one class."""

    def __init__(self, node: ast.ClassDef) -> None:
        self.node = node
        self.methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {
            item.name: item
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        self.locks: dict[str, str] = {}  # attr -> canonical lock name
        self.accesses: list[_Access] = []
        self.intra_calls: list[tuple[str, str, frozenset[str]]] = []
        self.entry_methods: set[str] = set()
        self.manual_lock_methods: set[str] = set()
        self._find_locks()

    def _find_locks(self) -> None:
        for method in self.methods.values():
            for stmt in ast.walk(method):
                if not isinstance(stmt, ast.Assign) or not isinstance(
                    stmt.value, ast.Call
                ):
                    continue
                chain = dotted_chain(stmt.value.func)
                if chain is None:
                    continue
                leaf = chain.rsplit(".", 1)[-1]
                if not any(f.endswith("." + leaf) for f in _LOCK_FACTORIES):
                    continue
                for target in stmt.targets:
                    attr = _self_attr(target)
                    if attr is None:
                        continue
                    canonical = attr
                    if leaf == "Condition" and stmt.value.args:
                        inner = _self_attr(stmt.value.args[0])
                        if inner is not None:
                            canonical = self.locks.get(inner, inner)
                    self.locks[attr] = canonical

    def analyze(self) -> None:
        for name, method in self.methods.items():
            walker = _MethodWalker(self, name)
            for stmt in method.body:
                walker.visit(stmt)
            if not name.startswith("_") or (
                name.startswith("__") and name.endswith("__")
            ):
                self.entry_methods.add(name)
        # a method referenced as a value (thread target, callback) can be
        # entered from anywhere - never a proven lock context.  Receivers
        # of direct calls (``self.m(...)``) are not value references.
        for method in self.methods.values():
            call_funcs = {
                id(node.func)
                for node in ast.walk(method)
                if isinstance(node, ast.Call)
            }
            for node in ast.walk(method):
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.ctx, ast.Load)
                    and id(node) not in call_funcs
                ):
                    attr = _self_attr(node)
                    if attr in self.methods:
                        self.entry_methods.add(attr)
        for item in self.node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for deco in item.decorator_list:
                    if isinstance(deco, ast.Name) and deco.id == "property":
                        self.entry_methods.add(item.name)

    def construction_methods(self) -> set[str]:
        """Methods reachable only from ``__init__`` chains.

        Construction runs before the object is published to any other
        thread, so lock discipline does not apply yet (the same reason
        ``__init__`` itself is exempt).
        """
        callers: dict[str, set[str]] = {}
        for caller, callee, _held in self.intra_calls:
            callers.setdefault(callee, set()).add(caller)
        construction = {"__init__"}
        changed = True
        while changed:
            changed = False
            for name in self.methods:
                if name in construction or name in self.entry_methods:
                    continue
                sites = callers.get(name)
                if sites and sites <= construction:
                    construction.add(name)
                    changed = True
        return construction

    def effective_held(self) -> dict[str, frozenset[str]]:
        """Lock set provably held on *every* path into each method.

        Call sites inside construction-phase methods are ignored: they
        run single-threaded, so they neither grant nor weaken a lock
        context for concurrent entry.
        """
        construction = self.construction_methods()
        all_locks = frozenset(self.locks.values())
        sites: dict[str, list[tuple[str, frozenset[str]]]] = {}
        for caller, callee, held in self.intra_calls:
            if caller in construction:
                continue
            sites.setdefault(callee, []).append((caller, held))
        effective: dict[str, frozenset[str]] = {}
        for name in self.methods:
            if name in self.entry_methods or name not in sites:
                effective[name] = frozenset()
            else:
                effective[name] = all_locks
        for _ in range(len(self.methods) + 1):
            changed = False
            for name, call_sites in sites.items():
                if name in self.entry_methods:
                    continue
                new: Optional[frozenset[str]] = None
                for caller, held in call_sites:
                    ctx = held | effective.get(caller, frozenset())
                    new = ctx if new is None else (new & ctx)
                new = new or frozenset()
                if new != effective.get(name):
                    effective[name] = new
                    changed = True
            if not changed:
                break
        return effective


class LockDisciplineRule(FlowRule):
    """Attributes written under a lock must always be accessed under it."""

    name = "flow-lock-discipline"
    family = "concurrency"
    description = (
        "attribute written under a threading lock somewhere but accessed "
        "without it elsewhere (lock context is propagated through the "
        "intra-class call graph; __init__ is construction and exempt)"
    )

    def check_project(self, graph: ProjectGraph) -> Iterator[Violation]:
        for module_name, module in sorted(graph.modules.items()):
            if not self.applies_to(module.relpath):
                continue
            for node in module.tree.body:
                if isinstance(node, ast.ClassDef):
                    yield from self._check_class(module.relpath, node)

    def _check_class(
        self, relpath: str, node: ast.ClassDef
    ) -> Iterator[Violation]:
        analysis = _ClassAnalysis(node)
        if not analysis.locks:
            return
        analysis.analyze()
        construction = analysis.construction_methods()
        effective = analysis.effective_held()
        guarded: dict[str, frozenset[str]] = {}
        for access in analysis.accesses:
            if access.method in construction or not access.write:
                continue
            if access.method in analysis.manual_lock_methods:
                continue
            held = access.held | effective.get(access.method, frozenset())
            if held:
                current = guarded.get(access.attr)
                guarded[access.attr] = held if current is None else (current & held)
        for attr, guard in sorted(guarded.items()):
            if not guard:
                # written under two different locks: every locked write
                # disagrees about the guard - report the writes.
                for access in analysis.accesses:
                    if access.attr == attr and access.write and access.held:
                        yield self.violation(
                            relpath,
                            access.lineno,
                            f"self.{attr} is written under different locks in "
                            f"{node.name}; pick one lock to guard it",
                        )
                continue
            lock_names = "/".join(sorted(guard))
            for access in analysis.accesses:
                if access.attr != attr or access.method in construction:
                    continue
                if access.method in analysis.manual_lock_methods:
                    continue
                held = access.held | effective.get(access.method, frozenset())
                if held & guard:
                    continue
                kind = "written" if access.write else "read"
                yield self.violation(
                    relpath,
                    access.lineno,
                    f"self.{attr} is {kind} in {node.name}.{access.method}() "
                    f"without self.{lock_names}, which guards its writes "
                    f"elsewhere",
                )


def _concurrency_spec() -> TaintSpec:
    return TaintSpec(
        call_sources={
            "threading.Lock": "lock",
            "threading.RLock": "lock",
            "threading.Condition": "lock",
            "threading.Semaphore": "lock",
            "builtins.open": "file-handle",
            "socket.socket": "socket",
            "socket.create_connection": "socket",
        },
        call_sinks=(
            CallSink(name="fork-capture", callee="multiprocessing.Process"),
            CallSink(name="fork-capture", attrs=("Process",)),
        ),
        propagate_unknown_calls=False,
    )


class ForkCaptureRule(FlowRule):
    """No lock/file/socket handle may cross a process spawn boundary."""

    name = "flow-fork-capture"
    family = "concurrency"
    description = (
        "a threading lock, open file, or socket created in the parent is "
        "passed into a multiprocessing.Process (fork-unsafe capture); "
        "worker arguments must be picklable mp primitives"
    )

    _LABELS = frozenset({"lock", "file-handle", "socket"})

    def check_project(self, graph: ProjectGraph) -> Iterator[Violation]:
        flows = TaintEngine(graph, _concurrency_spec()).run()
        for flow in flows:
            if flow.sink != "fork-capture" or not (flow.labels & self._LABELS):
                continue
            pretty = "/".join(sorted(flow.labels & self._LABELS))
            yield self.violation(
                flow.relpath,
                flow.lineno,
                f"{pretty} handle captured into a worker Process in "
                f"{flow.function.rsplit('.', 1)[-1]}(); pass mp-safe "
                f"primitives instead",
            )
        # bound-method targets drag the whole lock-holding object across
        # the spawn; catch them syntactically.
        for fn in graph.functions.values():
            if not self.applies_to(fn.relpath):
                continue
            for site in fn.calls:
                if site.attr != "Process" and not (
                    site.callee and site.callee.endswith("multiprocessing.Process")
                ):
                    continue
                for kw in site.node.keywords:
                    if kw.arg == "target":
                        attr = _self_attr(kw.value)
                        if attr is not None:
                            yield self.violation(
                                fn.relpath,
                                site.node.lineno,
                                f"Process target self.{attr} captures self "
                                f"(and any locks it holds) across the spawn; "
                                f"use a module-level function",
                            )


# ---------------------------------------------------------------------------
# protocol checks
# ---------------------------------------------------------------------------


class JournalBeforeActRule(FlowRule):
    """Every job-state mutation is followed by a journal write."""

    name = "flow-journal-before-act"
    family = "protocol"
    description = (
        "a `.state = ...` mutation in the serve service layer with no "
        "journal append/compact later in the same function; the write-"
        "ahead invariant (journal before the service acts) would not "
        "survive a crash"
    )
    scope = ("src/repro/serve/service.py",)

    _JOURNAL_ATTRS = ("append", "compact")

    def _journaling_functions(self, graph: ProjectGraph) -> set[str]:
        direct: set[str] = set()
        for fn in graph.functions.values():
            for site in fn.calls:
                if site.attr in self._JOURNAL_ATTRS and site.receiver and (
                    "journal" in site.receiver.rsplit(".", 1)[-1]
                ):
                    direct.add(fn.qualname)
                    break
        journaling = set(direct)
        changed = True
        while changed:
            changed = False
            for fn in graph.functions.values():
                if fn.qualname in journaling:
                    continue
                if graph.callees(fn.qualname) & journaling:
                    journaling.add(fn.qualname)
                    changed = True
        return journaling

    def check_project(self, graph: ProjectGraph) -> Iterator[Violation]:
        journaling = self._journaling_functions(graph)
        for fn in graph.functions.values():
            if not self.applies_to(fn.relpath):
                continue
            mutations = [
                stmt
                for stmt in ast.walk(fn.node)
                if isinstance(stmt, ast.Assign)
                and any(
                    isinstance(t, ast.Attribute) and t.attr == "state"
                    for t in stmt.targets
                )
            ]
            if not mutations:
                continue
            journal_lines = [
                site.node.lineno
                for site in fn.calls
                if (
                    site.attr in self._JOURNAL_ATTRS
                    and site.receiver
                    and "journal" in site.receiver.rsplit(".", 1)[-1]
                )
                or (site.known and site.callee in journaling)
            ]
            for mutation in mutations:
                if any(line >= mutation.lineno for line in journal_lines):
                    continue
                yield self.violation(
                    fn.relpath,
                    mutation.lineno,
                    f"job-state mutation in {fn.node.name}() is not followed "
                    f"by a journal append/compact in the same function "
                    f"(write-ahead invariant)",
                )


#: attributes that hold optional, zero-cost instrumentation hooks.
_HOOK_ATTRS = frozenset({"sanitizer", "chaos", "on_append"})


class _GuardChecker:
    """Track ``is not None`` guard regions for hook chains."""

    def __init__(self, rule: "HookSentinelRule", fn: FunctionInfo, graph: ProjectGraph):
        self.rule = rule
        self.fn = fn
        self.graph = graph
        self.aliases: set[str] = set()
        self.findings: list[tuple[int, str]] = []

    # -- condition analysis ---------------------------------------------------
    def _null_checks(self, test: ast.AST) -> tuple[frozenset[str], frozenset[str]]:
        """(chains non-None when true, chains non-None when false)."""
        chain = dotted_chain(test)
        if chain is not None:
            return frozenset({chain}), frozenset()
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            left = dotted_chain(test.left)
            is_none = isinstance(test.comparators[0], ast.Constant) and (
                test.comparators[0].value is None
            )
            if left is not None and is_none:
                if isinstance(test.ops[0], ast.IsNot):
                    return frozenset({left}), frozenset()
                if isinstance(test.ops[0], ast.Is):
                    return frozenset(), frozenset({left})
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            true_set, false_set = self._null_checks(test.operand)
            return false_set, true_set
        if isinstance(test, ast.BoolOp):
            out_true: frozenset[str] = frozenset()
            out_false: frozenset[str] = frozenset()
            for value in test.values:
                t, f = self._null_checks(value)
                if isinstance(test.op, ast.And):
                    out_true |= t
                else:
                    out_false |= f
            return (
                (out_true, frozenset())
                if isinstance(test.op, ast.And)
                else (frozenset(), out_false)
            )
        return frozenset(), frozenset()

    @staticmethod
    def _terminates(stmts: Sequence[ast.stmt]) -> bool:
        return bool(stmts) and isinstance(
            stmts[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
        )

    # -- traversal ------------------------------------------------------------
    def run(self) -> list[tuple[int, str]]:
        self._block(self.fn.node.body, frozenset())
        return self.findings

    def _block(self, stmts: Sequence[ast.stmt], guarded: frozenset[str]) -> None:
        guarded = frozenset(guarded)
        for stmt in stmts:
            guarded = self._stmt(stmt, guarded)

    def _stmt(self, stmt: ast.stmt, guarded: frozenset[str]) -> frozenset[str]:
        if isinstance(stmt, ast.If):
            true_set, false_set = self._null_checks(stmt.test)
            self._expr(stmt.test, guarded)
            self._block(stmt.body, guarded | true_set)
            self._block(stmt.orelse, guarded | false_set)
            if self._terminates(stmt.body) and not stmt.orelse:
                return guarded | false_set
            if stmt.orelse and self._terminates(stmt.orelse):
                return guarded | true_set
            return guarded
        if isinstance(stmt, ast.Assert):
            true_set, _ = self._null_checks(stmt.test)
            self._expr(stmt.test, guarded)
            return guarded | true_set
        if isinstance(stmt, ast.While):
            true_set, _ = self._null_checks(stmt.test)
            self._expr(stmt.test, guarded)
            self._block(stmt.body, guarded | true_set)
            self._block(stmt.orelse, guarded)
            return guarded
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._expr(stmt.iter, guarded)
            self._block(stmt.body, guarded)
            self._block(stmt.orelse, guarded)
            return guarded
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._expr(item.context_expr, guarded)
            self._block(stmt.body, guarded)
            return guarded
        if isinstance(stmt, ast.Try):
            self._block(stmt.body, guarded)
            for handler in stmt.handlers:
                self._block(handler.body, guarded)
            self._block(stmt.orelse, guarded)
            self._block(stmt.finalbody, guarded)
            return guarded
        if isinstance(stmt, ast.Assign):
            self._expr(stmt.value, guarded)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    value_chain = dotted_chain(stmt.value)
                    if value_chain is not None and (
                        value_chain.rsplit(".", 1)[-1] in _HOOK_ATTRS
                        or value_chain in self.aliases
                    ):
                        self.aliases.add(target.id)
                    else:
                        self.aliases.discard(target.id)
                elif isinstance(target, ast.Attribute):
                    # assigning TO the hook slot is installation, not use;
                    # still check the receiver expression.
                    self._expr(target.value, guarded)
            return guarded
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._expr(child, guarded)
            elif isinstance(child, ast.stmt):
                self._stmt(child, guarded)
        return guarded

    def _expr(self, node: ast.AST, guarded: frozenset[str]) -> None:
        if isinstance(node, ast.BoolOp):
            acc = guarded
            for value in node.values:
                self._expr(value, acc)
                true_set, false_set = self._null_checks(value)
                acc = acc | (true_set if isinstance(node.op, ast.And) else false_set)
            return
        if isinstance(node, ast.IfExp):
            true_set, false_set = self._null_checks(node.test)
            self._expr(node.test, guarded)
            self._expr(node.body, guarded | true_set)
            self._expr(node.orelse, guarded | false_set)
            return
        if isinstance(node, ast.Call):
            chain = dotted_chain(node.func)
            if chain is not None:
                self._check_use(node, chain, guarded, calling=True)
            else:
                self._expr(node.func, guarded)
            for arg in node.args:
                self._expr(arg, guarded)
            for kw in node.keywords:
                self._expr(kw.value, guarded)
            return
        if isinstance(node, ast.Attribute):
            chain = dotted_chain(node)
            if chain is not None:
                self._check_use(node, chain, guarded, calling=False)
                return
            self._expr(node.value, guarded)
            return
        if isinstance(node, (ast.Lambda,)):
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.expr, ast.keyword)):
                self._expr(child, guarded)

    def _check_use(
        self, node: ast.AST, chain: str, guarded: frozenset[str], calling: bool
    ) -> None:
        parts = chain.split(".")
        # alias call: ``hook(...)`` where hook = self.on_append
        if calling and len(parts) == 1 and parts[0] in self.aliases:
            if chain not in guarded:
                self.findings.append((node.lineno, chain))
            return
        for index, part in enumerate(parts):
            if part not in _HOOK_ATTRS or index == 0:
                continue
            prefix = ".".join(parts[: index + 1])
            # resolve module-ish prefixes away: ``chaos.active_plan`` is
            # the repro.chaos package, not a hook slot.
            qual, _known = self.graph.resolve_name(
                self.fn.module, parts[0], self.fn.class_name
            )
            if qual is not None and parts[0] != "self" and "." in (qual or ""):
                continue
            is_deref = index < len(parts) - 1
            is_hook_call = calling and index == len(parts) - 1
            if (is_deref or is_hook_call) and prefix not in guarded:
                self.findings.append((node.lineno, prefix))
            return


class HookSentinelRule(FlowRule):
    """Chaos/UVMSAN hooks stay zero-cost: every use is None-guarded."""

    name = "flow-hook-sentinel"
    family = "protocol"
    description = (
        "dereference or call of a None-sentinel instrumentation hook "
        "(.sanitizer / .chaos / .on_append) without a dominating "
        "`is not None` guard; hooks must cost nothing when disabled"
    )

    def check_project(self, graph: ProjectGraph) -> Iterator[Violation]:
        for fn in sorted(graph.functions.values(), key=lambda f: f.qualname):
            if not self.applies_to(fn.relpath):
                continue
            checker = _GuardChecker(self, fn, graph)
            for lineno, chain in checker.run():
                yield self.violation(
                    fn.relpath,
                    lineno,
                    f"unguarded use of None-sentinel hook {chain} in "
                    f"{fn.node.name}(); dominate it with "
                    f"`if {chain} is not None:`",
                )


# ---------------------------------------------------------------------------
# units flow
# ---------------------------------------------------------------------------

_UNIT_LABELS = frozenset({"u:ns", "u:bytes", "u:pages"})
_MIX_OPS = frozenset({"Add", "Sub", "Lt", "LtE", "Gt", "GtE"})


def _unit_binop(left: Labels, right: Labels, op: str) -> Labels:
    left_units = left & _UNIT_LABELS
    right_units = right & _UNIT_LABELS
    rest = (left | right) - _UNIT_LABELS
    if op in ("Div", "FloorDiv"):
        # bytes // bytes is a ratio (page counts and friends); a unit
        # divided by a plain number keeps its unit.
        return rest | (left_units if not right_units else frozenset())
    if op == "Mod":
        return rest | left_units
    return rest | left_units | right_units


def _unit_mix(left: Labels, right: Labels, op: str) -> Optional[Labels]:
    if op not in _MIX_OPS:
        return None
    left_units = left & _UNIT_LABELS
    right_units = right & _UNIT_LABELS
    if left_units and right_units and not (left_units & right_units):
        return left_units | right_units
    return None


def _units_spec() -> TaintSpec:
    return TaintSpec(
        name_sources={
            "repro.units.NS": "u:ns",
            "repro.units.US": "u:ns",
            "repro.units.MS": "u:ns",
            "repro.units.S": "u:ns",
            "repro.units.KiB": "u:bytes",
            "repro.units.MiB": "u:bytes",
            "repro.units.GiB": "u:bytes",
            "repro.units.PAGE_SIZE": "u:bytes",
            "repro.units.BIG_PAGE_SIZE": "u:bytes",
            "repro.units.VABLOCK_SIZE": "u:bytes",
        },
        call_sources={
            "repro.units.us": "u:ns",
            "repro.units.pages_to_bytes": "u:bytes",
            "repro.units.bytes_to_pages": "u:pages",
        },
        sanitizers={
            # leaving the unit system for human-facing rendering.
            "repro.units.ns_to_us": None,
            "repro.units.ns_to_ms": None,
            "repro.units.human_size": None,
            "repro.units.human_time_us": None,
            # converters strip the incoming unit; their call_sources
            # entry stamps the outgoing one.
            "repro.units.us": _UNIT_LABELS,
            "repro.units.pages_to_bytes": _UNIT_LABELS,
            "repro.units.bytes_to_pages": _UNIT_LABELS,
        },
        propagate_unknown_calls=False,
        mix=_unit_mix,
        binop_result=_unit_binop,
    )


class UnitsFlowRule(FlowRule):
    """ns/bytes/pages taints must never be added/subtracted/compared."""

    name = "flow-units-mix"
    family = "units"
    description = (
        "arithmetic (+, -, ordering) mixing ns-, bytes-, and pages-"
        "tainted values; unit taint follows repro.units constructors "
        "through assignments and call boundaries"
    )
    scope = _CORE_SCOPE

    def check_project(self, graph: ProjectGraph) -> Iterator[Violation]:
        flows = TaintEngine(graph, _units_spec()).run()
        pretty = {"u:ns": "ns", "u:bytes": "bytes", "u:pages": "pages"}
        for flow in flows:
            if flow.sink != "mix":
                continue
            units = " and ".join(
                sorted(pretty[l] for l in flow.labels if l in pretty)
            )
            yield self.violation(
                flow.relpath,
                flow.lineno,
                f"{flow.detail} combines {units} values in "
                f"{flow.function.rsplit('.', 1)[-1]}(); convert explicitly "
                f"via repro.units first",
            )


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


def default_flow_rules(
    analyses: Sequence[str] | None = None,
) -> list[FlowRule]:
    """The flow-rule set, optionally narrowed to named families."""
    rules: list[FlowRule] = [
        DeterminismTaintRule(),
        LockDisciplineRule(),
        ForkCaptureRule(),
        JournalBeforeActRule(),
        HookSentinelRule(),
        UnitsFlowRule(),
    ]
    if analyses is None:
        return rules
    wanted = set(analyses)
    unknown = wanted - set(FAMILIES)
    if unknown:
        raise ValueError(
            f"unknown analysis families {sorted(unknown)}; pick from {FAMILIES}"
        )
    return [rule for rule in rules if rule.family in wanted]
