"""UVMSAN: runtime invariant sanitizer for the driver pipeline.

The paper's instrumentation trusts the driver state machine implicitly;
in the simulator a prefetch or eviction bug does not crash - it shows
up as a *wrong exhibit number*.  UVMSAN makes those bugs loud: with
``UVMREPRO_SANITIZE=1`` the driver re-verifies the Section III-V
invariants at every batch boundary and raises :class:`SanitizerError`
at the first inconsistency:

* residency bookkeeping is self-consistent
  (:meth:`~repro.mem.residency.ResidencyState.check_invariants`),
* the GPU page table maps exactly the resident/remote pages and the
  host table exactly the non-resident/duplicated ones,
* fault batches never exceed the configured batch size (256 default),
* eviction is whole-VABlock (2 MiB granularity): a victim is torn down
  completely and leaves the LRU list,
* the LRU list covers exactly the backed VABlocks and evicts the
  least-recently-faulted one (monotonicity is tracked in
  :mod:`repro.core.eviction` under the same switch),
* prefetch only targets non-resident pages of the backed VABlock being
  serviced.

When the switch is off (the default), the hooks reduce to one ``None``
check per call site - no arrays are touched and no state is kept, so
production runs pay nothing measurable.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mem.residency import ResidencyState

#: the environment switch; any value other than "" / "0" enables UVMSAN.
ENV_VAR = "UVMREPRO_SANITIZE"

_cached: Optional[bool] = None


def enabled() -> bool:
    """Whether UVMSAN is on (cached; see :func:`set_enabled`)."""
    global _cached
    if _cached is None:
        _cached = os.environ.get(ENV_VAR, "") not in ("", "0")
    return _cached


def set_enabled(value: Optional[bool]) -> None:
    """Force the switch on/off, or ``None`` to re-read the environment.

    Components snapshot the switch when constructed (e.g. the LRU
    policy's monotonicity tracking), so flip it *before* building a
    driver - mid-run flips are not supported.
    """
    global _cached
    _cached = value


class SanitizerError(SimulationError):
    """A driver state-machine invariant was violated at runtime."""


class UvmSanitizer:
    """The assertion hooks the driver calls when UVMSAN is enabled."""

    __slots__ = ("checks_run",)

    def __init__(self) -> None:
        self.checks_run = 0

    @staticmethod
    def _fail(context: str, detail: str) -> "SanitizerError":
        return SanitizerError(f"UVMSAN[{context}]: {detail}")

    # -- batch assembly (Section III-C) ------------------------------------
    def check_batch(self, batch, max_size: int) -> None:
        """A drained batch never exceeds the configured batch size."""
        self.checks_run += 1
        if len(batch) > max_size:
            raise self._fail(
                "batch", f"assembled {len(batch)} faults > batch_size {max_size}"
            )

    # -- whole-state sweep (Sections III-D, V-A) ---------------------------
    def check_state(self, residency: "ResidencyState", gpu_table, host_table, lru) -> None:
        """Cross-structure consistency at a batch boundary."""
        self.checks_run += 1
        try:
            residency.check_invariants()
        except SimulationError as exc:
            raise self._fail("residency", str(exc)) from exc
        try:
            gpu_table.check_mapped(residency.expected_gpu_mapped(), "resident|remote")
            host_table.check_mapped(residency.expected_host_mapped(), "~resident|dup")
        except SimulationError as exc:
            raise self._fail("page-table", str(exc)) from exc
        order = getattr(lru, "order", None)
        if order is not None:
            listed = np.sort(np.asarray(order(), dtype=np.int64))
            backed = np.flatnonzero(residency.backed)
            if not np.array_equal(listed, backed):
                raise self._fail(
                    "lru",
                    f"LRU membership {listed.tolist()[:8]}... does not match "
                    f"backed VABlocks {backed.tolist()[:8]}...",
                )

    # -- eviction (Section V-A) --------------------------------------------
    def check_eviction(self, residency: "ResidencyState", victim: int, lru) -> None:
        """Post-conditions of one eviction: whole-VABlock teardown."""
        self.checks_run += 1
        if residency.backed[victim]:
            raise self._fail("evict", f"victim VABlock {victim} still backed")
        if residency.resident_count[victim]:
            raise self._fail(
                "evict", f"victim VABlock {victim} still counts resident pages"
            )
        start, stop = residency.space.page_span_of_vablock(victim)
        if residency.resident[start:stop].any():
            raise self._fail(
                "evict",
                f"partial eviction: resident pages left in VABlock {victim} "
                f"(2 MiB whole-block granularity violated)",
            )
        if victim in lru:
            raise self._fail("evict", f"victim VABlock {victim} still on LRU list")

    # -- prefetch (Section IV-A) -------------------------------------------
    def check_prefetch(
        self, residency: "ResidencyState", vablock_id: int, prefetch_pages: np.ndarray
    ) -> None:
        """Prefetch targets live in the serviced, backed VABlock only."""
        self.checks_run += 1
        if prefetch_pages.size == 0:
            return
        if not residency.backed[vablock_id]:
            raise self._fail(
                "prefetch",
                f"prefetch into VABlock {vablock_id} without physical backing",
            )
        start, stop = residency.space.page_span_of_vablock(vablock_id)
        if int(prefetch_pages.min()) < start or int(prefetch_pages.max()) >= stop:
            raise self._fail(
                "prefetch", f"prefetch escaped serviced VABlock {vablock_id}"
            )
        if residency.resident[prefetch_pages].any():
            raise self._fail("prefetch", "prefetch of already-resident pages")


def make_sanitizer() -> Optional[UvmSanitizer]:
    """The driver's constructor hook: a sanitizer when on, else None."""
    return UvmSanitizer() if enabled() else None
