"""Package-wide module graph and best-effort call graph.

The per-statement rules in :mod:`repro.checks.rules` see one file at a
time; the flow analyses (:mod:`repro.checks.flow_rules`) need to follow
a value *across* functions and modules.  This module builds the shared
substrate: every module under the lint root parsed once, an import
table per module, an index of every function/method by qualified name,
and a call graph whose edges are resolved as far as pure syntax allows.

Resolution is deliberately best-effort and *sound for our sources*: a
call we cannot attribute to a known function still records its dotted
callee text (``time.time``, ``self.journal.append``), which is exactly
what the taint sources and sinks match on.  Dynamic dispatch, decorators
that rebind, and ``getattr`` tricks are out of scope - the analyses err
quiet, and the planted-bug fixtures pin the flows they must catch.

Everything here is stdlib ``ast``; no imports are executed.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional, Sequence

from repro.checks.linter import ParsedModule, iter_python_files

#: names resolvable without an import (``hash``, ``open``, ``sorted`` ...).
_BUILTIN_NAMES = frozenset(dir(builtins))


def module_name_for(relpath: str) -> str:
    """Dotted module name of a repo-relative posix path.

    ``src/repro/serve/cache.py`` -> ``repro.serve.cache``;
    package ``__init__.py`` files name the package itself.
    """
    parts = relpath.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return ""
    leaf = parts[-1]
    if leaf.endswith(".py"):
        leaf = leaf[: -len(".py")]
    parts[-1] = leaf
    if leaf == "__init__":
        parts = parts[:-1]
    return ".".join(p for p in parts if p)


def dotted_chain(node: ast.AST) -> Optional[str]:
    """``a.b.c`` rendered as text, or None for non-Name/Attribute roots."""
    names: list[str] = []
    while isinstance(node, ast.Attribute):
        names.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    names.append(node.id)
    return ".".join(reversed(names))


@dataclass
class CallSite:
    """One call expression inside a function, as resolved as we can."""

    node: ast.Call
    #: best-effort dotted callee name (``time.time``,
    #: ``repro.serve.service.SimulationService._finish``); None when the
    #: callee is itself a computed expression.
    callee: Optional[str]
    #: trailing attribute for method-style calls (``append``), else None.
    attr: Optional[str]
    #: dotted receiver text for method-style calls (``self.journal``).
    receiver: Optional[str]
    #: True when ``callee`` names a function/class in the project graph.
    known: bool = False


@dataclass
class FunctionInfo:
    """One function or method in the project."""

    qualname: str
    module: str
    relpath: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: Optional[str] = None
    calls: list[CallSite] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def is_public(self) -> bool:
        return not self.node.name.startswith("_")

    def param_names(self) -> list[str]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args]
        if args.vararg:
            names.append(args.vararg.arg)
        names.extend(a.arg for a in args.kwonlyargs)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return names


@dataclass
class ClassInfo:
    """One class definition and its method table."""

    qualname: str
    module: str
    node: ast.ClassDef
    methods: dict[str, str] = field(default_factory=dict)  # name -> fn qualname
    bases: tuple[str, ...] = ()


class ProjectGraph:
    """All modules under a root, with function index and call graph."""

    def __init__(self, root: Path) -> None:
        self.root = root.resolve()
        self.modules: dict[str, ParsedModule] = {}
        #: module -> local alias -> fully dotted target.
        self.imports: dict[str, dict[str, str]] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: caller qualname -> known callee qualnames.
        self.edges: dict[str, set[str]] = {}
        self.parse_errors: list[str] = []

    # -- construction ---------------------------------------------------------
    @classmethod
    def build(
        cls, root: Path, paths: Sequence[Path] | None = None
    ) -> "ProjectGraph":
        graph = cls(root)
        root = graph.root
        if paths is None:
            default = root / "src" / "repro"
            paths = [default] if default.is_dir() else [root]
        for path in iter_python_files(root, paths):
            try:
                module = ParsedModule(root, path.resolve())
            except (SyntaxError, UnicodeDecodeError, ValueError) as exc:
                graph.parse_errors.append(f"{path}: {exc}")
                continue
            name = module_name_for(module.relpath)
            graph.modules[name] = module
        for name, module in graph.modules.items():
            graph.imports[name] = graph._collect_imports(name, module.tree)
            graph._index_definitions(name, module)
        for name, module in graph.modules.items():
            graph._resolve_calls(name, module)
        return graph

    @staticmethod
    def _collect_imports(module: str, tree: ast.Module) -> dict[str, str]:
        table: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    table[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    parts = module.split(".")
                    # ``from . import x`` inside package p: level 1 strips
                    # the module leaf, further levels strip packages.
                    anchor = parts[: len(parts) - node.level]
                    base = ".".join(anchor + ([node.module] if node.module else []))
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    table[local] = f"{base}.{alias.name}" if base else alias.name
        return table

    def _index_definitions(self, name: str, module: ParsedModule) -> None:
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{name}.{node.name}"
                self.functions[qual] = FunctionInfo(
                    qualname=qual, module=name, relpath=module.relpath, node=node
                )
            elif isinstance(node, ast.ClassDef):
                cls_qual = f"{name}.{node.name}"
                info = ClassInfo(
                    qualname=cls_qual,
                    module=name,
                    node=node,
                    bases=tuple(
                        b for b in (dotted_chain(base) for base in node.bases) if b
                    ),
                )
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        fn_qual = f"{cls_qual}.{item.name}"
                        info.methods[item.name] = fn_qual
                        self.functions[fn_qual] = FunctionInfo(
                            qualname=fn_qual,
                            module=name,
                            relpath=module.relpath,
                            node=item,
                            class_name=node.name,
                        )
                self.classes[cls_qual] = info

    # -- resolution -----------------------------------------------------------
    def resolve_name(
        self, module: str, chain: str, class_name: Optional[str] = None
    ) -> tuple[Optional[str], bool]:
        """Map a dotted chain in ``module`` to a qualified name.

        Returns ``(qualified_name, known)``: ``known`` is True when the
        name lands on a function/class parsed into this graph.  A chain
        rooted at an import resolves through the import table even when
        the target is outside the project (``time.time`` -> known=False),
        which is what source/sink matching needs.
        """
        parts = chain.split(".")
        head, rest = parts[0], parts[1:]
        if head == "self" and class_name and rest:
            cls = self.classes.get(f"{module}.{class_name}")
            if cls and len(rest) == 1 and rest[0] in cls.methods:
                return cls.methods[rest[0]], True
            return None, False
        table = self.imports.get(module, {})
        if head in table:
            target = table[head]
            qual = ".".join([target] + rest) if rest else target
            if qual in self.functions or qual in self.classes:
                return qual, True
            # ``from repro.sim.rng import SimRng`` then ``SimRng.fork``:
            # the import target itself may be a known class.
            if target in self.classes and len(rest) == 1:
                method = self.classes[target].methods.get(rest[0])
                if method:
                    return method, True
            return qual, qual in self.modules
        local = f"{module}.{chain}"
        if local in self.functions or local in self.classes:
            return local, True
        if not rest and head in _BUILTIN_NAMES:
            return f"builtins.{head}", False
        return None, False

    def _resolve_calls(self, name: str, module: ParsedModule) -> None:
        for fn in self.functions_in_module(name):
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                site = self._resolve_call(name, fn, node)
                fn.calls.append(site)
                if site.known and site.callee:
                    target = site.callee
                    if target in self.classes:
                        init = self.classes[target].methods.get("__init__")
                        target = init or target
                    self.edges.setdefault(fn.qualname, set()).add(target)

    def _resolve_call(
        self, module: str, fn: FunctionInfo, node: ast.Call
    ) -> CallSite:
        chain = dotted_chain(node.func)
        attr = node.func.attr if isinstance(node.func, ast.Attribute) else None
        receiver = (
            dotted_chain(node.func.value)
            if isinstance(node.func, ast.Attribute)
            else None
        )
        if chain is None:
            return CallSite(node=node, callee=None, attr=attr, receiver=receiver)
        qual, known = self.resolve_name(module, chain, fn.class_name)
        return CallSite(
            node=node, callee=qual or chain, attr=attr, receiver=receiver, known=known
        )

    # -- queries --------------------------------------------------------------
    def functions_in_module(self, module: str) -> Iterator[FunctionInfo]:
        for fn in self.functions.values():
            if fn.module == module:
                yield fn

    def callees(self, qualname: str) -> frozenset[str]:
        return frozenset(self.edges.get(qualname, ()))

    def callers(self, qualname: str) -> frozenset[str]:
        return frozenset(
            caller for caller, targets in self.edges.items() if qualname in targets
        )

    def transitive_callees(self, qualname: str) -> frozenset[str]:
        seen: set[str] = set()
        frontier = [qualname]
        while frontier:
            current = frontier.pop()
            for callee in self.edges.get(current, ()):
                if callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        return frozenset(seen)

    def call_order(self) -> list[str]:
        """Functions in roughly bottom-up (callee-first) order.

        Cycles (recursion) are broken arbitrarily; the dataflow engine
        iterates to a fixpoint anyway, the order just makes it converge
        in fewer rounds.
        """
        order: list[str] = []
        state: dict[str, int] = {}  # 1 = visiting, 2 = done

        def visit(qual: str) -> None:
            stack = [(qual, iter(sorted(self.edges.get(qual, ()))))]
            state[qual] = 1
            while stack:
                current, children = stack[-1]
                advanced = False
                for child in children:
                    if child in self.functions and child not in state:
                        state[child] = 1
                        stack.append(
                            (child, iter(sorted(self.edges.get(child, ()))))
                        )
                        advanced = True
                        break
                if not advanced:
                    state[current] = 2
                    order.append(current)
                    stack.pop()

        for qual in sorted(self.functions):
            if qual not in state:
                visit(qual)
        return order
