"""Explicit direct-transfer baseline (Fig. 1's comparison line).

The paper's Fig. 1 compares UVM page-touch kernels against "explicit
direct management by programmers": ``cudaMemcpy`` of the whole working
set up front, after which the kernel runs fault-free.  The baseline cost
is therefore per-allocation copy launches plus wire time at the explicit
path's bandwidth - no driver involvement, no faults, no page-granular
overhead, which is exactly why it is one or more orders of magnitude
faster at small-to-medium sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.sim.costmodel import CostModel


def explicit_transfer_time_ns(
    cost: CostModel,
    nbytes: int,
    n_allocations: int = 1,
) -> int:
    """Simulated ns to explicitly copy ``nbytes`` split over allocations."""
    if nbytes < 0:
        raise ConfigurationError("nbytes must be non-negative")
    if n_allocations < 1:
        raise ConfigurationError("n_allocations must be >= 1")
    return cost.explicit_copy_ns(nbytes, calls=n_allocations)


@dataclass(frozen=True)
class ExplicitTransferBaseline:
    """Convenience wrapper pairing a cost model with the baseline math."""

    cost: CostModel

    def time_ns(self, nbytes: int, n_allocations: int = 1) -> int:
        return explicit_transfer_time_ns(self.cost, nbytes, n_allocations)

    def time_us(self, nbytes: int, n_allocations: int = 1) -> float:
        return self.time_ns(nbytes, n_allocations) / 1000.0

    def effective_bandwidth(self, nbytes: int) -> float:
        """Bytes per second achieved, including launch overhead."""
        t_ns = self.time_ns(nbytes)
        return nbytes * 1e9 / t_ns if t_ns else float("inf")
