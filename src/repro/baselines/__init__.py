"""Baselines the paper compares UVM against."""

from repro.baselines.explicit import ExplicitTransferBaseline, explicit_transfer_time_ns

__all__ = ["ExplicitTransferBaseline", "explicit_transfer_time_ns"]
