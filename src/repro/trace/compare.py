"""A/B comparison of instrumented runs.

Every ablation in this repository is a two-run comparison (prefetch
on/off, policy X/Y, granule A/B ...).  This module renders such pairs
uniformly: counters side by side with ratios, category timers, and the
headline quantities the paper uses (total time, faults, evictions,
bytes moved), so any knob's effect can be inspected with one call - or
from the shell via ``uvmrepro compare``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.trace.export import render_series
from repro.units import ns_to_us

if TYPE_CHECKING:  # import only for annotations: core imports trace
    from repro.core.driver import RunResult


@dataclass
class ComparisonRow:
    metric: str
    a: float
    b: float

    @property
    def ratio(self) -> float:
        if self.a == 0:
            return float("inf") if self.b else 1.0
        return self.b / self.a


@dataclass
class RunComparison:
    label_a: str
    label_b: str
    rows: list[ComparisonRow] = field(default_factory=list)

    def row(self, metric: str) -> ComparisonRow:
        for r in self.rows:
            if r.metric == metric:
                return r
        raise KeyError(metric)

    def render(self, title: str = "run comparison") -> str:
        def fmt_ratio(r: ComparisonRow) -> str:
            if r.ratio == float("inf"):
                return "new"
            return f"{r.ratio:.3g}x"

        table = [(r.metric, r.a, r.b, fmt_ratio(r)) for r in self.rows]
        return render_series(
            table,
            headers=("metric", self.label_a, self.label_b, "b/a"),
            title=title,
        )


#: headline metrics, in reporting order.
_HEADLINES = (
    ("total time (us)", lambda r: ns_to_us(r.total_time_ns)),
    ("faults read", lambda r: float(r.faults_read)),
    ("faults serviced", lambda r: float(r.faults_serviced)),
    ("evictions", lambda r: float(r.evictions)),
    ("pages evicted", lambda r: float(r.pages_evicted)),
    ("MiB moved", lambda r: r.dma.total_bytes / (1 << 20)),
    ("replays", lambda r: float(r.counters["replays.issued"])),
    ("prefetched pages", lambda r: float(r.counters["pages.prefetch_h2d"])),
)

#: driver-time categories compared in microseconds.
_CATEGORIES = ("preprocess", "service", "replay_policy")


def compare_runs(
    a: "RunResult",
    b: "RunResult",
    label_a: str = "A",
    label_b: str = "B",
    extra_counters: Sequence[str] = (),
) -> RunComparison:
    """Build the standard A/B comparison of two run results."""
    comparison = RunComparison(label_a=label_a, label_b=label_b)
    for name, getter in _HEADLINES:
        comparison.rows.append(ComparisonRow(name, getter(a), getter(b)))
    for category in _CATEGORIES:
        comparison.rows.append(
            ComparisonRow(
                f"{category} (us)",
                ns_to_us(a.timer.total_ns(category)),
                ns_to_us(b.timer.total_ns(category)),
            )
        )
    for counter in extra_counters:
        comparison.rows.append(
            ComparisonRow(counter, float(a.counters[counter]), float(b.counters[counter]))
        )
    return comparison
