"""Driver instrumentation: trace recording, analysis, and export.

The paper's methodology is instrumenting the UVM driver and analyzing
the resulting event streams (fault orderings for Fig. 7-8, category
timings for Fig. 3-5 and 9, fault/eviction counts for Tables I-II).
This subpackage is the equivalent instrumentation for the simulator.
"""

from repro.trace.recorder import NullRecorder, TraceRecorder
from repro.trace.analysis import (
    AccessPattern,
    eviction_summary,
    extract_access_pattern,
    fault_reduction,
)
from repro.trace.export import render_scatter, render_series, write_csv
from repro.trace.compare import RunComparison, compare_runs
from repro.trace.io import load_trace, save_trace

__all__ = [
    "save_trace",
    "load_trace",
    "compare_runs",
    "RunComparison",
    "TraceRecorder",
    "NullRecorder",
    "AccessPattern",
    "extract_access_pattern",
    "fault_reduction",
    "eviction_summary",
    "render_scatter",
    "render_series",
    "write_csv",
]
