"""Columnar event recording for driver runs.

Events append into plain Python lists (cheap per event) and finalize
into numpy arrays for vectorized analysis.  Recording is optional: the
driver accepts a :class:`NullRecorder` when only counters/timers are
needed, keeping large sweeps lean.

Recorded streams:

* **faults** - every fault entry processed by the driver, in processing
  order ("fault occurrence is the relative order that pages were
  processed by the driver", Fig. 7), with a duplicate flag,
* **services** - per VABlock-bin service: demand and prefetch page counts,
* **evictions** - per eviction: victim block, pages dropped/dirty
  (Fig. 8 plots these at the time step they are issued),
* **replays** and **batches** - policy-level events.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class FinalizedTrace:
    """Numpy views over a completed run's event streams."""

    # faults
    fault_time_ns: np.ndarray
    fault_page: np.ndarray
    fault_vablock: np.ndarray
    fault_stream: np.ndarray
    fault_duplicate: np.ndarray
    # services
    service_time_ns: np.ndarray
    service_vablock: np.ndarray
    service_demand: np.ndarray
    service_prefetch: np.ndarray
    # evictions
    evict_time_ns: np.ndarray
    evict_vablock: np.ndarray
    evict_pages: np.ndarray
    evict_dirty: np.ndarray
    #: fault index (into the fault stream) at which each eviction occurred,
    #: aligning evictions with fault occurrence for Fig. 8.
    evict_fault_index: np.ndarray
    # replays / batches
    replay_time_ns: np.ndarray
    batch_time_ns: np.ndarray
    batch_read: np.ndarray
    batch_duplicate: np.ndarray

    @property
    def n_faults(self) -> int:
        return int(self.fault_page.size)

    @property
    def n_evictions(self) -> int:
        return int(self.evict_vablock.size)


class TraceRecorder:
    """Appends driver events; finalize() yields a :class:`FinalizedTrace`."""

    enabled = True

    def __init__(self) -> None:
        self._fault_t: list[int] = []
        self._fault_page: list[int] = []
        self._fault_vb: list[int] = []
        self._fault_stream: list[int] = []
        self._fault_dup: list[bool] = []
        self._svc_t: list[int] = []
        self._svc_vb: list[int] = []
        self._svc_demand: list[int] = []
        self._svc_prefetch: list[int] = []
        self._ev_t: list[int] = []
        self._ev_vb: list[int] = []
        self._ev_pages: list[int] = []
        self._ev_dirty: list[int] = []
        self._ev_fault_idx: list[int] = []
        self._replay_t: list[int] = []
        self._batch_t: list[int] = []
        self._batch_read: list[int] = []
        self._batch_dup: list[int] = []

    # -- event hooks (called by the driver) -----------------------------------
    def record_fault(
        self, t_ns: int, page: int, vablock: int, stream: int, duplicate: bool
    ) -> None:
        self._fault_t.append(t_ns)
        self._fault_page.append(page)
        self._fault_vb.append(vablock)
        self._fault_stream.append(stream)
        self._fault_dup.append(duplicate)

    def record_service(
        self, t_ns: int, vablock: int, n_demand: int, n_prefetch: int
    ) -> None:
        self._svc_t.append(t_ns)
        self._svc_vb.append(vablock)
        self._svc_demand.append(n_demand)
        self._svc_prefetch.append(n_prefetch)

    def record_eviction(
        self, t_ns: int, vablock: int, n_pages: int, n_dirty: int
    ) -> None:
        self._ev_t.append(t_ns)
        self._ev_vb.append(vablock)
        self._ev_pages.append(n_pages)
        self._ev_dirty.append(n_dirty)
        self._ev_fault_idx.append(len(self._fault_t))

    def record_replay(self, t_ns: int) -> None:
        self._replay_t.append(t_ns)

    def record_batch(self, t_ns: int, n_read: int, n_duplicate: int) -> None:
        self._batch_t.append(t_ns)
        self._batch_read.append(n_read)
        self._batch_dup.append(n_duplicate)

    # -- finalize ---------------------------------------------------------------
    def finalize(self) -> FinalizedTrace:
        def arr(data, dtype=np.int64):
            return np.asarray(data, dtype=dtype)

        return FinalizedTrace(
            fault_time_ns=arr(self._fault_t),
            fault_page=arr(self._fault_page),
            fault_vablock=arr(self._fault_vb),
            fault_stream=arr(self._fault_stream),
            fault_duplicate=arr(self._fault_dup, dtype=bool),
            service_time_ns=arr(self._svc_t),
            service_vablock=arr(self._svc_vb),
            service_demand=arr(self._svc_demand),
            service_prefetch=arr(self._svc_prefetch),
            evict_time_ns=arr(self._ev_t),
            evict_vablock=arr(self._ev_vb),
            evict_pages=arr(self._ev_pages),
            evict_dirty=arr(self._ev_dirty),
            evict_fault_index=arr(self._ev_fault_idx),
            replay_time_ns=arr(self._replay_t),
            batch_time_ns=arr(self._batch_t),
            batch_read=arr(self._batch_read),
            batch_duplicate=arr(self._batch_dup),
        )


class NullRecorder(TraceRecorder):
    """Discards all events (for counter/timer-only sweeps)."""

    enabled = False

    def __init__(self) -> None:  # noqa: D107 - no storage at all
        pass

    def record_fault(self, t_ns, page, vablock, stream, duplicate) -> None:
        pass

    def record_service(self, t_ns, vablock, n_demand, n_prefetch) -> None:
        pass

    def record_eviction(self, t_ns, vablock, n_pages, n_dirty) -> None:
        pass

    def record_replay(self, t_ns) -> None:
        pass

    def record_batch(self, t_ns, n_read, n_duplicate) -> None:
        pass

    def finalize(self) -> FinalizedTrace:
        empty = np.empty(0, dtype=np.int64)
        empty_bool = np.empty(0, dtype=bool)
        return FinalizedTrace(
            fault_time_ns=empty,
            fault_page=empty,
            fault_vablock=empty,
            fault_stream=empty,
            fault_duplicate=empty_bool,
            service_time_ns=empty,
            service_vablock=empty,
            service_demand=empty,
            service_prefetch=empty,
            evict_time_ns=empty,
            evict_vablock=empty,
            evict_pages=empty,
            evict_dirty=empty,
            evict_fault_index=empty,
            replay_time_ns=empty,
            batch_time_ns=empty,
            batch_read=empty,
            batch_duplicate=empty,
        )
