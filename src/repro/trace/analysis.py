"""Trace analysis: the computations behind the paper's exhibits.

* :func:`extract_access_pattern` - Fig. 7/8's (fault occurrence, page
  index) scatter, with the page axis "adjusted so that there are no gaps
  in the virtual memory space" and range boundaries marked,
* :func:`fault_reduction` - Table I's coverage metric,
* :func:`eviction_summary` - Table II's eviction scaling quantities,
* :func:`duplicate_rate`, :func:`faults_per_vablock` - driver-load
  diagnostics used in the discussion sections.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError
from repro.mem.address_space import AddressSpace
from repro.trace.recorder import FinalizedTrace


@dataclass
class AccessPattern:
    """Fig. 7-style access pattern data for one run."""

    #: fault processing order (0..n-1)
    occurrence: np.ndarray
    #: gap-adjusted page index per fault
    page_index: np.ndarray
    #: gap-adjusted page index where each allocation begins (the black
    #: separator lines in Fig. 7)
    range_boundaries: list[int]
    range_names: list[str]
    #: occurrence indices at which evictions happened (Fig. 8 overlays)
    eviction_occurrence: np.ndarray
    #: gap-adjusted page of each evicted VABlock's first page
    eviction_page_index: np.ndarray

    @property
    def n_faults(self) -> int:
        return int(self.page_index.size)


def _gap_adjusted_pages(pages: np.ndarray, space: AddressSpace) -> np.ndarray:
    """Map global pages to a compact axis without inter-range padding."""
    adjusted = np.asarray(pages, dtype=np.int64).copy()
    offset = 0
    out = np.empty_like(adjusted)
    for rng in space.ranges:
        in_range = (adjusted >= rng.start_page) & (adjusted < rng.end_page_aligned)
        out[in_range] = adjusted[in_range] - rng.start_page + offset
        offset += rng.npages
    return out


def _range_boundaries(space: AddressSpace) -> tuple[list[int], list[str]]:
    bounds, names = [], []
    offset = 0
    for rng in space.ranges:
        bounds.append(offset)
        names.append(rng.name)
        offset += rng.npages
    return bounds, names


def extract_access_pattern(
    trace: FinalizedTrace,
    space: AddressSpace,
    include_duplicates: bool = False,
) -> AccessPattern:
    """Build the Fig. 7/8 scatter data from a recorded trace."""
    if trace.fault_page.size == 0:
        raise TraceError("trace contains no faults; was recording enabled?")
    keep = (
        np.ones(trace.fault_page.shape, dtype=bool)
        if include_duplicates
        else ~trace.fault_duplicate
    )
    pages = trace.fault_page[keep]
    occurrence = np.flatnonzero(keep).astype(np.int64)
    bounds, names = _range_boundaries(space)
    ppv = space.pages_per_vablock
    evict_first_page = trace.evict_vablock * ppv
    return AccessPattern(
        occurrence=occurrence,
        page_index=_gap_adjusted_pages(pages, space),
        range_boundaries=bounds,
        range_names=names,
        eviction_occurrence=trace.evict_fault_index.astype(np.int64),
        eviction_page_index=_gap_adjusted_pages(evict_first_page, space)
        if evict_first_page.size
        else np.empty(0, dtype=np.int64),
    )


def fault_reduction(faults_without: int, faults_with: int) -> float:
    """Table I's reduction percentage ("equivalent to fault coverage")."""
    if faults_without < 0 or faults_with < 0:
        raise TraceError("fault counts must be non-negative")
    if faults_without == 0:
        return 0.0
    return 100.0 * (faults_without - faults_with) / faults_without


@dataclass
class EvictionSummary:
    """Table II quantities for one run."""

    n_faults: int
    n_evictions: int
    pages_evicted: int
    evictions_per_fault: float
    pages_evicted_per_fault: float


def eviction_summary(n_faults: int, n_evictions: int, pages_evicted: int) -> EvictionSummary:
    """Aggregate the eviction-scaling metrics of Table II."""
    return EvictionSummary(
        n_faults=n_faults,
        n_evictions=n_evictions,
        pages_evicted=pages_evicted,
        evictions_per_fault=(n_evictions / n_faults) if n_faults else 0.0,
        pages_evicted_per_fault=(pages_evicted / n_faults) if n_faults else 0.0,
    )


def bin_size_distribution(trace: FinalizedTrace) -> np.ndarray:
    """Demand pages per serviced VABlock bin.

    The quantity behind Section III-D's first insight: "a batch
    containing fewer fully faulted VABlocks takes much less time than a
    batch containing VABlocks each with one page fault".  Regular access
    concentrates faults (large bins); random scatters them (single-page
    bins).
    """
    return trace.service_demand.copy()


def prefetch_ratio(trace: FinalizedTrace) -> float:
    """Fraction of all migrated pages that were prefetched (0..1)."""
    demand = int(trace.service_demand.sum())
    prefetched = int(trace.service_prefetch.sum())
    total = demand + prefetched
    return prefetched / total if total else 0.0


def vablock_residency_lifetimes(trace: FinalizedTrace) -> np.ndarray:
    """Simulated ns between each eviction and its block's last service.

    Short lifetimes are the Section V pathology: memory cycled before
    the data earned its transfer cost.
    """
    if trace.evict_vablock.size == 0:
        return np.empty(0, dtype=np.int64)
    last_service: dict[int, int] = {}
    svc_idx = 0
    lifetimes = []
    svc_vb, svc_t = trace.service_vablock, trace.service_time_ns
    for ev_vb, ev_t in zip(trace.evict_vablock, trace.evict_time_ns):
        while svc_idx < svc_vb.size and svc_t[svc_idx] <= ev_t:
            last_service[int(svc_vb[svc_idx])] = int(svc_t[svc_idx])
            svc_idx += 1
        born = last_service.get(int(ev_vb))
        if born is not None:
            lifetimes.append(int(ev_t) - born)
    return np.asarray(lifetimes, dtype=np.int64)


def refault_distances(trace: FinalizedTrace, max_window: int = 10**9) -> np.ndarray:
    """Faults until each evicted block faults again (-1 = never).

    Generalizes Fig. 8's evict-then-refault counting: a small distance
    means the LRU evicted data that was about to be used.
    """
    if trace.evict_vablock.size == 0:
        return np.empty(0, dtype=np.int64)
    distances = np.full(trace.evict_vablock.shape, -1, dtype=np.int64)
    fault_vb = trace.fault_vablock
    for i, (vb, idx) in enumerate(zip(trace.evict_vablock, trace.evict_fault_index)):
        upcoming = fault_vb[idx : idx + max_window]
        hits = np.flatnonzero(upcoming == vb)
        if hits.size:
            distances[i] = int(hits[0])
    return distances


def duplicate_rate(trace: FinalizedTrace) -> float:
    """Fraction of driver-observed faults that were duplicates."""
    if trace.fault_page.size == 0:
        return 0.0
    return float(trace.fault_duplicate.mean())


def faults_per_vablock(trace: FinalizedTrace, total_vablocks: int) -> np.ndarray:
    """Histogram of unique faults over VABlocks (driver-load skew)."""
    keep = ~trace.fault_duplicate
    return np.bincount(trace.fault_vablock[keep], minlength=total_vablocks)
