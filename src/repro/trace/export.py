"""Terminal/CSV rendering of experiment outputs.

The paper's figures are scatter plots and stacked bars; these renderers
produce faithful ASCII equivalents so every exhibit can be regenerated
and eyeballed in a terminal (the benchmark harness prints them), plus a
CSV writer for anyone who wants real plots.
"""

from __future__ import annotations

import csv
import math
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.errors import TraceError


def render_scatter(
    x: np.ndarray,
    y: np.ndarray,
    width: int = 78,
    height: int = 22,
    title: str = "",
    hlines: Sequence[int] = (),
    overlay: tuple[np.ndarray, np.ndarray] | None = None,
) -> str:
    """ASCII scatter plot: ``*`` for points, ``x`` for overlay points.

    ``hlines`` draws horizontal separators (Fig. 7's allocation
    boundaries).  Axes are linear; the plot is density-binned so any
    number of points renders in O(width * height).
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size == 0 or x.size != y.size:
        raise TraceError("scatter needs equal-length non-empty x/y")
    x_max = max(float(x.max()), 1.0)
    y_max = max(float(y.max()), float(max(hlines, default=0)), 1.0)
    grid = [[" "] * width for _ in range(height)]

    def place(xs, ys, mark):
        cols = np.minimum((xs / x_max * (width - 1)).astype(int), width - 1)
        rows = np.minimum((ys / y_max * (height - 1)).astype(int), height - 1)
        for r, c in zip(rows, cols):
            grid[height - 1 - int(r)][int(c)] = mark

    for h in hlines:
        r = min(int(h / y_max * (height - 1)), height - 1)
        grid[height - 1 - r] = ["-"] * width
    place(x, y, "*")
    if overlay is not None:
        ox = np.asarray(overlay[0], dtype=np.float64)
        oy = np.asarray(overlay[1], dtype=np.float64)
        if ox.size:
            place(ox, oy, "x")
    lines = []
    if title:
        lines.append(title)
    lines.append("+" + "-" * width + "+")
    lines.extend("|" + "".join(row) + "|" for row in grid)
    lines.append("+" + "-" * width + "+")
    lines.append(f" x: 0..{x_max:.0f} (fault occurrence)   y: 0..{y_max:.0f} (page index)")
    return "\n".join(lines)


def render_series(
    rows: Iterable[tuple],
    headers: Sequence[str],
    title: str = "",
    floatfmt: str = "{:.4g}",
) -> str:
    """A fixed-width table (the paper's tables and line-series data)."""
    rows = [tuple(r) for r in rows]
    rendered: list[list[str]] = []
    for row in rows:
        cells = []
        for v in row:
            if isinstance(v, float):
                cells.append(floatfmt.format(v))
            else:
                cells.append(str(v))
        rendered.append(cells)
    widths = [
        max(len(h), *(len(r[i]) for r in rendered)) if rendered else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for cells in rendered:
        lines.append("  ".join(c.rjust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)


def render_log_bar(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 60,
    title: str = "",
    unit: str = "us",
) -> str:
    """Log-scale horizontal bars (the paper's latency plots span decades)."""
    vals = [max(float(v), 1e-12) for v in values]
    if not vals:
        raise TraceError("no values to render")
    lo = min(v for v in vals if v > 0)
    hi = max(vals)
    span = max(math.log10(hi / lo), 1e-9)
    label_w = max(len(l) for l in labels)
    lines = [title] if title else []
    for label, v in zip(labels, vals):
        frac = math.log10(v / lo) / span if hi > lo else 1.0
        bar = "#" * max(1, int(frac * width))
        lines.append(f"{label:<{label_w}}  {bar} {v:.4g}{unit}")
    return "\n".join(lines)


def write_csv(path: str | Path, headers: Sequence[str], rows: Iterable[tuple]) -> Path:
    """Write rows to CSV; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(row)
    return path
