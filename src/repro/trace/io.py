"""Trace persistence: save/load instrumented runs for offline analysis.

The paper's methodology is fundamentally *trace analysis*: instrument
the driver, capture event streams, analyze offline.  This module makes
captured traces durable - a :class:`~repro.trace.recorder.FinalizedTrace`
round-trips through a compressed ``.npz`` alongside a small metadata
header, so sweeps can be captured once and re-analyzed (or plotted with
real tooling) without re-simulating.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Optional

import numpy as np

from repro.errors import TraceError
from repro.trace.recorder import FinalizedTrace

#: format version written into every trace file; bumped on schema change.
TRACE_FORMAT_VERSION = 1

_ARRAY_FIELDS = [f.name for f in dataclasses.fields(FinalizedTrace)]


def save_trace(
    trace: FinalizedTrace,
    path: str | Path,
    metadata: Optional[dict[str, Any]] = None,
) -> Path:
    """Write a finalized trace (plus JSON metadata) to ``path`` (.npz)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    header = {
        "format_version": TRACE_FORMAT_VERSION,
        "metadata": metadata or {},
    }
    arrays = {name: getattr(trace, name) for name in _ARRAY_FIELDS}
    np.savez_compressed(
        path,
        __header__=np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8),
        **arrays,
    )
    return path


def trace_summary(trace: FinalizedTrace) -> dict[str, int]:
    """Small JSON-safe digest of a finalized trace.

    Result payloads (``repro.serve`` store documents, ``uvmrepro run
    --json``) embed this summary so consumers can see what a trace
    contains without downloading/parsing the ``.npz`` itself.
    """
    return {
        "n_faults": int(trace.fault_page.size),
        "n_duplicate_faults": int(np.count_nonzero(trace.fault_duplicate)),
        "n_services": int(trace.service_vablock.size),
        "n_evictions": int(trace.evict_vablock.size),
        "pages_evicted": int(trace.evict_pages.sum()),
        "n_replays": int(trace.replay_time_ns.size),
        "n_batches": int(trace.batch_time_ns.size),
    }


def load_trace(path: str | Path) -> tuple[FinalizedTrace, dict[str, Any]]:
    """Read a trace written by :func:`save_trace`.

    Returns ``(trace, metadata)``.  Raises :class:`TraceError` on
    missing fields or an unknown format version.
    """
    path = Path(path)
    if not path.exists():
        raise TraceError(f"no trace file at {path}")
    with np.load(path) as data:
        if "__header__" not in data:
            raise TraceError(f"{path} is not a repro trace file (no header)")
        header = json.loads(bytes(data["__header__"]).decode("utf-8"))
        version = header.get("format_version")
        if version != TRACE_FORMAT_VERSION:
            raise TraceError(
                f"trace format version {version} unsupported "
                f"(expected {TRACE_FORMAT_VERSION})"
            )
        missing = [name for name in _ARRAY_FIELDS if name not in data]
        if missing:
            raise TraceError(f"trace file missing fields: {missing}")
        trace = FinalizedTrace(**{name: data[name] for name in _ARRAY_FIELDS})
    return trace, header.get("metadata", {})
