"""Trace persistence: save/load instrumented runs for offline analysis.

The paper's methodology is fundamentally *trace analysis*: instrument
the driver, capture event streams, analyze offline.  This module makes
captured traces durable - a :class:`~repro.trace.recorder.FinalizedTrace`
round-trips through a compressed ``.npz`` alongside a small metadata
header, so sweeps can be captured once and re-analyzed (or plotted with
real tooling) without re-simulating.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Any, Optional

import numpy as np

from repro.errors import TraceError
from repro.trace.recorder import FinalizedTrace

#: format version written into every trace file; bumped on schema change.
#: (the content checksum is an *additive* header field - readers treat
#: its absence as "legacy file, unverifiable" - so it does not bump this.)
TRACE_FORMAT_VERSION = 1

_ARRAY_FIELDS = [f.name for f in dataclasses.fields(FinalizedTrace)]


def trace_checksum(arrays: dict[str, np.ndarray]) -> str:
    """Content hash of a trace's array payload (field names + bytes).

    Stored in the npz header at save time and re-derived at load time,
    so a truncated or bit-flipped payload is detected even when numpy's
    zip container happens to decompress without complaint.
    """
    digest = hashlib.sha256()
    for name in sorted(arrays):
        arr = np.ascontiguousarray(arrays[name])
        digest.update(name.encode())
        digest.update(str(arr.dtype).encode())
        digest.update(arr.tobytes())
    return digest.hexdigest()


def save_trace(
    trace: FinalizedTrace,
    path: str | Path,
    metadata: Optional[dict[str, Any]] = None,
) -> Path:
    """Write a finalized trace (plus JSON metadata) to ``path`` (.npz)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays = {name: getattr(trace, name) for name in _ARRAY_FIELDS}
    header = {
        "format_version": TRACE_FORMAT_VERSION,
        "metadata": metadata or {},
        "checksum": trace_checksum(arrays),
    }
    np.savez_compressed(
        path,
        __header__=np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8),
        **arrays,
    )
    return path


def trace_summary(trace: FinalizedTrace) -> dict[str, int]:
    """Small JSON-safe digest of a finalized trace.

    Result payloads (``repro.serve`` store documents, ``uvmrepro run
    --json``) embed this summary so consumers can see what a trace
    contains without downloading/parsing the ``.npz`` itself.
    """
    return {
        "n_faults": int(trace.fault_page.size),
        "n_duplicate_faults": int(np.count_nonzero(trace.fault_duplicate)),
        "n_services": int(trace.service_vablock.size),
        "n_evictions": int(trace.evict_vablock.size),
        "pages_evicted": int(trace.evict_pages.sum()),
        "n_replays": int(trace.replay_time_ns.size),
        "n_batches": int(trace.batch_time_ns.size),
    }


def load_trace(
    path: str | Path, verify_checksum: bool = True
) -> tuple[FinalizedTrace, dict[str, Any]]:
    """Read a trace written by :func:`save_trace`.

    Returns ``(trace, metadata)``.  Raises :class:`TraceError` on
    missing fields, an unknown format version, a payload whose content
    hash disagrees with the stored header checksum, or a file the zip
    layer itself cannot decode (truncation).  Files from before the
    checksum field load without verification.
    """
    path = Path(path)
    if not path.exists():
        raise TraceError(f"no trace file at {path}")
    try:
        with np.load(path) as data:
            if "__header__" not in data:
                raise TraceError(f"{path} is not a repro trace file (no header)")
            header = json.loads(bytes(data["__header__"]).decode("utf-8"))
            version = header.get("format_version")
            if version != TRACE_FORMAT_VERSION:
                raise TraceError(
                    f"trace format version {version} unsupported "
                    f"(expected {TRACE_FORMAT_VERSION})"
                )
            missing = [name for name in _ARRAY_FIELDS if name not in data]
            if missing:
                raise TraceError(f"trace file missing fields: {missing}")
            arrays = {name: data[name] for name in _ARRAY_FIELDS}
    except TraceError:
        raise
    except Exception as exc:  # zipfile/zlib/pickle errors on truncation
        raise TraceError(f"unreadable trace file {path}: {exc}") from exc
    expected = header.get("checksum")
    if verify_checksum and expected is not None:
        actual = trace_checksum(arrays)
        if actual != expected:
            raise TraceError(
                f"trace checksum mismatch in {path}: "
                f"stored {expected[:12]}.., payload {actual[:12]}.."
            )
    return FinalizedTrace(**arrays), header.get("metadata", {})
