"""Command-line interface: ``uvmrepro``.

Subcommands:

* ``uvmrepro list`` - the eight paper workloads,
* ``uvmrepro run <workload>`` - one instrumented simulation with the
  driver-time breakdown and counters,
* ``uvmrepro exhibit <name>`` - regenerate one paper exhibit
  (fig1 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 table1 table2),
* ``uvmrepro exhibit all`` - regenerate everything (the EXPERIMENTS.md
  data source),
* ``uvmrepro serve`` - run the asynchronous simulation job service
  (:mod:`repro.serve`): HTTP API, worker pool, result store,
* ``uvmrepro gateway`` - run the consistent-hash fleet gateway
  (:mod:`repro.fleet`) routing jobs across N service shards,
* ``uvmrepro submit / status / fetch / cancel`` - client verbs against a
  running service *or* gateway (same HTTP surface).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable

from repro.core.replay import ReplayPolicyKind
from repro.experiments.runner import ExperimentSetup, simulate
from repro.units import KiB, MiB, human_size
from repro.workloads.registry import make_workload, workload_names


def _positive_int(text: str) -> int:
    """argparse type: a strictly positive integer, with a clean error."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def _non_negative_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _threshold_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if not 1 <= value <= 100:
        raise argparse.ArgumentTypeError(f"must be in 1..100, got {value}")
    return value


def _add_sim_args(
    parser: argparse.ArgumentParser, data_mib: int, gpu_mem_mib: int
) -> None:
    """The simulation knobs shared by run/compare/trace/submit."""
    parser.add_argument(
        "--data-mib", type=_positive_int, default=data_mib,
        help="managed data size (MiB)",
    )
    parser.add_argument(
        "--gpu-mem-mib", type=_positive_int, default=gpu_mem_mib,
        help="GPU memory (MiB)",
    )
    parser.add_argument(
        "--no-prefetch", action="store_true", help="disable the prefetcher"
    )
    parser.add_argument(
        "--threshold", type=_threshold_int, default=51,
        help="density threshold (1-100)",
    )
    parser.add_argument(
        "--policy",
        default="batch_flush",
        choices=[k.value for k in ReplayPolicyKind],
        help="fault replay policy",
    )
    parser.add_argument(
        "--batch-size", type=_positive_int, default=256, help="fault batch size"
    )
    parser.add_argument("--seed", type=int, default=0x5EED, help="simulation seed")
    parser.add_argument(
        "--vablock-kib",
        type=_non_negative_int,
        default=0,
        help="allocation granule in KiB (0 = the 2 MiB driver default; "
        "other values exercise the Section VI-B flexible-granularity path)",
    )


def _build_setup(args: argparse.Namespace) -> ExperimentSetup:
    from dataclasses import replace

    setup = ExperimentSetup(seed=args.seed).with_gpu(
        memory_bytes=args.gpu_mem_mib * MiB
    )
    setup = setup.with_driver(
        prefetch_enabled=not args.no_prefetch,
        density_threshold=args.threshold,
        replay_policy=ReplayPolicyKind(args.policy),
        batch_size=args.batch_size,
    )
    if args.vablock_kib:
        setup = replace(setup, vablock_bytes=args.vablock_kib * KiB)
    return setup


def _cmd_list(_args: argparse.Namespace) -> int:
    print("paper workloads (Table I order):")
    for name in workload_names():
        print(f"  {name}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    setup = _build_setup(args)
    workload = make_workload(args.workload, args.data_mib * MiB)
    if args.json:
        from repro.serve.results import result_to_doc

        result = simulate(workload, setup)
        doc = result_to_doc(
            result,
            extra={
                "workload": args.workload,
                "data_bytes": args.data_mib * MiB,
                "seed": args.seed,
            },
        )
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    print(f"running {workload.describe()} on a {human_size(setup.gpu.memory_bytes)} GPU ...")
    result = simulate(workload, setup)
    print()
    print(result.breakdown().render("driver time breakdown (paper Fig.3 categories)"))
    print()
    print(result.service_breakdown().render("service sub-breakdown (paper Fig.4)"))
    print()
    print("counters:")
    for name, value in result.counters:
        print(f"  {name:28s} {value}")
    print(f"\ntotal simulated time: {result.total_time_us:,.1f} us")
    print(f"bytes moved H2D/D2H: {human_size(result.dma.h2d_bytes)}/{human_size(result.dma.d2h_bytes)}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Capture an instrumented run's trace: npz + ASCII scatter + CSV."""
    from pathlib import Path

    from repro.experiments.fig7 import trace_workload
    from repro.trace.export import render_scatter, write_csv
    from repro.trace.io import save_trace
    from repro.trace.recorder import TraceRecorder
    from repro.core.driver import UvmDriver
    from repro.sim.rng import SimRng
    from repro.workloads.registry import make_workload

    setup = _build_setup(args)
    rng = SimRng(setup.seed)
    space = setup.make_space()
    workload = make_workload(args.workload, args.data_mib * MiB)
    build = workload.build(space, rng.fork("workload"))
    recorder = TraceRecorder()
    driver = UvmDriver(
        space=space,
        streams=build.streams if build.phases is None else None,
        phases=build.phases,
        driver_config=setup.driver,
        gpu_config=setup.gpu,
        cost=setup.cost,
        rng=rng,
        recorder=recorder,
    )
    result = driver.run()

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    trace_path = save_trace(
        result.trace,
        out / f"{args.workload}.npz",
        metadata={
            "workload": args.workload,
            "data_bytes": workload.required_bytes(),
            "gpu_bytes": setup.gpu.memory_bytes,
            "seed": setup.seed,
            "prefetch": setup.driver.prefetch_enabled,
            "total_time_ns": result.total_time_ns,
        },
    )
    from repro.trace.analysis import extract_access_pattern

    pattern = extract_access_pattern(result.trace, space)
    scatter = render_scatter(
        pattern.occurrence,
        pattern.page_index,
        title=f"{args.workload}: fault occurrence vs page index",
        hlines=pattern.range_boundaries[1:],
    )
    (out / f"{args.workload}.txt").write_text(scatter + "\n")
    write_csv(
        out / f"{args.workload}.csv",
        ("occurrence", "page_index"),
        zip(pattern.occurrence.tolist(), pattern.page_index.tolist()),
    )
    print(scatter)
    print(
        f"\ntrace: {trace_path}\nscatter: {out / (args.workload + '.txt')}\n"
        f"csv: {out / (args.workload + '.csv')}\n"
        f"faults recorded: {result.trace.n_faults} "
        f"(evictions: {result.trace.n_evictions})"
    )
    return 0


#: named configuration variants for `uvmrepro compare` - each returns a
#: transformed ExperimentSetup.
_VARIANTS: dict[str, Callable[[ExperimentSetup], ExperimentSetup]] = {
    "no-prefetch": lambda s: s.with_driver(prefetch_enabled=False),
    "threshold-1": lambda s: s.with_driver(density_threshold=1),
    "policy-block": lambda s: s.with_driver(replay_policy=ReplayPolicyKind.BLOCK),
    "policy-batch": lambda s: s.with_driver(replay_policy=ReplayPolicyKind.BATCH),
    "policy-once": lambda s: s.with_driver(replay_policy=ReplayPolicyKind.ONCE),
    "adaptive": lambda s: s.with_driver(adaptive_prefetch=True),
    "thrashing-mitigation": lambda s: s.with_driver(thrashing_mitigation=True),
    "origin-prefetch": lambda s: s.with_driver(prefetcher_kind="origin"),
    "access-counter-eviction": lambda s: s.with_gpu(
        track_access_counters=True
    ).with_driver(eviction_policy="access_counter"),
}


def _cmd_compare(args: argparse.Namespace) -> int:
    """A/B a workload between the stock setup and a named variant."""
    from repro.trace.compare import compare_runs
    from repro.workloads.registry import make_workload

    setup = _build_setup(args)
    try:
        variant = _VARIANTS[args.vs](setup)
    except KeyError:
        print(f"unknown variant {args.vs!r}; choose from {sorted(_VARIANTS)}")
        return 2
    base_run = simulate(make_workload(args.workload, args.data_mib * MiB), setup)
    variant_run = simulate(make_workload(args.workload, args.data_mib * MiB), variant)
    comparison = compare_runs(base_run, variant_run, "stock", args.vs)
    print(
        comparison.render(
            f"{args.workload} ({args.data_mib} MiB data, "
            f"{args.gpu_mem_mib} MiB GPU): stock vs {args.vs}"
        )
    )
    return 0


def _exhibits() -> dict[str, Callable[[], object]]:
    # imports deferred: each exhibit pulls in only what it needs.
    from repro.experiments.fig1 import run_fig1
    from repro.experiments.fig3 import run_fig3
    from repro.experiments.fig4 import run_fig4
    from repro.experiments.fig5 import run_policy_comparison
    from repro.experiments.fig6 import run_fig6
    from repro.experiments.fig7 import run_fig7
    from repro.experiments.fig8 import run_fig8
    from repro.experiments.fig9 import run_fig9
    from repro.experiments.fig10 import run_fig10
    from repro.experiments.table1 import run_table1
    from repro.experiments.table2 import run_table2

    return {
        "fig1": run_fig1,
        "fig3": run_fig3,
        "fig4": run_fig4,
        "fig5": run_policy_comparison,
        "fig6": run_fig6,
        "fig7": run_fig7,
        "fig8": run_fig8,
        "fig9": run_fig9,
        "fig10": run_fig10,
        "table1": run_table1,
        "table2": run_table2,
    }


def _export_csv(name: str, result, out_dir: str) -> None:
    """Dump an exhibit's structured data as CSV (best effort per shape)."""
    import dataclasses
    from pathlib import Path

    from repro.trace.export import write_csv

    out = Path(out_dir)
    rows = getattr(result, "rows", None)
    if rows:
        dicts = [dataclasses.asdict(r) for r in rows]
        headers = [k for k in dicts[0] if not isinstance(dicts[0][k], (list, dict))]
        write_csv(
            out / f"{name}.csv",
            headers,
            [tuple(d[h] for h in headers) for d in dicts],
        )
        print(f"  csv: {out / f'{name}.csv'}")
        return
    panels = getattr(result, "panels", None)
    if panels:
        for panel in panels:
            p = panel.pattern
            write_csv(
                out / f"{name}_{panel.workload}.csv",
                ("occurrence", "page_index"),
                zip(p.occurrence.tolist(), p.page_index.tolist()),
            )
        print(f"  csv: {out}/{name}_<workload>.csv")
        return
    steps = getattr(result, "steps", None)
    if steps:
        dicts = [dataclasses.asdict(s) for s in steps]
        write_csv(
            out / f"{name}.csv",
            list(dicts[0]),
            [tuple(d.values()) for d in dicts],
        )
        print(f"  csv: {out / f'{name}.csv'}")


def _cmd_exhibit(args: argparse.Namespace) -> int:
    exhibits = _exhibits()
    names = list(exhibits) if args.name == "all" else [args.name]
    unknown = [n for n in names if n not in exhibits]
    if unknown:
        print(f"unknown exhibit(s): {unknown}; choose from {list(exhibits)} or 'all'")
        return 2
    for name in names:
        print(f"=== {name} " + "=" * max(0, 66 - len(name)))
        result = exhibits[name]()
        print(result.render())
        if args.csv:
            _export_csv(name, result, args.csv)
        print()
    return 0


# -- service verbs ------------------------------------------------------------


def _probe_writable_dir(path: str, role: str) -> str | None:
    """Create-and-probe ``path``; an error string when unusable, else None.

    The service journals every transition under its directories, so an
    unwritable path must fail at startup with exit 2 - not as an opaque
    OSError from a worker or the journal mid-run.
    """
    import os
    import uuid

    try:
        os.makedirs(path, exist_ok=True)
        probe = os.path.join(path, f".probe-{uuid.uuid4().hex}")
        with open(probe, "w", encoding="utf-8") as handle:
            handle.write("probe")
        os.unlink(probe)
    except OSError as exc:
        return f"{role} directory {path!r} is not writable: {exc}"
    return None


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the asynchronous simulation job service until interrupted."""
    import os
    import signal
    import threading

    from repro.serve.http_api import serve_http
    from repro.serve.service import ServiceConfig, SimulationService

    journal_path = args.journal_path or os.path.join(
        args.store_dir, "journal.jsonl"
    )
    for path, role in (
        (args.store_dir, "result store"),
        (os.path.join(args.store_dir, "checkpoints"), "checkpoint"),
        (os.path.dirname(journal_path) or ".", "journal"),
    ):
        problem = _probe_writable_dir(path, role)
        if problem is not None:
            print(f"uvmrepro serve: error: {problem}", file=sys.stderr)
            return 2
    if args.chaos is not None:
        # arm fault injection for the workers (they re-read the env at
        # boot); validate the plan now so a typo fails at startup, not
        # in a worker three retries deep.
        from repro.chaos import ENV_VAR, plan_from_env

        os.environ[ENV_VAR] = args.chaos
        plan = plan_from_env()
        if plan is not None:
            print(f"chaos armed: {len(plan.faults)} fault(s), seed={plan.seed}")
    # register this shard's endpoint name (and arm any network-family
    # faults) so partition rules can name it on either side of a link.
    from repro.chaos import install_network_chaos

    install_network_chaos(local=args.shard_name or None)
    config = ServiceConfig(
        n_workers=args.workers,
        job_timeout_s=args.job_timeout,
        max_retries=args.max_retries,
        sweep_cache_dir=args.sweep_cache,
        checkpoint_every_phases=args.checkpoint_every,
        queue_high_watermark=args.queue_high_watermark,
        queue_low_watermark=args.queue_low_watermark,
        poison_threshold=args.poison_threshold,
        drain_timeout_s=args.drain_timeout,
        journal_path=args.journal_path,
        mem_cache_mb=args.mem_cache_mb,
        batch_max=args.batch_max,
        shard_name=args.shard_name,
    )
    service = SimulationService(args.store_dir, config).start()
    server = serve_http(service, args.host, args.port)
    announcer = None
    if args.announce:
        from repro.serve.service import JoinAnnouncer

        try:
            announcer = JoinAnnouncer(
                args.announce,
                shard_name=args.shard_name,
                advertise_url=args.advertise_url or server.url,
            ).start()
        except Exception as exc:  # announce is best-effort; serve anyway
            print(f"uvmrepro serve: error: {exc}", file=sys.stderr)
            service.drain()
            server.shutdown()
            return 2
    replayed = service.telemetry.counter("jobs.journal_replayed")
    if replayed:
        print(f"journal replayed: {replayed} job(s) recovered from {journal_path}")
    print(
        f"uvmrepro service on {server.url} "
        f"(workers={config.n_workers}, store={args.store_dir})"
    )
    print("endpoints: POST /jobs  GET /jobs/<id>[/result]  DELETE /jobs/<id>")
    print("           GET /metrics  GET /events?since=N  GET /healthz  GET /readyz")

    # SIGTERM = graceful drain (the k8s/systemd stop path): stop
    # admission, let running jobs settle, journal the rest, exit 0.
    stop = threading.Event()
    previous = signal.signal(signal.SIGTERM, lambda *_: stop.set())
    try:
        while not stop.wait(0.5):
            pass
        print("\ndraining (SIGTERM) ...")
    except KeyboardInterrupt:
        print("\ndraining (interrupt) ...")
    finally:
        signal.signal(signal.SIGTERM, previous)
        if announcer is not None:
            announcer.leave()  # tell the gateways before going dark
        server.shutdown()  # stop accepting connections first
        service.drain()  # then settle + journal + stop (idempotent)
    return 0


def _cmd_gateway(args: argparse.Namespace) -> int:
    """Run the fleet gateway in front of N running service shards."""
    import os
    import signal
    import threading

    from repro.errors import ConfigurationError
    from repro.fleet import (
        FleetGateway,
        GatewayConfig,
        load_fleet_config,
        serve_gateway_http,
    )

    dynamic = bool(args.follow or args.membership_journal)
    if args.shards and args.fleet_config:
        print(
            "uvmrepro gateway: error: give only one of --shards or "
            "--fleet-config",
            file=sys.stderr,
        )
        return 2
    if not (args.shards or args.fleet_config or dynamic):
        print(
            "uvmrepro gateway: error: give --shards or --fleet-config "
            "(or --follow / --membership-journal for dynamic membership)",
            file=sys.stderr,
        )
        return 2
    if args.membership_journal:
        problem = _probe_writable_dir(
            os.path.dirname(args.membership_journal) or ".",
            "membership journal",
        )
        if problem is not None:
            print(f"uvmrepro gateway: error: {problem}", file=sys.stderr)
            return 2
    if args.chaos is not None:
        from repro.chaos import ENV_VAR, plan_from_env

        os.environ[ENV_VAR] = args.chaos
        plan = plan_from_env()
        if plan is not None:
            print(f"chaos armed: {len(plan.faults)} fault(s), seed={plan.seed}")
    try:
        overrides = {
            "probation_probes": args.probation_probes,
            "allow_version_skew": args.allow_version_skew,
            "membership_journal": args.membership_journal,
            "follow": args.follow,
            "gateway_name": args.gateway_name,
            "lease_ttl_s": args.lease_ttl,
            "election_probes": args.election_probes,
            "epoch_reserve": args.epoch_reserve,
            "peers": tuple(args.peer or ()),
            "advertise_url": args.advertise_url,
        }
        if args.fleet_config:
            config = load_fleet_config(args.fleet_config)
            merged = config.to_dict()
            for key, value in overrides.items():
                if value not in (None, False) and value != ():
                    merged[key] = value
            config = GatewayConfig.from_dict(merged)
        else:
            config = GatewayConfig.from_shard_urls(
                args.shards or (),
                vnodes=args.vnodes,
                probe_interval_s=args.probe_interval,
                down_after_probes=args.down_after,
                recover_after_probes=args.recover_after,
                # None = flag not given: let the config default stand
                **{k: v for k, v in overrides.items() if v is not None},
            )
    except ConfigurationError as exc:
        print(f"uvmrepro gateway: error: {exc}", file=sys.stderr)
        return 2
    from repro.chaos import active_plan, install_network_chaos, set_active_plan

    set_active_plan(None, reset=True)  # pick up --chaos from env
    plan = active_plan()
    journal_hook = None
    if config.gateway_name and plan is not None:
        from repro.chaos.process import gateway_kill_hook

        journal_hook = gateway_kill_hook(plan, config.gateway_name)
    # register this gateway's endpoint name (and arm network faults);
    # the injector's partition schedule can key off the membership
    # journal's append count, so it rides the same hook chain.
    injector = install_network_chaos(local=config.gateway_name or None)
    if injector is not None:
        kill_hook = journal_hook

        def journal_hook(total_records: int) -> None:
            injector.note_append(total_records)
            if kill_hook is not None:
                kill_hook(total_records)

    gateway = FleetGateway(config, journal_hook=journal_hook).start()
    server = serve_gateway_http(gateway, args.host, args.port)
    states = gateway.shard_states()
    role = f"follower of {config.follow}" if config.follow else "primary"
    print(
        f"uvmrepro gateway on {server.url} "
        f"({len(states)} shard(s), vnodes={config.vnodes}, {role}, "
        f"epoch={gateway.membership.epoch})"
    )
    for member in sorted(gateway.membership.members(), key=lambda m: m.name):
        state = states.get(member.name, member.state.value)
        print(f"  {member.name:12s} {member.url}  [{state}]")
    print("endpoints: POST /jobs  GET /jobs/<id>[/result]  DELETE /jobs/<id>")
    print("           GET /metrics  GET /events?since=N  GET /healthz  GET /readyz")
    print("           POST /fleet/join  POST /fleet/leave  GET /fleet/view")
    print("           GET /fleet/elections")

    stop = threading.Event()
    previous = signal.signal(signal.SIGTERM, lambda *_: stop.set())
    try:
        while not stop.wait(0.5):
            pass
        print("\nstopping (SIGTERM) ...")
    except KeyboardInterrupt:
        print("\nstopping (interrupt) ...")
    finally:
        signal.signal(signal.SIGTERM, previous)
        server.shutdown()
        gateway.stop()
    return 0


def _client(args: argparse.Namespace):
    from repro.serve.client import ServiceClient

    # --url accepts a comma-separated list of equivalent endpoints
    # (replicated gateways); the client fails over between them.
    endpoints = [u for u in (p.strip() for p in args.url.split(",")) if u]
    return ServiceClient(endpoints)


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.serve.client import ServiceClientError

    spec: dict = {
        "workload": args.workload,
        "data_bytes": args.data_mib * MiB,
        "seed": args.seed,
        "record_trace": args.record_trace,
        "priority": args.priority,
        "gpu": {"memory_bytes": args.gpu_mem_mib * MiB},
        "driver": {
            "prefetch_enabled": not args.no_prefetch,
            "density_threshold": args.threshold,
            "replay_policy": args.policy,
            "batch_size": args.batch_size,
        },
    }
    if args.vablock_kib:
        spec["vablock_bytes"] = args.vablock_kib * KiB
    client = _client(args)
    try:
        record = client.submit(spec)
        if args.wait and record["state"] not in (
            "done", "failed", "cancelled", "poisoned"
        ):
            record = client.wait(record["job_id"], timeout_s=args.timeout)
    except ServiceClientError as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(record, indent=2))
    return 0 if record["state"] in ("queued", "running", "done") else 1


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.serve.client import ServiceClientError

    client = _client(args)
    try:
        payload = client.metrics() if args.job_id is None else client.status(args.job_id)
    except ServiceClientError as exc:
        print(f"status failed: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _cmd_fetch(args: argparse.Namespace) -> int:
    from repro.serve.client import ServiceClientError

    client = _client(args)
    try:
        doc = client.result(args.job_id)
    except ServiceClientError as exc:
        print(f"fetch failed: {exc}", file=sys.stderr)
        return 1
    text = json.dumps(doc, indent=2, sort_keys=True)
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(text + "\n")
        print(f"result written to {args.out}")
    else:
        print(text)
    return 0


def _cmd_cancel(args: argparse.Namespace) -> int:
    from repro.serve.client import ServiceClientError

    try:
        record = _client(args).cancel(args.job_id)
    except ServiceClientError as exc:
        print(f"cancel failed: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(record, indent=2))
    return 0


def _changed_python_files(root: "Path") -> list["Path"]:
    """Tracked-modified plus untracked ``.py`` files, relative to ``root``."""
    import subprocess
    from pathlib import Path

    files: set[str] = set()
    for cmd in (
        ["git", "-C", str(root), "diff", "--name-only", "HEAD", "--"],
        ["git", "-C", str(root), "ls-files", "--others", "--exclude-standard"],
    ):
        proc = subprocess.run(cmd, capture_output=True, text=True, check=False)
        if proc.returncode != 0:
            raise RuntimeError(
                f"git failed ({' '.join(cmd[3:])}): {proc.stderr.strip()}"
            )
        files.update(line.strip() for line in proc.stdout.splitlines())
    return sorted(
        root / f
        for f in files
        if f.endswith(".py")
        and (root / f).is_file()
        # mirror the default lint universe (src/repro): tests and the
        # planted-bug fixture trees are never linted by the full pass,
        # so a changed-files subset must not lint them either.
        and f.startswith("src/repro/")
    )


def _cmd_check(args: argparse.Namespace) -> int:
    """Run the repository lint pass against the committed baseline."""
    from pathlib import Path

    from repro.checks.baseline import (
        diff_against_baseline,
        load_baseline,
        save_baseline,
    )
    from repro.checks.flow_rules import default_flow_rules
    from repro.checks.linter import lint_paths
    from repro.checks.rules import default_rules

    if args.list_rules:
        for rule in default_rules():
            print(f"{rule.name:24s} {rule.description}")
        for rule in default_flow_rules():
            print(f"{rule.name:24s} [{rule.family}] {rule.description}")
        return 0

    root = (
        Path(args.root).resolve()
        if args.root
        else Path(__file__).resolve().parents[2]
    )
    baseline_path = (
        Path(args.baseline) if args.baseline else root / "checks_baseline.json"
    )
    path_args = list(args.paths) + list(args.extra_paths or [])
    if args.changed and path_args:
        print(
            "check: --changed and explicit paths are mutually exclusive",
            file=sys.stderr,
        )
        return 2
    if args.changed:
        try:
            paths: list[Path] | None = _changed_python_files(root)
        except RuntimeError as exc:
            print(f"check: {exc}", file=sys.stderr)
            return 2
        if not paths:
            print(f"0 changed python file(s) under {root}; nothing to lint")
            return 0
    else:
        paths = [Path(p) for p in path_args] or None
    report = lint_paths(root, paths=paths, flow=args.flow, analyses=args.analysis)

    if args.update_baseline:
        counts = save_baseline(baseline_path, report.violations)
        print(
            f"baseline updated: {sum(counts.values())} violation(s) recorded "
            f"in {baseline_path}"
        )
        return 0

    diff = diff_against_baseline(report.violations, load_baseline(baseline_path))

    sarif_text: str | None = None
    if args.format == "sarif" or args.sarif_out:
        from repro.checks.sarif import render_sarif, rule_catalog

        catalog = rule_catalog(default_rules(), default_flow_rules())
        sarif_text = render_sarif(report, catalog)
    if args.sarif_out:
        Path(args.sarif_out).write_text(sarif_text, encoding="utf-8")

    status = 0
    if diff.new or report.parse_errors:
        status = 1
    if args.strict and (diff.stale or report.expired_waivers):
        status = max(status, 1)

    if args.format == "sarif":
        sys.stdout.write(sarif_text or "")
        return status

    for violation in diff.new:
        print(violation.render())
    for line in report.parse_errors:
        print(f"parse error: {line}")
    print(
        f"{len(diff.new)} new violation(s), {len(diff.baselined)} baselined, "
        f"{len(diff.stale)} stale baseline entr(ies) "
        f"across {report.files_checked} file(s)"
    )
    for line in report.expired_waivers:
        print(f"expired waiver: {line}")
    if report.expired_waivers and args.strict:
        print(
            "strict mode: expired waivers fail the check; fix the finding "
            "or renew the until= date"
        )
    if diff.stale:
        for key, count in diff.stale.items():
            print(f"stale baseline entry ({count}x): {key}")
        if args.strict:
            print("strict mode: stale baseline entries fail the check; "
                  "re-run with --update-baseline to trim them")
    return status


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="uvmrepro",
        description=(
            "UVM demand-paging cost reproduction "
            "(Allen & Ge, IPDPS 2021) - simulator CLI"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the paper workloads").set_defaults(fn=_cmd_list)

    run_p = sub.add_parser("run", help="run one workload under the simulator")
    run_p.add_argument("workload", choices=workload_names())
    _add_sim_args(run_p, data_mib=32, gpu_mem_mib=256)
    run_p.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable result document (same schema as "
        "the service's result store) instead of the text report",
    )
    run_p.set_defaults(fn=_cmd_run)

    cmp_p = sub.add_parser(
        "compare", help="A/B a workload: stock driver vs a named variant"
    )
    cmp_p.add_argument("workload", choices=workload_names() + ["bfs"])
    cmp_p.add_argument("--vs", required=True, help=f"one of {sorted(_VARIANTS)}")
    _add_sim_args(cmp_p, data_mib=32, gpu_mem_mib=64)
    cmp_p.set_defaults(fn=_cmd_compare)

    trace_p = sub.add_parser(
        "trace", help="capture an instrumented run's fault trace to disk"
    )
    trace_p.add_argument("workload", choices=workload_names())
    trace_p.add_argument("--out", default="traces", help="output directory")
    _add_sim_args(trace_p, data_mib=16, gpu_mem_mib=128)
    trace_p.set_defaults(fn=_cmd_trace)

    serve_p = sub.add_parser(
        "serve", help="run the asynchronous simulation job service"
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=_non_negative_int, default=8344)
    serve_p.add_argument(
        "--workers", type=_positive_int, default=2, help="simulator worker processes"
    )
    serve_p.add_argument(
        "--store-dir", default="serve-results", help="result store directory"
    )
    serve_p.add_argument(
        "--job-timeout", type=float, default=300.0, help="per-attempt timeout (s)"
    )
    serve_p.add_argument(
        "--max-retries", type=_non_negative_int, default=2,
        help="retries after worker death/timeout",
    )
    serve_p.add_argument(
        "--sweep-cache",
        default=None,
        help="run_sweep-compatible memo cache dir ('' disables; default: "
        "the sweep executor's resolution incl. REPRO_SWEEP_CACHE)",
    )
    serve_p.add_argument(
        "--checkpoint-every",
        type=_non_negative_int,
        default=256,
        help="simulation phases between worker checkpoints (0 disables)",
    )
    serve_p.add_argument(
        "--chaos",
        default=None,
        metavar="PLAN",
        help="fault-injection plan: JSON file path or inline JSON "
        "(sets UVMREPRO_CHAOS for the worker pool; see docs/robustness.md)",
    )
    serve_p.add_argument(
        "--queue-high-watermark",
        type=_positive_int,
        default=512,
        help="queued depth at which submissions are shed with HTTP 429",
    )
    serve_p.add_argument(
        "--queue-low-watermark",
        type=_non_negative_int,
        default=384,
        help="queued depth at which shedding stops again (hysteresis)",
    )
    serve_p.add_argument(
        "--poison-threshold",
        type=_non_negative_int,
        default=3,
        help="worker deaths on one spec key before it is quarantined "
        "as poisoned (0 disables the breaker)",
    )
    serve_p.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        help="seconds a SIGTERM drain waits for running jobs to finish",
    )
    serve_p.add_argument(
        "--journal-path",
        default=None,
        help="write-ahead job journal file (default: <store-dir>/journal.jsonl)",
    )
    serve_p.add_argument(
        "--mem-cache-mb",
        type=_non_negative_int,
        default=64,
        help="in-memory result cache budget in MiB (0 disables the hot tier)",
    )
    serve_p.add_argument(
        "--batch-max",
        type=_positive_int,
        default=8,
        help="max same-signature jobs dispatched to one warm worker as a "
        "batch (1 restores solo dispatch)",
    )
    serve_p.add_argument(
        "--shard-name",
        default=None,
        help="this instance's fleet shard name (surfaced in /healthz and "
        "targeted by the process.shard_kill chaos point)",
    )
    serve_p.add_argument(
        "--announce",
        nargs="+",
        default=None,
        metavar="GATEWAY_URL",
        help="gateway base URL(s) to announce this shard to via "
        "POST /fleet/join (requires --shard-name); re-announces "
        "periodically and sends /fleet/leave on graceful drain",
    )
    serve_p.add_argument(
        "--advertise-url",
        default=None,
        help="base URL gateways should reach this shard at "
        "(default: the bound listen address)",
    )
    serve_p.set_defaults(fn=_cmd_serve)

    gw_p = sub.add_parser(
        "gateway",
        help="run the consistent-hash fleet gateway over N service shards",
    )
    gw_p.add_argument("--host", default="127.0.0.1")
    gw_p.add_argument("--port", type=_non_negative_int, default=8343)
    gw_p.add_argument(
        "--shards",
        nargs="+",
        default=None,
        metavar="URL",
        help="shard base URLs in ring order (auto-named shard0..shardN-1)",
    )
    gw_p.add_argument(
        "--fleet-config",
        default=None,
        metavar="JSON",
        help="fleet config: JSON file path or inline JSON "
        "(named shards + tunables; see docs/fleet.md)",
    )
    gw_p.add_argument(
        "--vnodes", type=_positive_int, default=64,
        help="virtual nodes per shard on the hash ring",
    )
    gw_p.add_argument(
        "--probe-interval", type=float, default=1.0,
        help="seconds between shard health-probe sweeps",
    )
    gw_p.add_argument(
        "--down-after", type=_positive_int, default=3,
        help="consecutive failed probes before a shard is quarantined",
    )
    gw_p.add_argument(
        "--recover-after", type=_positive_int, default=2,
        help="consecutive ready probes a quarantined shard needs to rejoin",
    )
    gw_p.add_argument(
        "--membership-journal",
        default=None,
        metavar="PATH",
        help="fsync'd membership journal file; a restarted gateway "
        "replays the fleet from it (enables elastic membership with "
        "no static shard list)",
    )
    gw_p.add_argument(
        "--probation-probes",
        type=_positive_int,
        default=2,
        help="consecutive healthy /readyz probes a /fleet/join "
        "candidate needs before its arc is migrated over",
    )
    gw_p.add_argument(
        "--allow-version-skew",
        action="store_true",
        help="admit joiners whose code_version differs from the fleet "
        "(results will not be cache-compatible)",
    )
    gw_p.add_argument(
        "--follow",
        default=None,
        metavar="PRIMARY_URL",
        help="run as a replica: tail the primary gateway's membership "
        "view via GET /fleet/view (joins/leaves answer 503 with a "
        "primary hint)",
    )
    gw_p.add_argument(
        "--gateway-name",
        default=None,
        help="this instance's name (surfaced in /healthz and targeted "
        "by the process.gateway_kill and network.* chaos points)",
    )
    gw_p.add_argument(
        "--lease-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="primary-lease TTL stamped into every published view; a "
        "follower past it (plus --election-probes failed polls) "
        "promotes itself (default 5.0)",
    )
    gw_p.add_argument(
        "--election-probes",
        type=_positive_int,
        default=None,
        metavar="N",
        help="consecutive failed view polls, after lease expiry, "
        "before a follower promotes (default 3)",
    )
    gw_p.add_argument(
        "--epoch-reserve",
        type=_positive_int,
        default=None,
        metavar="N",
        help="epochs a follower poll reserves above the current one; "
        "a promotion jumps past this bound (default 1024)",
    )
    gw_p.add_argument(
        "--peer",
        action="append",
        default=None,
        metavar="URL",
        help="another gateway of this fleet (repeatable); a primary "
        "polls peers to discover a higher-epoch successor and demote",
    )
    gw_p.add_argument(
        "--advertise-url",
        default=None,
        metavar="URL",
        help="base URL other gateways should reach this one at "
        "(stamped into the lease; defaults to the bound address)",
    )
    gw_p.add_argument(
        "--chaos",
        default=None,
        metavar="PLAN",
        help="fault-injection plan: JSON file path or inline JSON "
        "(sets UVMREPRO_CHAOS; process.gateway_kill needs --gateway-name)",
    )
    gw_p.set_defaults(fn=_cmd_gateway)

    url_kw = {
        "default": "http://127.0.0.1:8344",
        "help": "service base URL (comma-separate several equivalent "
        "gateways for client-side failover)",
    }
    submit_p = sub.add_parser("submit", help="submit a job to a running service")
    submit_p.add_argument("workload", choices=workload_names())
    _add_sim_args(submit_p, data_mib=32, gpu_mem_mib=256)
    submit_p.add_argument("--url", **url_kw)
    submit_p.add_argument("--priority", type=int, default=0, help="smaller runs first")
    submit_p.add_argument(
        "--record-trace", action="store_true", help="persist the fault trace payload"
    )
    submit_p.add_argument("--wait", action="store_true", help="block until terminal")
    submit_p.add_argument(
        "--timeout", type=float, default=600.0, help="--wait budget (s)"
    )
    submit_p.set_defaults(fn=_cmd_submit)

    status_p = sub.add_parser(
        "status", help="job status (or service metrics without a job id)"
    )
    status_p.add_argument("job_id", nargs="?", default=None)
    status_p.add_argument("--url", **url_kw)
    status_p.set_defaults(fn=_cmd_status)

    fetch_p = sub.add_parser("fetch", help="fetch a finished job's result document")
    fetch_p.add_argument("job_id")
    fetch_p.add_argument("--url", **url_kw)
    fetch_p.add_argument("--out", default=None, help="write JSON here instead of stdout")
    fetch_p.set_defaults(fn=_cmd_fetch)

    cancel_p = sub.add_parser("cancel", help="cancel a queued/running job")
    cancel_p.add_argument("job_id")
    cancel_p.add_argument("--url", **url_kw)
    cancel_p.set_defaults(fn=_cmd_cancel)

    check_p = sub.add_parser(
        "check",
        help="run the static-analysis pass: lint rules + flow analyses",
    )
    check_p.add_argument(
        "paths", nargs="*", default=[],
        help="files/directories to lint (default: src/repro under the repo root)",
    )
    check_p.add_argument(
        "--paths", dest="extra_paths", nargs="+", default=None, metavar="PATH",
        help="additional files/directories to lint (same as the positionals)",
    )
    check_p.add_argument(
        "--changed", action="store_true",
        help="lint only git-changed python files (tracked modifications "
        "plus untracked); mutually exclusive with explicit paths",
    )
    check_p.add_argument(
        "--flow", action=argparse.BooleanOptionalAction, default=True,
        help="run the interprocedural flow analyses (default: on; "
        "--no-flow for the per-statement rules only)",
    )
    check_p.add_argument(
        "--analysis", action="append", default=None,
        choices=["determinism", "concurrency", "protocol", "units"],
        help="restrict flow analyses to one family (repeatable)",
    )
    check_p.add_argument(
        "--format", choices=["text", "sarif"], default="text",
        help="report format on stdout (default: text)",
    )
    check_p.add_argument(
        "--sarif-out", default=None, metavar="PATH",
        help="also write the SARIF log to PATH (independent of --format)",
    )
    check_p.add_argument(
        "--root", default=None,
        help="repository root anchoring relative paths and rule scopes "
        "(default: autodetected from the installed package location)",
    )
    check_p.add_argument(
        "--baseline", default=None,
        help="baseline file (default: <root>/checks_baseline.json)",
    )
    check_p.add_argument(
        "--strict", action="store_true",
        help="also fail on stale baseline entries and expired waivers",
    )
    check_p.add_argument(
        "--update-baseline", action="store_true",
        help="record the current violations as the new baseline and exit 0",
    )
    check_p.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    check_p.set_defaults(fn=_cmd_check)

    ex_p = sub.add_parser("exhibit", help="regenerate a paper table/figure")
    ex_p.add_argument("name", help="fig1..fig10, table1, table2, or 'all'")
    ex_p.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also export the exhibit's rows as CSV files into DIR",
    )
    ex_p.set_defaults(fn=_cmd_exhibit)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
