"""Shared helpers for the per-exhibit experiment modules.

Experiments size workloads *relative to simulated GPU memory* so the
paper's under/over-subscription regimes are preserved on the scaled
device, and they all report times in microseconds (the paper's unit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.experiments.runner import ExperimentSetup
from repro.units import MiB, ns_to_us


def sized(setup: ExperimentSetup, fraction: float) -> int:
    """Bytes equal to ``fraction`` of the setup's GPU memory."""
    return int(setup.gpu.memory_bytes * fraction)


def default_small_gpu() -> ExperimentSetup:
    """A 64 MiB device: the workhorse for oversubscription sweeps.

    Oversubscribed runs move data proportional to (oversubscription x
    capacity x thrash factor); a small capacity keeps sweeps fast while
    ratios - the quantities the paper's claims are about - are unchanged.
    """
    return ExperimentSetup().with_gpu(memory_bytes=64 * MiB)


def gemm_wave_setup(memory_mib: int = 64) -> ExperimentSetup:
    """Occupancy-limited setup for the SGEMM experiments.

    Real cuBLAS GEMM runs a couple of blocks per SM, so the grid executes
    in *waves*; later waves re-fault data evicted during earlier ones -
    the mechanism behind Table II's eviction scaling.  160 resident
    blocks approximates 2 per SM on the 80-SM device.
    """
    return ExperimentSetup().with_gpu(
        memory_bytes=memory_mib * MiB,
        max_active_streams=160,
        phase_width=128,
    )


@dataclass
class SeriesRow:
    """Generic labelled measurement row used by several exhibits."""

    label: str
    values: dict[str, float]

    def get(self, key: str) -> float:
        return self.values[key]


def us(t_ns: int | float) -> float:
    """ns -> us (so experiment code reads like the paper)."""
    return ns_to_us(t_ns)


def geometric_sizes(
    setup: ExperimentSetup, fractions: Sequence[float]
) -> list[tuple[float, int]]:
    """(fraction, bytes) pairs relative to GPU memory."""
    return [(f, sized(setup, f)) for f in fractions]
