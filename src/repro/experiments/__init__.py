"""Experiment reproductions: one module per paper table/figure.

Each ``figN``/``tableN`` module exposes a ``run_*`` function returning a
structured result with a ``render()`` method that prints the same rows or
series the paper reports, plus the qualitative-shape checks asserted by
the test suite.  ``runner`` holds the shared orchestration.
"""

from repro.experiments.runner import ExperimentSetup, simulate

__all__ = ["ExperimentSetup", "simulate"]
