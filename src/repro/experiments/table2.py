"""Table II - SGEMM fault scaling with oversubscription.

"Problem size is n for matrices A, B, C where size = n^2.  Pages evicted
are the number of pages that required explicit data migration between
host and device [due to eviction].  Performance degrades as the number
of pages evicted per fault increases."

Shape asserted by the tests: zero evictions while the problem fits, then
pages-evicted and pages-evicted-per-fault rising monotonically (sharply
past the ~120% cliff), mirroring the paper's 0 -> 14.1 progression.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.experiments.common import gemm_wave_setup
from repro.experiments.fig10 import gemm_sizes_for
from repro.experiments.runner import ExperimentSetup, run_sweep
from repro.trace.export import render_series
from repro.workloads.sgemm import SgemmWorkload

DEFAULT_RATIOS: tuple[float, ...] = (0.8, 0.95, 1.05, 1.2, 1.4, 1.7, 2.0)


@dataclass
class Table2Row:
    n: int
    oversubscription: float
    faults: int
    pages_evicted: int

    @property
    def evictions_per_fault(self) -> float:
        """The paper's 'Evictions per Fault': evicted pages per fault."""
        return self.pages_evicted / self.faults if self.faults else 0.0


@dataclass
class Table2Result:
    rows: list[Table2Row] = field(default_factory=list)

    def render(self) -> str:
        table = [
            (
                r.n,
                f"{r.oversubscription:.0%}",
                r.faults,
                r.pages_evicted,
                r.evictions_per_fault,
            )
            for r in self.rows
        ]
        return render_series(
            table,
            headers=("Size", "of GPU", "# Faults", "# Pages Evicted", "# Evictions per Fault"),
            title="Table II - SGEMM Fault Scaling",
            floatfmt="{:.3f}",
        )


def run_table2(
    setup: Optional[ExperimentSetup] = None,
    ratios: Sequence[float] = DEFAULT_RATIOS,
    tile: int = 128,
) -> Table2Result:
    setup = setup or gemm_wave_setup()
    result = Table2Result()
    workloads = [
        SgemmWorkload(n=n, tile=tile) for n in gemm_sizes_for(setup, ratios, tile)
    ]
    runs = run_sweep(workloads, setup=setup)
    for workload, run in zip(workloads, runs):
        result.rows.append(
            Table2Row(
                n=workload.n,
                oversubscription=workload.required_bytes() / setup.gpu.memory_bytes,
                faults=run.faults_read,
                pages_evicted=run.pages_evicted,
            )
        )
    return result
