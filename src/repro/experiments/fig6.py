"""Fig. 6 - the density-tree prefetch mechanism walkthrough.

The paper illustrates the tree-based prefetcher with a 4-level, 8-leaf
example at the default 51% threshold.  This module replays that exact
scenario against our implementation (scaled to a configurable leaf
count) and exposes the cascade effect: how successive faults grow the
chosen prefetch region level by level.

This is a *mechanism* exhibit: the bench asserts the algorithm's
properties (region density above threshold, region maximality, cascade
growth, threshold-1 full-block fetch) rather than any timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.prefetch import TreePrefetcher
from repro.trace.export import render_series


@dataclass
class CascadeStep:
    """One fault's effect in a cascade scenario."""

    fault_leaf: int
    region_size: int
    total_flagged: int  # leaves resident/flagged after this fault


@dataclass
class Fig6Result:
    threshold: int
    leaves: int
    big_page: int
    steps: list[CascadeStep] = field(default_factory=list)
    tree_lines: list[str] = field(default_factory=list)

    @property
    def faults_to_fill(self) -> int:
        """Faults needed until the whole block was flagged."""
        for i, s in enumerate(self.steps, start=1):
            if s.total_flagged >= self.leaves:
                return i
        return len(self.steps)

    def render(self) -> str:
        table = [
            (i + 1, s.fault_leaf, s.region_size, s.total_flagged, self.leaves)
            for i, s in enumerate(self.steps)
        ]
        out = render_series(
            table,
            headers=("fault#", "leaf", "region", "flagged", "of"),
            title=(
                f"Fig.6 - density-tree cascade (threshold {self.threshold}%, "
                f"{self.leaves} leaves, {self.big_page}-leaf big pages)"
            ),
        )
        return out + "\n\n" + "\n".join(self.tree_lines)


def run_fig6(
    threshold: int = 51,
    leaves: int = 512,
    big_page: int = 16,
    fault_sequence: Sequence[int] | None = None,
) -> Fig6Result:
    """Feed a cascade-inducing fault sequence one fault at a time.

    The default sequence mirrors the paper's narrative: each fault lands
    in the farthest-apart untouched big page of the region flagged so
    far, which maximizes the cascade (one additional fault fetches an
    entire next level).
    """
    pf = TreePrefetcher(
        threshold=threshold, pages_per_vablock=leaves, pages_per_big_page=big_page
    )
    resident = np.zeros(leaves, dtype=bool)
    if fault_sequence is None:
        # Pairwise-doubling fill: with the default 51% threshold, a
        # region's parent is only adopted when both halves are dense, so
        # the maximal cascade faults each big page left to right - every
        # time a pair of siblings completes, the chosen region doubles
        # (16 -> 32 at fault 2, -> 64 at fault 4, ... -> the whole block
        # at the final fault), the Fig. 6 cascade at driver fidelity.
        fault_sequence = list(range(0, leaves, big_page))
    result = Fig6Result(threshold=threshold, leaves=leaves, big_page=big_page)
    for leaf in fault_sequence:
        if resident[leaf]:
            continue
        decision = pf.compute(resident, np.array([leaf]))
        resident[leaf] = True
        if decision.count:
            resident[decision.prefetch_offsets] = True
        result.steps.append(
            CascadeStep(
                fault_leaf=int(leaf),
                region_size=decision.max_region,
                total_flagged=int(resident.sum()),
            )
        )
        if resident.all():
            break
    result.tree_lines = pf.describe_tree(resident, np.empty(0, dtype=np.int64))[:6]
    return result
