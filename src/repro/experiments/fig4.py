"""Fig. 4 - fault service cost breakdown at small sizes.

Splits the service category into the paper's sub-costs: **PMA Alloc
Pages** (the call into the proprietary allocator), **Migrate Pages**
(staging, zeroing, DMA), and **Map Pages** (PTE writes, invalidates,
barriers).

Published observations asserted by the tests:

* PMA allocation is "a large but variable quantity" at small sizes - it
  dominates the service cost there,
* over-allocation caching keeps the PMA cost "relatively constant and
  negligible at large sizes" while migrate/map grow with pages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.experiments.common import us
from repro.experiments.runner import ExperimentSetup, simulate
from repro.trace.export import render_series
from repro.units import KiB, MiB, human_size
from repro.workloads.synthetic import RegularAccess

DEFAULT_SIZES: tuple[int, ...] = (
    16 * KiB,
    64 * KiB,
    256 * KiB,
    1 * MiB,
    8 * MiB,
    64 * MiB,
)


@dataclass
class ServiceRow:
    data_bytes: int
    pma_alloc_us: float
    migrate_us: float
    map_us: float
    pma_calls: int

    @property
    def service_us(self) -> float:
        return self.pma_alloc_us + self.migrate_us + self.map_us

    @property
    def pma_share(self) -> float:
        return self.pma_alloc_us / self.service_us if self.service_us else 0.0


@dataclass
class Fig4Result:
    rows: list[ServiceRow] = field(default_factory=list)

    def render(self) -> str:
        table = [
            (
                human_size(r.data_bytes),
                r.pma_alloc_us,
                r.migrate_us,
                r.map_us,
                f"{r.pma_share:.0%}",
                r.pma_calls,
            )
            for r in self.rows
        ]
        return render_series(
            table,
            headers=(
                "size",
                "PMA alloc(us)",
                "migrate(us)",
                "map(us)",
                "PMA share",
                "PMA calls",
            ),
            title="Fig.4 - fault service cost breakdown (prefetch off, regular)",
        )


def run_fig4(
    setup: Optional[ExperimentSetup] = None,
    sizes: Sequence[int] = DEFAULT_SIZES,
) -> Fig4Result:
    setup = setup or ExperimentSetup()
    setup = setup.with_driver(prefetch_enabled=False)
    result = Fig4Result()
    for nbytes in sizes:
        run = simulate(RegularAccess(nbytes), setup)
        result.rows.append(
            ServiceRow(
                data_bytes=nbytes,
                pma_alloc_us=us(run.timer.total_ns("service.pma_alloc")),
                migrate_us=us(run.timer.total_ns("service.migrate")),
                map_us=us(run.timer.total_ns("service.map")),
                pma_calls=run.counters["pma.calls"],
            )
        )
    return result
