"""Table I - application fault reduction from prefetching.

For every benchmark, total driver-observed faults with prefetching
disabled vs enabled, "for relatively large undersubscribed problem
sizes".  "Higher reduction is better, and is equivalent to fault
coverage."

Published shape asserted by the tests:

* every workload's reduction is substantial (the paper's floor is 64%),
* the random benchmark achieves (near-)maximal reduction and beats the
  regular benchmark - scattering faults across a VABlock saturates the
  density tree fastest,
* structured multi-array solvers (tealeaf, hpgmg) sit at the low end:
  their faults interleave many ranges, building per-block density slowly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.experiments.common import sized
from repro.experiments.runner import ExperimentSetup, run_sweep
from repro.trace.analysis import fault_reduction
from repro.trace.export import render_series
from repro.workloads.registry import make_workload, workload_names


@dataclass
class Table1Row:
    workload: str
    total_faults: int
    faults_with_prefetch: int

    @property
    def reduction_pct(self) -> float:
        return fault_reduction(self.total_faults, self.faults_with_prefetch)


@dataclass
class Table1Result:
    rows: list[Table1Row] = field(default_factory=list)

    def row(self, workload: str) -> Table1Row:
        for r in self.rows:
            if r.workload == workload:
                return r
        raise KeyError(workload)

    def render(self) -> str:
        table = [
            (r.workload, r.total_faults, r.faults_with_prefetch, r.reduction_pct)
            for r in self.rows
        ]
        return render_series(
            table,
            headers=("", "total faults", "faults w/ prefetching", "fault reduction (%)"),
            title="Table I - Application Fault Reduction",
            floatfmt="{:.2f}",
        )


def run_table1(
    setup: Optional[ExperimentSetup] = None,
    workloads: Sequence[str] | None = None,
    data_fraction: float = 0.375,
) -> Table1Result:
    """Run each workload twice (prefetch off/on) and tabulate reductions."""
    setup = setup or ExperimentSetup()
    names = list(workloads) if workloads is not None else workload_names()
    data_bytes = sized(setup, data_fraction)
    no_pf = setup.with_driver(prefetch_enabled=False)
    points = []
    for name in names:
        points.append((make_workload(name, data_bytes), no_pf))
        points.append((make_workload(name, data_bytes), setup))
    runs = run_sweep(points)
    result = Table1Result()
    for i, name in enumerate(names):
        result.rows.append(
            Table1Row(
                workload=name,
                total_faults=runs[2 * i].faults_read,
                faults_with_prefetch=runs[2 * i + 1].faults_read,
            )
        )
    return result
