"""Fig. 1 - UVM access latency vs explicit direct transfer.

The paper's motivating figure: page-touch kernels over a size sweep that
crosses the GPU memory boundary, comparing

* explicit direct transfer (``cudaMemcpy`` baseline),
* UVM demand paging with prefetching disabled,
* UVM with the default prefetcher.

The four published observations, all asserted by the test suite:

1. un-prefetched UVM costs one or more orders of magnitude more than
   explicit transfer,
2. while data fits on the GPU, prefetching cuts the cost substantially
   but stays several times above the baseline,
3. past the memory capacity, latency jumps by roughly another order of
   magnitude (pattern-dependent),
4. prefetching *aggravates* oversubscribed random access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.baselines.explicit import explicit_transfer_time_ns
from repro.experiments.common import default_small_gpu, us
from repro.experiments.runner import ExperimentSetup, run_sweep
from repro.trace.export import render_series
from repro.units import human_size
from repro.workloads.synthetic import RandomAccess, RegularAccess

#: size sweep as fractions of GPU memory (crosses capacity at 1.0).
DEFAULT_FRACTIONS: tuple[float, ...] = (0.002, 0.01, 0.05, 0.25, 0.5, 0.9, 1.2)


@dataclass
class Fig1Row:
    pattern: str
    fraction: float
    data_bytes: int
    explicit_us: float
    uvm_us: float
    uvm_prefetch_us: float

    @property
    def oversubscribed(self) -> bool:
        return self.fraction > 1.0

    @property
    def uvm_slowdown(self) -> float:
        return self.uvm_us / self.explicit_us

    @property
    def prefetch_slowdown(self) -> float:
        return self.uvm_prefetch_us / self.explicit_us


@dataclass
class Fig1Result:
    rows: list[Fig1Row] = field(default_factory=list)

    def pattern_rows(self, pattern: str) -> list[Fig1Row]:
        return [r for r in self.rows if r.pattern == pattern]

    def render(self) -> str:
        table = [
            (
                r.pattern,
                human_size(r.data_bytes),
                f"{r.fraction:.0%}",
                r.explicit_us,
                r.uvm_us,
                r.uvm_prefetch_us,
                r.uvm_slowdown,
                r.prefetch_slowdown,
            )
            for r in self.rows
        ]
        return render_series(
            table,
            headers=(
                "pattern",
                "size",
                "of GPU",
                "explicit(us)",
                "uvm(us)",
                "uvm+pf(us)",
                "uvm/explicit",
                "pf/explicit",
            ),
            title="Fig.1 - data access latency: explicit vs UVM vs UVM+prefetch",
        )


def run_fig1(
    setup: Optional[ExperimentSetup] = None,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
) -> Fig1Result:
    """Regenerate Fig. 1's series on the (scaled) simulated platform."""
    setup = setup or default_small_gpu()
    no_pf = setup.with_driver(prefetch_enabled=False)
    grid = [
        (pattern_cls, frac, max(int(setup.gpu.memory_bytes * frac), 4096))
        for pattern_cls in (RegularAccess, RandomAccess)
        for frac in fractions
    ]
    # two sweep points per grid cell: prefetch off, then on
    points = []
    for pattern_cls, _, nbytes in grid:
        points.append((pattern_cls(nbytes), no_pf))
        points.append((pattern_cls(nbytes), setup))
    runs = run_sweep(points)
    result = Fig1Result()
    for i, (pattern_cls, frac, nbytes) in enumerate(grid):
        uvm, uvm_pf = runs[2 * i], runs[2 * i + 1]
        result.rows.append(
            Fig1Row(
                pattern=pattern_cls.name,
                fraction=frac,
                data_bytes=nbytes,
                explicit_us=us(explicit_transfer_time_ns(setup.cost, nbytes)),
                uvm_us=us(uvm.total_time_ns),
                uvm_prefetch_us=us(uvm_pf.total_time_ns),
            )
        )
    return result
