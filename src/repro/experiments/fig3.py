"""Fig. 3 - fault cost scaling and breakdown (prefetching disabled).

Total kernel time plus the driver-time split into the paper's three
categories (pre/post-processing, fault servicing, replay policy) over a
data-size sweep, for the regular and random page-touch kernels under the
default (batch-flush) replay policy.

Published observations asserted by the tests:

* a 400-600 us floor below ~100 KB (session base overhead),
* roughly linear growth once page counts dominate,
* pre/post-processing is negligible throughout,
* random access is slower with a larger replay-policy share.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.replay import ReplayPolicyKind
from repro.experiments.common import us
from repro.experiments.runner import ExperimentSetup, run_sweep
from repro.trace.export import render_series
from repro.units import KiB, MiB, human_size
from repro.workloads.synthetic import RandomAccess, RegularAccess

#: absolute sizes: the paper sweeps magnitudes from KBs to GBs; scaled.
DEFAULT_SIZES: tuple[int, ...] = (
    16 * KiB,
    64 * KiB,
    256 * KiB,
    1 * MiB,
    4 * MiB,
    16 * MiB,
    64 * MiB,
)


@dataclass
class BreakdownRow:
    pattern: str
    data_bytes: int
    preprocess_us: float
    service_us: float
    replay_us: float
    other_us: float
    total_us: float

    @property
    def driver_us(self) -> float:
        return self.preprocess_us + self.service_us + self.replay_us

    def share(self, which: str) -> float:
        value = getattr(self, f"{which}_us")
        return value / self.total_us if self.total_us else 0.0


@dataclass
class Fig3Result:
    rows: list[BreakdownRow] = field(default_factory=list)
    policy: ReplayPolicyKind = ReplayPolicyKind.BATCH_FLUSH

    def pattern_rows(self, pattern: str) -> list[BreakdownRow]:
        return [r for r in self.rows if r.pattern == pattern]

    def render(self, title: str = "Fig.3 - fault cost scaling and breakdown") -> str:
        table = [
            (
                r.pattern,
                human_size(r.data_bytes),
                r.preprocess_us,
                r.service_us,
                r.replay_us,
                r.other_us,
                r.total_us,
            )
            for r in self.rows
        ]
        return render_series(
            table,
            headers=(
                "pattern",
                "size",
                "preprocess(us)",
                "service(us)",
                "replay(us)",
                "other(us)",
                "total(us)",
            ),
            title=f"{title} [{self.policy.value} policy, prefetch off]",
        )


def run_breakdown_sweep(
    setup: Optional[ExperimentSetup] = None,
    sizes: Sequence[int] = DEFAULT_SIZES,
    policy: ReplayPolicyKind = ReplayPolicyKind.BATCH_FLUSH,
    patterns: Sequence[type] = (RegularAccess, RandomAccess),
) -> Fig3Result:
    """Shared sweep used by Fig. 3 (batch-flush) and Fig. 5 (batch)."""
    setup = setup or ExperimentSetup()
    setup = setup.with_driver(prefetch_enabled=False, replay_policy=policy)
    result = Fig3Result(policy=policy)
    grid = [(pattern_cls, nbytes) for pattern_cls in patterns for nbytes in sizes]
    runs = run_sweep([pattern_cls(nbytes) for pattern_cls, nbytes in grid], setup=setup)
    for (pattern_cls, nbytes), run in zip(grid, runs):
        bd = run.breakdown()
        result.rows.append(
            BreakdownRow(
                pattern=pattern_cls.name,
                data_bytes=nbytes,
                preprocess_us=us(bd.rows["preprocess"]),
                service_us=us(bd.rows["service"]),
                replay_us=us(bd.rows["replay_policy"]),
                other_us=us(bd.other_ns),
                total_us=us(run.total_time_ns),
            )
        )
    return result


def run_fig3(
    setup: Optional[ExperimentSetup] = None,
    sizes: Sequence[int] = DEFAULT_SIZES,
) -> Fig3Result:
    """Fig. 3: the default batch-flush policy."""
    return run_breakdown_sweep(setup, sizes, ReplayPolicyKind.BATCH_FLUSH)
