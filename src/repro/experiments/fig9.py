"""Fig. 9 - driver-time breakdown under oversubscription (prefetch on).

The paper's oversubscribed breakdown groups page migration with mapping
("'Map' includes page migration and relevant costs") and shows "an order
of magnitude difference in performance" between regular and random: the
asymmetry between the eviction granule (a 2 MB VABlock) and the demand
granule (a 4 KB fault) makes irregular access exhaust GPU memory with
mostly-unused allocations, evict constantly, and amplify transfers
(Section V-A3's 504 GB moved for a 32 GB random problem).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.experiments.common import default_small_gpu, us
from repro.experiments.runner import ExperimentSetup, run_sweep
from repro.trace.export import render_series
from repro.units import human_size
from repro.workloads.synthetic import RandomAccess, RegularAccess

DEFAULT_RATIOS: tuple[float, ...] = (1.1, 1.25, 1.5)


@dataclass
class Fig9Row:
    pattern: str
    ratio: float
    data_bytes: int
    map_us: float  # migration + mapping (the paper's merged "Map")
    evict_us: float
    other_driver_us: float
    total_us: float
    evictions: int
    transferred_bytes: int

    @property
    def amplification(self) -> float:
        """Bytes moved relative to the data size (504GB/32GB analogue)."""
        return self.transferred_bytes / self.data_bytes if self.data_bytes else 0.0


@dataclass
class Fig9Result:
    rows: list[Fig9Row] = field(default_factory=list)

    def pattern_rows(self, pattern: str) -> list[Fig9Row]:
        return [r for r in self.rows if r.pattern == pattern]

    def slowdown_at(self, ratio: float) -> float:
        """random/regular total-time ratio at one oversubscription point."""
        reg = next(r for r in self.pattern_rows("regular") if r.ratio == ratio)
        rnd = next(r for r in self.pattern_rows("random") if r.ratio == ratio)
        return rnd.total_us / reg.total_us

    def render(self) -> str:
        table = [
            (
                r.pattern,
                f"{r.ratio:.0%}",
                human_size(r.data_bytes),
                r.map_us,
                r.evict_us,
                r.other_driver_us,
                r.total_us,
                r.evictions,
                f"{r.amplification:.1f}x",
            )
            for r in self.rows
        ]
        return render_series(
            table,
            headers=(
                "pattern",
                "oversub",
                "size",
                "map(us)",
                "evict(us)",
                "other(us)",
                "total(us)",
                "evictions",
                "bytes moved",
            ),
            title="Fig.9 - oversubscribed breakdown (prefetch on)",
        )


def run_fig9(
    setup: Optional[ExperimentSetup] = None,
    ratios: Sequence[float] = DEFAULT_RATIOS,
) -> Fig9Result:
    setup = setup or default_small_gpu()
    result = Fig9Result()
    grid = [
        (pattern_cls, ratio, int(setup.gpu.memory_bytes * ratio))
        for pattern_cls in (RegularAccess, RandomAccess)
        for ratio in ratios
    ]
    runs = run_sweep([cls(nbytes) for cls, _, nbytes in grid], setup=setup)
    for (pattern_cls, ratio, nbytes), run in zip(grid, runs):
        map_ns = run.timer.total_ns("service.migrate") + run.timer.total_ns(
            "service.map"
        )
        evict_ns = run.timer.total_ns("service.evict")
        driver_ns = (
            run.timer.total_ns("preprocess")
            + run.timer.total_ns("service")
            + run.timer.total_ns("replay_policy")
        )
        result.rows.append(
            Fig9Row(
                pattern=pattern_cls.name,
                ratio=ratio,
                data_bytes=nbytes,
                map_us=us(map_ns),
                evict_us=us(evict_ns),
                other_driver_us=us(driver_ns - map_ns - evict_ns),
                total_us=us(run.total_time_ns),
                evictions=run.evictions,
                transferred_bytes=run.dma.total_bytes,
            )
        )
    return result
