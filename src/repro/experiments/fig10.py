"""Fig. 10 - SGEMM compute rate vs oversubscription.

"This figure shows the parallel increase in data requirement as compared
to compute rate for the sgemm kernel... performance degrades
significantly after 120%, because the access pattern shows this
evict-before-use behavior."

The compute rate is ``2 n^3 / total_time``.  The shape asserted by the
tests: the rate climbs (or holds) while the problem fits, peaks near the
capacity boundary, and degrades once eviction begins in earnest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.experiments.common import gemm_wave_setup
from repro.experiments.runner import ExperimentSetup, simulate
from repro.trace.export import render_series
from repro.workloads.sgemm import SgemmWorkload


@dataclass
class Fig10Row:
    n: int
    data_bytes: int
    oversubscription: float
    total_time_us: float
    gflops: float
    evictions: int
    pages_evicted: int


@dataclass
class Fig10Result:
    rows: list[Fig10Row] = field(default_factory=list)

    @property
    def peak_row(self) -> Fig10Row:
        return max(self.rows, key=lambda r: r.gflops)

    def render(self) -> str:
        table = [
            (
                r.n,
                f"{r.oversubscription:.0%}",
                r.total_time_us,
                r.gflops,
                r.evictions,
                r.pages_evicted,
            )
            for r in self.rows
        ]
        return render_series(
            table,
            headers=("n", "of GPU mem", "time(us)", "GFLOP/s", "evictions", "pages evicted"),
            title="Fig.10 - sgemm compute rate vs oversubscription",
        )


def gemm_sizes_for(
    setup: ExperimentSetup,
    ratios: Sequence[float],
    tile: int = 128,
) -> list[int]:
    """Matrix sizes n whose 3 n^2 floats hit the requested ratios."""
    sizes = []
    for ratio in ratios:
        n = int((setup.gpu.memory_bytes * ratio / 12) ** 0.5)
        sizes.append(max(tile, round(n / tile) * tile))
    return sorted(set(sizes))


DEFAULT_RATIOS: tuple[float, ...] = (0.4, 0.6, 0.8, 0.95, 1.05, 1.2, 1.4, 1.7, 2.0)


def run_fig10(
    setup: Optional[ExperimentSetup] = None,
    ratios: Sequence[float] = DEFAULT_RATIOS,
    tile: int = 128,
) -> Fig10Result:
    setup = setup or gemm_wave_setup()
    result = Fig10Result()
    for n in gemm_sizes_for(setup, ratios, tile):
        workload = SgemmWorkload(n=n, tile=tile)
        run = simulate(workload, setup)
        result.rows.append(
            Fig10Row(
                n=n,
                data_bytes=workload.required_bytes(),
                oversubscription=workload.required_bytes() / setup.gpu.memory_bytes,
                total_time_us=run.total_time_ns / 1000.0,
                gflops=workload.flops / max(run.total_time_ns, 1),
                evictions=run.evictions,
                pages_evicted=run.pages_evicted,
            )
        )
    return result
