"""Fig. 7 - application access patterns as the driver perceives them.

With prefetching disabled, every page's first touch produces a fault, so
the (fault occurrence, page index) scatter *is* the application's page
access pattern from the driver's perspective.  "The page index is the
virtual memory page corresponding to the fault address, adjusted so that
there are no gaps in the virtual memory space.  Fault occurrence is the
relative order that pages were processed by the driver."

Published structure asserted by the tests:

* **regular**: ascending band with scheduler jitter, no fixed order,
* **random**: uniform scatter,
* **stream**: three interleaved ascending bands (page dependency),
* **sgemm**: banded with heavy revisiting of A/B (reuse invisible here),
* **hpgmg/cusparse**: sequential portions plus random-like segments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.experiments.common import sized
from repro.experiments.runner import ExperimentSetup, simulate
from repro.mem.address_space import AddressSpace
from repro.sim.rng import SimRng
from repro.trace.analysis import AccessPattern, extract_access_pattern
from repro.trace.export import render_scatter
from repro.trace.recorder import TraceRecorder
from repro.core.driver import UvmDriver
from repro.units import MiB
from repro.workloads.registry import make_workload

DEFAULT_WORKLOADS: tuple[str, ...] = (
    "regular",
    "random",
    "sgemm",
    "stream",
    "cufft",
    "tealeaf",
    "hpgmg",
    "cusparse",
)


@dataclass
class Fig7Panel:
    workload: str
    pattern: AccessPattern

    def render(self, width: int = 78, height: int = 18) -> str:
        return render_scatter(
            self.pattern.occurrence,
            self.pattern.page_index,
            width=width,
            height=height,
            title=f"Fig.7 [{self.workload}] - fault occurrence vs page index (prefetch off)",
            hlines=self.pattern.range_boundaries[1:],
        )


@dataclass
class Fig7Result:
    panels: list[Fig7Panel] = field(default_factory=list)

    def panel(self, workload: str) -> Fig7Panel:
        for p in self.panels:
            if p.workload == workload:
                return p
        raise KeyError(workload)

    def render(self) -> str:
        return "\n\n".join(p.render() for p in self.panels)


def trace_workload(
    name: str,
    setup: ExperimentSetup,
    data_bytes: int,
) -> Fig7Panel:
    """Run one workload with tracing and extract its access pattern."""
    rng = SimRng(setup.seed)
    space = AddressSpace()
    workload = make_workload(name, data_bytes)
    build = workload.build(space, rng.fork("workload"))
    recorder = TraceRecorder()
    driver = UvmDriver(
        space=space,
        streams=build.streams if build.phases is None else None,
        phases=build.phases,
        driver_config=setup.driver,
        gpu_config=setup.gpu,
        cost=setup.cost,
        rng=rng,
        recorder=recorder,
    )
    result = driver.run()
    pattern = extract_access_pattern(result.trace, space)
    return Fig7Panel(workload=name, pattern=pattern)


def run_fig7(
    setup: Optional[ExperimentSetup] = None,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    data_fraction: float = 0.125,
) -> Fig7Result:
    """Trace every workload undersubscribed with prefetching disabled."""
    setup = setup or ExperimentSetup()
    setup = setup.with_driver(prefetch_enabled=False)
    data_bytes = sized(setup, data_fraction)
    result = Fig7Result()
    for name in workloads:
        result.panels.append(trace_workload(name, setup, data_bytes))
    return result
