"""Fig. 5 - the Fig. 3 experiment under the Batch (no-flush) policy.

"The primary difference between this policy and the default is that the
fault buffer is no longer emptied after each batch, meaning that the
policy cost now only accounts for the act of issuing a replay."

Published observations asserted by the tests, comparing to Fig. 3:

* the replay-policy cost is severely diminished (no flush charges),
* pre-processing cost is greatly increased - replays with outstanding
  faults re-raise entries that are still queued, so the driver reads and
  filters duplicate faults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.replay import ReplayPolicyKind
from repro.experiments.fig3 import DEFAULT_SIZES, Fig3Result, run_breakdown_sweep
from repro.experiments.runner import ExperimentSetup
from repro.workloads.synthetic import RegularAccess


def run_fig5(
    setup: Optional[ExperimentSetup] = None,
    sizes: Sequence[int] = DEFAULT_SIZES,
) -> Fig3Result:
    """Fig. 5: the Batch policy sweep (regular pattern, as published)."""
    return run_breakdown_sweep(
        setup, sizes, ReplayPolicyKind.BATCH, patterns=(RegularAccess,)
    )


@dataclass
class PolicyComparison:
    """Fig. 3 vs Fig. 5 at matching sizes (the paper's side-by-side)."""

    batch_flush: Fig3Result
    batch: Fig3Result

    def render(self) -> str:
        parts = [
            self.batch_flush.render("Fig.3 - default (batch-flush) policy"),
            "",
            self.batch.render("Fig.5 - batch policy"),
        ]
        return "\n".join(parts)


def run_policy_comparison(
    setup: Optional[ExperimentSetup] = None,
    sizes: Sequence[int] = DEFAULT_SIZES,
) -> PolicyComparison:
    """Run both policies on the regular pattern for direct comparison."""
    flush = run_breakdown_sweep(
        setup, sizes, ReplayPolicyKind.BATCH_FLUSH, patterns=(RegularAccess,)
    )
    batch = run_breakdown_sweep(
        setup, sizes, ReplayPolicyKind.BATCH, patterns=(RegularAccess,)
    )
    return PolicyComparison(batch_flush=flush, batch=batch)
