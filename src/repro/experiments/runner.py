"""Shared experiment orchestration.

:func:`simulate` is the library's main entry point: build a workload into
a fresh address space, run the UVM driver simulation, and return the
instrumented :class:`~repro.core.driver.RunResult`.  All experiment
modules and examples funnel through it so a configuration knob changed
here changes every exhibit consistently.

:func:`run_sweep` is the fleet version: every figure/table is a grid of
independent ``simulate`` points, so the sweep fans them out over a
process pool (the work is pure Python/numpy - threads would serialize on
the GIL) and memoizes each point on disk keyed by (workload spec,
setup, code version).  Re-rendering a figure after an unrelated edit
costs one cache read per point.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass, field, replace
from typing import Iterable, Optional, Sequence, Union

import numpy as np

from repro.core.driver import DriverConfig, RunResult, UvmDriver
from repro.gpu.device import GpuDeviceConfig
from repro.mem.address_space import AddressSpace
from repro.sim.costmodel import CostModel
from repro.sim.rng import SimRng
from repro.trace.recorder import NullRecorder, TraceRecorder
from repro.units import VABLOCK_SIZE
from repro.workloads.base import Workload


@dataclass(frozen=True)
class ExperimentSetup:
    """One run's full configuration (defaults = the paper's defaults).

    The default GPU is a scaled Titan V (256 MiB instead of 12 GiB, same
    geometry) so sweeps complete in CI time; oversubscription ratios are
    preserved because experiments size workloads relative to
    ``gpu.memory_bytes``.
    """

    driver: DriverConfig = field(default_factory=DriverConfig)
    gpu: GpuDeviceConfig = field(default_factory=GpuDeviceConfig)
    cost: CostModel = field(default_factory=CostModel)
    seed: int = 0x5EED
    #: allocation/eviction granule; non-default values exercise the
    #: paper's flexible-granularity discussion (Section VI-B).
    vablock_bytes: int = VABLOCK_SIZE

    def make_space(self) -> AddressSpace:
        return AddressSpace(vablock_size=self.vablock_bytes)

    def with_driver(self, **kwargs) -> "ExperimentSetup":
        return replace(self, driver=self.driver.with_overrides(**kwargs))

    def with_gpu(self, **kwargs) -> "ExperimentSetup":
        return replace(self, gpu=replace(self.gpu, **kwargs))

    def with_cost(self, **kwargs) -> "ExperimentSetup":
        return replace(self, cost=self.cost.with_overrides(**kwargs))


def build_driver(
    workload: Workload,
    setup: Optional[ExperimentSetup] = None,
    record_trace: bool = False,
) -> UvmDriver:
    """Materialize a ready-to-run driver for one simulation point.

    Shared by :func:`simulate` and the checkpoint-aware
    :func:`execute_job` path (which may instead restore a pickled
    driver and skip construction entirely).
    """
    setup = setup or ExperimentSetup()
    rng = SimRng(setup.seed)
    space = setup.make_space()
    build = workload.build(space, rng.fork("workload"))
    recorder: TraceRecorder = TraceRecorder() if record_trace else NullRecorder()
    return UvmDriver(
        space=space,
        streams=build.streams if build.phases is None else None,
        phases=build.phases,
        driver_config=setup.driver,
        gpu_config=setup.gpu,
        cost=setup.cost,
        rng=rng,
        recorder=recorder,
    )


def simulate(
    workload: Workload,
    setup: Optional[ExperimentSetup] = None,
    record_trace: bool = False,
) -> RunResult:
    """Run ``workload`` under the UVM simulator and return the result.

    ``record_trace=True`` captures per-event streams (needed for access
    pattern figures); leave it off for counter/timer sweeps.
    """
    return build_driver(workload, setup, record_trace).run()


# -- parallel sweep executor --------------------------------------------------

#: a sweep point: a bare workload (simulated under the sweep's default
#: setup) or an explicit (workload, setup) pair.
SweepPoint = Union[Workload, tuple[Workload, Optional[ExperimentSetup]]]

_code_version_cache: Optional[str] = None


def code_version() -> str:
    """Content hash of the simulator sources (``src/repro/**/*.py``).

    Part of every sweep cache key: any source edit invalidates all
    cached results, so the cache can never serve results from a
    different simulator than the one installed.
    """
    global _code_version_cache
    if _code_version_cache is None:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        paths = []
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames.sort()
            paths.extend(
                os.path.join(dirpath, fn) for fn in filenames if fn.endswith(".py")
            )
        digest = hashlib.sha256()
        for path in sorted(paths):
            digest.update(os.path.relpath(path, root).encode())
            with open(path, "rb") as fh:
                digest.update(fh.read())
        _code_version_cache = digest.hexdigest()[:16]
    return _code_version_cache


def _stable_repr(obj) -> str:
    """Deterministic, content-complete repr for cache keys.

    Handles the types that appear in workload/setup objects: numpy
    arrays hash by content, dicts sort their keys, dataclasses and plain
    objects recurse into their fields.
    """
    if isinstance(obj, enum.Enum):
        return f"{type(obj).__qualname__}.{obj.name}"
    if isinstance(obj, np.ndarray):
        digest = hashlib.sha256(np.ascontiguousarray(obj).tobytes()).hexdigest()[:16]
        return f"ndarray({obj.dtype},{obj.shape},{digest})"
    if isinstance(obj, (np.integer, np.floating, np.bool_)):
        return repr(obj.item())
    if isinstance(obj, dict):
        items = sorted(obj.items(), key=lambda kv: repr(kv[0]))
        return "{" + ",".join(f"{k!r}:{_stable_repr(v)}" for k, v in items) + "}"
    if isinstance(obj, (list, tuple, set, frozenset)):
        vals = sorted(map(_stable_repr, obj)) if isinstance(obj, (set, frozenset)) else [
            _stable_repr(v) for v in obj
        ]
        return f"{type(obj).__name__}({','.join(vals)})"
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = ",".join(
            f"{f.name}={_stable_repr(getattr(obj, f.name))}"
            for f in dataclasses.fields(obj)
        )
        return f"{type(obj).__qualname__}({fields})"
    if isinstance(obj, (int, float, str, bytes, bool, type(None))):
        return repr(obj)
    if hasattr(obj, "__dict__"):
        name = f"{type(obj).__module__}.{type(obj).__qualname__}"
        return f"{name}({_stable_repr(vars(obj))})"
    return repr(obj)


def sweep_cache_key(
    workload: Workload, setup: ExperimentSetup, record_trace: bool = False
) -> str:
    """Cache key of one sweep point: hash of (code version, workload
    spec, experiment setup, trace flag)."""
    payload = "\n".join(
        (
            code_version(),
            _stable_repr(workload),
            _stable_repr(setup),
            repr(bool(record_trace)),
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def _resolve_cache_dir(cache: bool, cache_dir: Optional[str]) -> Optional[str]:
    if not cache:
        return None
    if cache_dir is not None:
        return cache_dir
    env = os.environ.get("REPRO_SWEEP_CACHE")
    if env is not None:
        if env.strip().lower() in ("", "0", "off", "none", "disabled"):
            return None
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-uvm")


def _cache_load(directory: str, key: str) -> Optional[RunResult]:
    path = os.path.join(directory, f"{key}.pkl")
    try:
        with open(path, "rb") as fh:
            return pickle.load(fh)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
        return None


def _cache_store(directory: str, key: str, result: RunResult) -> None:
    try:
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        with os.fdopen(fd, "wb") as fh:
            pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, os.path.join(directory, f"{key}.pkl"))
    except OSError:
        pass  # a cold cache is never an error


#: default checkpoint cadence for sweep/serve runs (simulation phases
#: between snapshots; saving only reads state, so cadence never changes
#: results - it only bounds how much work a crash can lose).
DEFAULT_CHECKPOINT_PHASES = 256


def checkpoint_path(directory: str, key: str) -> str:
    """Where a point's mid-run snapshot lives: keyed by the same
    content-addressed cache key as the result, under ``checkpoints/``,
    so a snapshot can never resume a different spec or code version."""
    return os.path.join(directory, "checkpoints", f"{key}.ckpt")


def execute_job(
    workload: Workload,
    setup: Optional[ExperimentSetup] = None,
    record_trace: bool = False,
    cache_dir: Optional[str] = None,
    checkpointer=None,
) -> tuple[RunResult, bool]:
    """Run one simulation point through the canonical cache-aware path.

    This is the single job-execution code path shared by
    :func:`run_sweep` and the :mod:`repro.serve` worker pool: probe the
    code-version-keyed on-disk cache (when ``cache_dir`` is given), fall
    back to simulating, and persist the fresh result for the next
    caller.  Returns ``(result, cache_hit)``.

    ``checkpointer`` (a
    :class:`~repro.sim.engine.SimulationCheckpointer`) adds
    crash-resilience: the run snapshots itself periodically, a crashed
    attempt resumes from the last snapshot instead of restarting, and a
    completed run clears its snapshot.  Resume is reported on
    ``checkpointer.resumed``.  Results are bit-identical either way.
    """
    setup = setup or ExperimentSetup()
    key: Optional[str] = None
    if cache_dir is not None:
        key = sweep_cache_key(workload, setup, record_trace)
        cached = _cache_load(cache_dir, key)
        if cached is not None:
            if checkpointer is not None:
                checkpointer.clear()
            return cached, True
    driver = None
    if checkpointer is not None and checkpointer.exists():
        driver = checkpointer.load()
        checkpointer.resumed = driver is not None
    if driver is None:
        driver = build_driver(workload, setup, record_trace)
    result = driver.run(checkpointer)
    if checkpointer is not None:
        checkpointer.clear()
    if cache_dir is not None and key is not None:
        _cache_store(cache_dir, key, result)
    return result, False


def _run_point(args) -> RunResult:
    """Module-level worker so pool submissions pickle cleanly."""
    workload, setup, record_trace = args[:3]
    directory = args[3] if len(args) > 3 else None
    checkpointer = None
    if directory is not None:
        from repro.sim.engine import SimulationCheckpointer

        key = sweep_cache_key(workload, setup, record_trace)
        checkpointer = SimulationCheckpointer(
            checkpoint_path(directory, key),
            every_phases=DEFAULT_CHECKPOINT_PHASES,
        )
    return execute_job(
        workload,
        setup,
        record_trace,
        cache_dir=directory,
        checkpointer=checkpointer,
    )[0]


def _resolve_workers(workers: Optional[int]) -> int:
    if workers is None:
        env = os.environ.get("REPRO_SWEEP_WORKERS")
        if env:
            try:
                workers = int(env)
            except ValueError:
                workers = None
    if workers is None:
        workers = os.cpu_count() or 1
    return max(1, int(workers))


def run_sweep(
    points: Iterable[SweepPoint],
    setup: Optional[ExperimentSetup] = None,
    workers: Optional[int] = None,
    cache: bool = True,
    cache_dir: Optional[str] = None,
    record_trace: bool = False,
) -> list[RunResult]:
    """Simulate independent sweep points, in parallel and memoized.

    ``points`` is a sequence of workloads or ``(workload, setup)``
    pairs; bare workloads run under ``setup`` (default:
    ``ExperimentSetup()``).  Results come back in input order.

    Uncached points fan out over a ``multiprocessing`` pool of
    ``workers`` processes (default: ``REPRO_SWEEP_WORKERS`` or the CPU
    count; pass 1 to force serial).  Completed points are pickled into
    ``cache_dir`` (default ``~/.cache/repro-uvm``, overridable via the
    ``REPRO_SWEEP_CACHE`` env var; set it to ``0``/``off`` to disable)
    keyed by :func:`sweep_cache_key`, so re-running a sweep only
    simulates points whose workload, setup, or simulator code changed.
    """
    default_setup = setup or ExperimentSetup()
    jobs: list[tuple[Workload, ExperimentSetup, bool]] = []
    for point in points:
        if isinstance(point, tuple):
            workload, point_setup = point
            jobs.append((workload, point_setup or default_setup, record_trace))
        else:
            jobs.append((point, default_setup, record_trace))

    directory = _resolve_cache_dir(cache, cache_dir)
    results: list[Optional[RunResult]] = [None] * len(jobs)
    keys: list[Optional[str]] = [None] * len(jobs)
    misses: list[int] = []
    for i, job in enumerate(jobs):
        if directory is not None:
            keys[i] = sweep_cache_key(job[0], job[1], job[2])
            results[i] = _cache_load(directory, keys[i])
        if results[i] is None:
            misses.append(i)

    # Misses carry the cache directory so each worker checkpoints its
    # point (under <directory>/checkpoints/) and stores its own result;
    # a sweep killed mid-run resumes from those snapshots on re-run.
    miss_jobs = [
        jobs[i] if directory is None else (*jobs[i], directory) for i in misses
    ]
    n_workers = _resolve_workers(workers)
    if len(misses) > 1 and n_workers > 1:
        computed = _run_pool(miss_jobs, min(n_workers, len(misses)))
    else:
        computed = None
    if computed is None:
        computed = [_run_point(job) for job in miss_jobs]

    for i, result in zip(misses, computed):
        results[i] = result
        if directory is not None and keys[i] is not None:
            _cache_store(directory, keys[i], result)
    return results  # type: ignore[return-value]


def _run_pool(jobs: Sequence[tuple], n_workers: int) -> Optional[list[RunResult]]:
    """Fan jobs over a process pool; ``None`` means fall back to serial
    (sandboxes without fork/semaphore support, pickling failures)."""
    import multiprocessing as mp
    from concurrent.futures import ProcessPoolExecutor

    try:
        try:
            ctx = mp.get_context("fork")  # cheap start, inherits imports
        except ValueError:  # pragma: no cover - non-POSIX
            ctx = mp.get_context()
        with ProcessPoolExecutor(max_workers=n_workers, mp_context=ctx) as pool:
            return list(pool.map(_run_point, jobs))
    except Exception:  # pragma: no cover - environment-dependent
        return None
