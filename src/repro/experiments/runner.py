"""Shared experiment orchestration.

:func:`simulate` is the library's main entry point: build a workload into
a fresh address space, run the UVM driver simulation, and return the
instrumented :class:`~repro.core.driver.RunResult`.  All experiment
modules and examples funnel through it so a configuration knob changed
here changes every exhibit consistently.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.driver import DriverConfig, RunResult, UvmDriver
from repro.gpu.device import GpuDeviceConfig
from repro.mem.address_space import AddressSpace
from repro.sim.costmodel import CostModel
from repro.sim.rng import SimRng
from repro.trace.recorder import NullRecorder, TraceRecorder
from repro.units import MiB
from repro.workloads.base import Workload


@dataclass(frozen=True)
class ExperimentSetup:
    """One run's full configuration (defaults = the paper's defaults).

    The default GPU is a scaled Titan V (256 MiB instead of 12 GiB, same
    geometry) so sweeps complete in CI time; oversubscription ratios are
    preserved because experiments size workloads relative to
    ``gpu.memory_bytes``.
    """

    driver: DriverConfig = field(default_factory=DriverConfig)
    gpu: GpuDeviceConfig = field(default_factory=GpuDeviceConfig)
    cost: CostModel = field(default_factory=CostModel)
    seed: int = 0x5EED
    #: allocation/eviction granule; non-default values exercise the
    #: paper's flexible-granularity discussion (Section VI-B).
    vablock_bytes: int = 2 * MiB

    def make_space(self) -> AddressSpace:
        return AddressSpace(vablock_size=self.vablock_bytes)

    def with_driver(self, **kwargs) -> "ExperimentSetup":
        return replace(self, driver=self.driver.with_overrides(**kwargs))

    def with_gpu(self, **kwargs) -> "ExperimentSetup":
        return replace(self, gpu=replace(self.gpu, **kwargs))

    def with_cost(self, **kwargs) -> "ExperimentSetup":
        return replace(self, cost=self.cost.with_overrides(**kwargs))


def simulate(
    workload: Workload,
    setup: Optional[ExperimentSetup] = None,
    record_trace: bool = False,
) -> RunResult:
    """Run ``workload`` under the UVM simulator and return the result.

    ``record_trace=True`` captures per-event streams (needed for access
    pattern figures); leave it off for counter/timer sweeps.
    """
    setup = setup or ExperimentSetup()
    rng = SimRng(setup.seed)
    space = setup.make_space()
    build = workload.build(space, rng.fork("workload"))
    recorder: TraceRecorder = TraceRecorder() if record_trace else NullRecorder()
    driver = UvmDriver(
        space=space,
        streams=build.streams if build.phases is None else None,
        phases=build.phases,
        driver_config=setup.driver,
        gpu_config=setup.gpu,
        cost=setup.cost,
        rng=rng,
        recorder=recorder,
    )
    return driver.run()
