"""Shared experiment orchestration.

:func:`simulate` is the library's main entry point: build a workload into
a fresh address space, run the UVM driver simulation, and return the
instrumented :class:`~repro.core.driver.RunResult`.  All experiment
modules and examples funnel through it so a configuration knob changed
here changes every exhibit consistently.

:func:`run_sweep` is the fleet version: every figure/table is a grid of
independent ``simulate`` points, so the sweep fans them out over a
process pool (the work is pure Python/numpy - threads would serialize on
the GIL) and memoizes each point on disk keyed by (workload spec,
setup, code version).  Re-rendering a figure after an unrelated edit
costs one cache read per point.
"""

from __future__ import annotations

import copy
import dataclasses
import enum
import hashlib
import os
import pickle
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Iterable, Optional, Sequence, Union

import numpy as np

from repro.core.driver import DriverConfig, RunResult, UvmDriver
from repro.errors import ConfigurationError
from repro.gpu.device import GpuDeviceConfig
from repro.mem.address_space import AddressSpace
from repro.sim.costmodel import CostModel
from repro.sim.rng import SimRng
from repro.trace.recorder import NullRecorder, TraceRecorder
from repro.units import VABLOCK_SIZE
from repro.workloads.base import Workload


@dataclass(frozen=True)
class ExperimentSetup:
    """One run's full configuration (defaults = the paper's defaults).

    The default GPU is a scaled Titan V (256 MiB instead of 12 GiB, same
    geometry) so sweeps complete in CI time; oversubscription ratios are
    preserved because experiments size workloads relative to
    ``gpu.memory_bytes``.
    """

    driver: DriverConfig = field(default_factory=DriverConfig)
    gpu: GpuDeviceConfig = field(default_factory=GpuDeviceConfig)
    cost: CostModel = field(default_factory=CostModel)
    seed: int = 0x5EED
    #: allocation/eviction granule; non-default values exercise the
    #: paper's flexible-granularity discussion (Section VI-B).
    vablock_bytes: int = VABLOCK_SIZE

    def make_space(self) -> AddressSpace:
        return AddressSpace(vablock_size=self.vablock_bytes)

    def with_driver(self, **kwargs) -> "ExperimentSetup":
        return replace(self, driver=self.driver.with_overrides(**kwargs))

    def with_gpu(self, **kwargs) -> "ExperimentSetup":
        return replace(self, gpu=replace(self.gpu, **kwargs))

    def with_cost(self, **kwargs) -> "ExperimentSetup":
        return replace(self, cost=self.cost.with_overrides(**kwargs))


#: pristine (AddressSpace, WorkloadBuild) pairs keyed by everything that
#: determines ``workload.build`` output.  Entries are deep-copied on
#: every use (the run mutates the space), so the memo stays pristine; a
#: copy costs ~10 ms where a rebuild costs ~1 s for reference-sized
#: workloads.  Per-process (each serve worker / sweep process warms its
#: own), bounded to a handful of signatures.
_warm_builds: OrderedDict[tuple, tuple] = OrderedDict()
_WARM_BUILDS_MAX = 4


def _build_signature(workload: Workload, setup: "ExperimentSetup") -> tuple:
    """What :meth:`Workload.build` output depends on: the workload spec
    itself, the seed (the build consumes ``rng.fork("workload")``), and
    the address-space granule.  Driver/GPU/cost configs and the trace
    flag are applied after the build, so jobs differing only there share
    one warmed build."""
    return (_stable_repr(workload), setup.seed, setup.vablock_bytes)


def clear_warm_builds() -> None:
    """Drop memoized builds (tests, or after monkeypatching a workload)."""
    _warm_builds.clear()


def build_driver(
    workload: Workload,
    setup: Optional[ExperimentSetup] = None,
    record_trace: bool = False,
    warm: bool = False,
) -> UvmDriver:
    """Materialize a ready-to-run driver for one simulation point.

    Shared by :func:`simulate` and the checkpoint-aware
    :func:`execute_job` path (which may instead restore a pickled
    driver and skip construction entirely).

    ``warm=True`` memoizes the built ``(space, build)`` pair per build
    signature and hands out a deep copy, so batch members sharing a
    signature skip the expensive :meth:`Workload.build`.  Bit-identical
    to a cold build: the build is deterministic in ``(workload, seed,
    vablock)``, and :meth:`SimRng.fork` is pure (derives the child seed
    without consuming parent state), so skipping the fork on a memo hit
    leaves the driver's own rng stream untouched.
    """
    setup = setup or ExperimentSetup()
    rng = SimRng(setup.seed)
    if warm:
        sig = _build_signature(workload, setup)
        entry = _warm_builds.get(sig)
        if entry is None:
            space0 = setup.make_space()
            build0 = workload.build(space0, rng.fork("workload"))
            entry = (space0, build0)
            _warm_builds[sig] = entry
            while len(_warm_builds) > _WARM_BUILDS_MAX:
                _warm_builds.popitem(last=False)
        else:
            _warm_builds.move_to_end(sig)
        # joint deepcopy preserves aliasing between the space and the
        # build's streams/phases (they reference the same allocations).
        space, build = copy.deepcopy(entry)
    else:
        space = setup.make_space()
        build = workload.build(space, rng.fork("workload"))
    recorder: TraceRecorder = TraceRecorder() if record_trace else NullRecorder()
    return UvmDriver(
        space=space,
        streams=build.streams if build.phases is None else None,
        phases=build.phases,
        driver_config=setup.driver,
        gpu_config=setup.gpu,
        cost=setup.cost,
        rng=rng,
        recorder=recorder,
    )


def simulate(
    workload: Workload,
    setup: Optional[ExperimentSetup] = None,
    record_trace: bool = False,
) -> RunResult:
    """Run ``workload`` under the UVM simulator and return the result.

    ``record_trace=True`` captures per-event streams (needed for access
    pattern figures); leave it off for counter/timer sweeps.
    """
    return build_driver(workload, setup, record_trace).run()


# -- parallel sweep executor --------------------------------------------------

#: a sweep point: a bare workload (simulated under the sweep's default
#: setup) or an explicit (workload, setup) pair.
SweepPoint = Union[Workload, tuple[Workload, Optional[ExperimentSetup]]]

_code_version_cache: Optional[str] = None


def code_version() -> str:
    """Content hash of the simulator sources (``src/repro/**/*.py``).

    Part of every sweep cache key: any source edit invalidates all
    cached results, so the cache can never serve results from a
    different simulator than the one installed.
    """
    global _code_version_cache
    if _code_version_cache is None:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        paths = []
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames.sort()
            paths.extend(
                os.path.join(dirpath, fn) for fn in filenames if fn.endswith(".py")
            )
        digest = hashlib.sha256()
        for path in sorted(paths):
            digest.update(os.path.relpath(path, root).encode())
            with open(path, "rb") as fh:
                digest.update(fh.read())
        _code_version_cache = digest.hexdigest()[:16]
    return _code_version_cache


def _stable_repr(obj) -> str:
    """Deterministic, content-complete repr for cache keys.

    Handles the types that appear in workload/setup objects: numpy
    arrays hash by content, dicts sort their keys, dataclasses and plain
    objects recurse into their fields.
    """
    if isinstance(obj, enum.Enum):
        return f"{type(obj).__qualname__}.{obj.name}"
    if isinstance(obj, np.ndarray):
        digest = hashlib.sha256(np.ascontiguousarray(obj).tobytes()).hexdigest()[:16]
        return f"ndarray({obj.dtype},{obj.shape},{digest})"
    if isinstance(obj, (np.integer, np.floating, np.bool_)):
        return repr(obj.item())
    if isinstance(obj, dict):
        items = sorted(obj.items(), key=lambda kv: repr(kv[0]))
        return "{" + ",".join(f"{k!r}:{_stable_repr(v)}" for k, v in items) + "}"
    if isinstance(obj, (list, tuple, set, frozenset)):
        vals = sorted(map(_stable_repr, obj)) if isinstance(obj, (set, frozenset)) else [
            _stable_repr(v) for v in obj
        ]
        return f"{type(obj).__name__}({','.join(vals)})"
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = ",".join(
            f"{f.name}={_stable_repr(getattr(obj, f.name))}"
            for f in dataclasses.fields(obj)
        )
        return f"{type(obj).__qualname__}({fields})"
    if isinstance(obj, (int, float, str, bytes, bool, type(None))):
        return repr(obj)
    if hasattr(obj, "__dict__"):
        name = f"{type(obj).__module__}.{type(obj).__qualname__}"
        return f"{name}({_stable_repr(vars(obj))})"
    return repr(obj)


def sweep_cache_key(
    workload: Workload, setup: ExperimentSetup, record_trace: bool = False
) -> str:
    """Cache key of one sweep point: hash of (code version, workload
    spec, experiment setup, trace flag)."""
    payload = "\n".join(
        (
            code_version(),
            _stable_repr(workload),
            _stable_repr(setup),
            repr(bool(record_trace)),
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def _resolve_cache_dir(cache: bool, cache_dir: Optional[str]) -> Optional[str]:
    if not cache:
        return None
    if cache_dir is not None:
        return cache_dir
    env = os.environ.get("REPRO_SWEEP_CACHE")
    if env is not None:
        if env.strip().lower() in ("", "0", "off", "none", "disabled"):
            return None
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-uvm")


def _cache_load(directory: str, key: str) -> Optional[RunResult]:
    path = os.path.join(directory, f"{key}.pkl")
    try:
        with open(path, "rb") as fh:
            return pickle.load(fh)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
        return None


def _cache_store(directory: str, key: str, result: RunResult) -> None:
    try:
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        with os.fdopen(fd, "wb") as fh:
            pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, os.path.join(directory, f"{key}.pkl"))
    except OSError:
        pass  # a cold cache is never an error


#: default checkpoint cadence for sweep/serve runs (simulation phases
#: between snapshots; saving only reads state, so cadence never changes
#: results - it only bounds how much work a crash can lose).
DEFAULT_CHECKPOINT_PHASES = 256


def checkpoint_path(directory: str, key: str) -> str:
    """Where a point's mid-run snapshot lives: keyed by the same
    content-addressed cache key as the result, under ``checkpoints/``,
    so a snapshot can never resume a different spec or code version."""
    return os.path.join(directory, "checkpoints", f"{key}.ckpt")


def execute_job(
    workload: Workload,
    setup: Optional[ExperimentSetup] = None,
    record_trace: bool = False,
    cache_dir: Optional[str] = None,
    checkpointer=None,
    warm: bool = False,
) -> tuple[RunResult, bool]:
    """Run one simulation point through the canonical cache-aware path.

    This is the single job-execution code path shared by
    :func:`run_sweep` and the :mod:`repro.serve` worker pool: probe the
    code-version-keyed on-disk cache (when ``cache_dir`` is given), fall
    back to simulating, and persist the fresh result for the next
    caller.  Returns ``(result, cache_hit)``.

    ``checkpointer`` (a
    :class:`~repro.sim.engine.SimulationCheckpointer`) adds
    crash-resilience: the run snapshots itself periodically, a crashed
    attempt resumes from the last snapshot instead of restarting, and a
    completed run clears its snapshot.  Resume is reported on
    ``checkpointer.resumed``.  Results are bit-identical either way.
    """
    setup = setup or ExperimentSetup()
    key: Optional[str] = None
    if cache_dir is not None:
        key = sweep_cache_key(workload, setup, record_trace)
        cached = _cache_load(cache_dir, key)
        if cached is not None:
            if checkpointer is not None:
                checkpointer.clear()
            return cached, True
    driver = None
    if checkpointer is not None and checkpointer.exists():
        driver = checkpointer.load()
        checkpointer.resumed = driver is not None
    if driver is None:
        driver = build_driver(workload, setup, record_trace, warm=warm)
    result = driver.run(checkpointer)
    if checkpointer is not None:
        checkpointer.clear()
    if cache_dir is not None and key is not None:
        _cache_store(cache_dir, key, result)
    return result, False


def _run_point(args) -> RunResult:
    """Module-level worker so pool submissions pickle cleanly."""
    workload, setup, record_trace = args[:3]
    directory = args[3] if len(args) > 3 else None
    checkpointer = None
    if directory is not None:
        from repro.sim.engine import SimulationCheckpointer

        key = sweep_cache_key(workload, setup, record_trace)
        checkpointer = SimulationCheckpointer(
            checkpoint_path(directory, key),
            every_phases=DEFAULT_CHECKPOINT_PHASES,
        )
    return execute_job(
        workload,
        setup,
        record_trace,
        cache_dir=directory,
        checkpointer=checkpointer,
    )[0]


def _run_batch(args) -> list[RunResult]:
    """Module-level batch worker: run same-signature points on one warm
    build (``warm=True`` memoizes the first member's build; the rest
    deep-copy it instead of rebuilding).  Results are bit-identical to
    solo :func:`_run_point` runs - the build is deterministic and the
    memo hands out pristine copies."""
    batch, directory = args
    out: list[RunResult] = []
    for workload, setup, record_trace in batch:
        checkpointer = None
        if directory is not None:
            from repro.sim.engine import SimulationCheckpointer

            key = sweep_cache_key(workload, setup, record_trace)
            checkpointer = SimulationCheckpointer(
                checkpoint_path(directory, key),
                every_phases=DEFAULT_CHECKPOINT_PHASES,
            )
        out.append(
            execute_job(
                workload,
                setup,
                record_trace,
                cache_dir=directory,
                checkpointer=checkpointer,
                warm=True,
            )[0]
        )
    return out


def _resolve_workers(workers: Optional[int]) -> int:
    if workers is None:
        env = os.environ.get("REPRO_SWEEP_WORKERS")
        if env:
            try:
                workers = int(env)
            except ValueError:
                workers = None
    if workers is None:
        workers = os.cpu_count() or 1
    return max(1, int(workers))


#: process-wide in-memory RunResult tier over the pickle cache; rebuilt
#: (never shrunk mid-entry) when a sweep asks for a different budget.
_result_mem_cache = None


def _mem_cache(mem_cache_mb: int):
    """The shared in-memory result tier (None when disabled).

    Lazy import: :mod:`repro.serve` imports this module, so the cache
    class cannot be imported at module scope without a cycle.
    """
    global _result_mem_cache
    if mem_cache_mb <= 0:
        return None
    from repro.serve.cache import LruCache

    budget = int(mem_cache_mb) * 1024 * 1024
    if _result_mem_cache is None or _result_mem_cache.max_bytes != budget:
        _result_mem_cache = LruCache(budget)
    return _result_mem_cache


def run_sweep(
    points: Iterable[SweepPoint],
    setup: Optional[ExperimentSetup] = None,
    workers: Optional[int] = None,
    cache: bool = True,
    cache_dir: Optional[str] = None,
    record_trace: bool = False,
    mem_cache_mb: int = 64,
    batch_max: int = 8,
) -> list[RunResult]:
    """Simulate independent sweep points, in parallel and memoized.

    ``points`` is a sequence of workloads or ``(workload, setup)``
    pairs; bare workloads run under ``setup`` (default:
    ``ExperimentSetup()``).  Results come back in input order.

    Result reads are tiered: a process-wide in-memory LRU
    (``mem_cache_mb`` MiB; 0 disables) answers first, then the on-disk
    pickle cache in ``cache_dir`` (default ``~/.cache/repro-uvm``,
    overridable via the ``REPRO_SWEEP_CACHE`` env var; set it to
    ``0``/``off`` to disable) keyed by :func:`sweep_cache_key`, so
    re-running a sweep only simulates points whose workload, setup, or
    simulator code changed.

    Uncached points are grouped by build signature (workload spec, seed,
    granule) and dispatched in batches of up to ``batch_max``; each
    batch reuses one warmed workload build instead of rebuilding per
    point, with bit-identical results.  Batches fan out over a
    ``multiprocessing`` pool of ``workers`` processes (default:
    ``REPRO_SWEEP_WORKERS`` or the CPU count; pass 1 to force serial).
    """
    if mem_cache_mb < 0:
        raise ConfigurationError("mem_cache_mb must be >= 0")
    if batch_max < 1:
        raise ConfigurationError("batch_max must be >= 1")
    default_setup = setup or ExperimentSetup()
    jobs: list[tuple[Workload, ExperimentSetup, bool]] = []
    for point in points:
        if isinstance(point, tuple):
            workload, point_setup = point
            jobs.append((workload, point_setup or default_setup, record_trace))
        else:
            jobs.append((point, default_setup, record_trace))

    directory = _resolve_cache_dir(cache, cache_dir)
    mem = _mem_cache(mem_cache_mb)
    results: list[Optional[RunResult]] = [None] * len(jobs)
    keys: list[Optional[str]] = [None] * len(jobs)
    misses: list[int] = []
    for i, job in enumerate(jobs):
        if directory is not None or mem is not None:
            keys[i] = sweep_cache_key(job[0], job[1], job[2])
        if mem is not None and keys[i] is not None:
            results[i] = mem.get(keys[i])
            if results[i] is not None and directory is not None and not os.path.exists(
                os.path.join(directory, f"{keys[i]}.pkl")
            ):
                # write-through: the process-wide memory tier outlives
                # any one cache directory, so a mem hit must still
                # populate the on-disk memo this sweep maintains.
                _cache_store(directory, keys[i], results[i])
        if results[i] is None and directory is not None and keys[i] is not None:
            results[i] = _cache_load(directory, keys[i])
            if results[i] is not None and mem is not None:
                mem.put(keys[i], results[i])
        if results[i] is None:
            misses.append(i)

    # Group misses by build signature so each batch shares one warmed
    # build, then chunk to batch_max.  Batches carry the cache directory
    # so each worker checkpoints its points (under
    # <directory>/checkpoints/) and stores its own results; a sweep
    # killed mid-run resumes from those snapshots on re-run.
    groups: OrderedDict[tuple, list[int]] = OrderedDict()
    for i in misses:
        groups.setdefault(_build_signature(jobs[i][0], jobs[i][1]), []).append(i)
    batches: list[list[int]] = []
    for members in groups.values():
        for start in range(0, len(members), batch_max):
            batches.append(members[start : start + batch_max])
    batch_args = [([jobs[i] for i in chunk], directory) for chunk in batches]
    n_workers = _resolve_workers(workers)
    if len(batch_args) > 1 and n_workers > 1:
        computed = _run_pool(_run_batch, batch_args, min(n_workers, len(batch_args)))
    else:
        computed = None
    if computed is None:
        computed = [_run_batch(args) for args in batch_args]

    for chunk, outs in zip(batches, computed):
        for i, result in zip(chunk, outs):
            results[i] = result
            if directory is not None and keys[i] is not None:
                _cache_store(directory, keys[i], result)
            if mem is not None and keys[i] is not None:
                mem.put(keys[i], result)
    return results  # type: ignore[return-value]


def _run_pool(fn, jobs: Sequence, n_workers: int) -> Optional[list]:
    """Fan jobs over a process pool; ``None`` means fall back to serial
    (sandboxes without fork/semaphore support, pickling failures)."""
    import multiprocessing as mp
    from concurrent.futures import ProcessPoolExecutor

    try:
        try:
            ctx = mp.get_context("fork")  # cheap start, inherits imports
        except ValueError:  # pragma: no cover - non-POSIX
            ctx = mp.get_context()
        with ProcessPoolExecutor(max_workers=n_workers, mp_context=ctx) as pool:
            return list(pool.map(fn, jobs))
    except Exception:  # pragma: no cover - environment-dependent
        return None
