"""Fig. 8 - SGEMM at ~120% oversubscription: evictions in fault order.

"We show evictions at the relative time step they are issued.  Evict and
re-fault is a worst-case performance scenario... data in the second
memory allocation is evicted immediately prior to being paged back in,
as the driver is ignorant to reuse on the GPU."

The exhibit overlays eviction events on the fault-order scatter and
quantifies *evict-then-refault*: evictions whose VABlock faults again
within a short window - the fault-only LRU evicting hot data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.driver import UvmDriver
from repro.experiments.common import gemm_wave_setup
from repro.experiments.runner import ExperimentSetup
from repro.mem.address_space import AddressSpace
from repro.sim.rng import SimRng
from repro.trace.analysis import AccessPattern, extract_access_pattern
from repro.trace.export import render_scatter
from repro.trace.recorder import TraceRecorder
from repro.units import MiB
from repro.workloads.sgemm import SgemmWorkload


@dataclass
class Fig8Result:
    n: int
    oversubscription: float
    pattern: AccessPattern
    n_evictions: int
    #: evictions whose victim VABlock re-faulted within the window
    refaulted_evictions: int
    refault_window: int

    @property
    def refault_fraction(self) -> float:
        return self.refaulted_evictions / self.n_evictions if self.n_evictions else 0.0

    def render(self) -> str:
        plot = render_scatter(
            self.pattern.occurrence,
            self.pattern.page_index,
            title=(
                f"Fig.8 - sgemm n={self.n} at {self.oversubscription:.0%} of GPU memory "
                f"(* fault, x eviction)"
            ),
            hlines=self.pattern.range_boundaries[1:],
            overlay=(self.pattern.eviction_occurrence, self.pattern.eviction_page_index),
        )
        return (
            f"{plot}\n evictions={self.n_evictions} "
            f"evict-then-refault within {self.refault_window} faults: "
            f"{self.refaulted_evictions} ({self.refault_fraction:.0%})"
        )


def _count_refaulted_evictions(trace, window: int) -> int:
    """Evictions whose VABlock faults again within ``window`` faults."""
    refaulted = 0
    fault_vb = trace.fault_vablock
    for vb, idx in zip(trace.evict_vablock, trace.evict_fault_index):
        upcoming = fault_vb[idx : idx + window]
        if (upcoming == vb).any():
            refaulted += 1
    return refaulted


def run_fig8(
    setup: Optional[ExperimentSetup] = None,
    oversubscription: float = 1.3,
    refault_window: int = 2000,
) -> Fig8Result:
    """Trace an oversubscribed SGEMM run (prefetch on, as in the paper)."""
    setup = setup or gemm_wave_setup()
    target_bytes = setup.gpu.memory_bytes * oversubscription
    tile = 128
    n = int((target_bytes / 12) ** 0.5)  # 3 * n^2 * 4 bytes
    n = max(tile, round(n / tile) * tile)
    workload = SgemmWorkload(n=n, tile=tile)

    rng = SimRng(setup.seed)
    space = AddressSpace()
    build = workload.build(space, rng.fork("workload"))
    recorder = TraceRecorder()
    driver = UvmDriver(
        space=space,
        streams=build.streams,
        driver_config=setup.driver,
        gpu_config=setup.gpu,
        cost=setup.cost,
        rng=rng,
        recorder=recorder,
    )
    result = driver.run()
    pattern = extract_access_pattern(result.trace, space)
    return Fig8Result(
        n=n,
        oversubscription=workload.required_bytes() / setup.gpu.memory_bytes,
        pattern=pattern,
        n_evictions=result.evictions,
        refaulted_evictions=_count_refaulted_evictions(result.trace, refault_window),
        refault_window=refault_window,
    )
