"""repro.fleet: consistent-hash sharded gateway tier over the serve layer.

A :class:`FleetGateway` routes content-addressed job submissions across
N independent :class:`~repro.serve.service.SimulationService` shards
via a :class:`HashRing`, probes shard health, re-routes around shedding
or dead shards, and aggregates fleet-wide metrics - all behind the same
HTTP surface a single service exposes, so existing clients work
unmodified against a gateway URL.

Membership is elastic: shards join and leave at runtime through a
journaled, epoch-versioned :class:`FleetMembership`, the remapped ring
arc is copied between stores by the :class:`Migrator` before routing
flips, and a second gateway can replicate the whole view by tailing
``GET /fleet/view`` - see :mod:`repro.fleet.membership` and
:mod:`repro.fleet.migrate`.
"""

from repro.fleet.gateway import (
    FleetGateway,
    FleetUnavailableError,
    GatewayHTTPServer,
    ShardState,
    serve_gateway_http,
)
from repro.fleet.membership import FleetMembership, Member, MemberState
from repro.fleet.migrate import MigrationTask, Migrator, in_flight_from_entries
from repro.fleet.registry import (
    GatewayConfig,
    ShardSpec,
    load_fleet_config,
    normalize_base_url,
)
from repro.fleet.ring import RING_SPACE, HashRing, stable_hash

__all__ = [
    "FleetGateway",
    "FleetMembership",
    "FleetUnavailableError",
    "GatewayConfig",
    "GatewayHTTPServer",
    "HashRing",
    "Member",
    "MemberState",
    "MigrationTask",
    "Migrator",
    "RING_SPACE",
    "ShardSpec",
    "ShardState",
    "in_flight_from_entries",
    "load_fleet_config",
    "normalize_base_url",
    "serve_gateway_http",
    "stable_hash",
]
