"""repro.fleet: consistent-hash sharded gateway tier over the serve layer.

A :class:`FleetGateway` routes content-addressed job submissions across
N independent :class:`~repro.serve.service.SimulationService` shards
via a :class:`HashRing`, probes shard health, re-routes around shedding
or dead shards, and aggregates fleet-wide metrics - all behind the same
HTTP surface a single service exposes, so existing clients work
unmodified against a gateway URL.

Membership is elastic: shards join and leave at runtime through a
journaled, epoch-versioned :class:`FleetMembership`, the remapped ring
arc is copied between stores by the :class:`Migrator` before routing
flips, and a second gateway can replicate the whole view by tailing
``GET /fleet/view`` - see :mod:`repro.fleet.membership` and
:mod:`repro.fleet.migrate`.

The tier is self-healing: the acting primary stamps a monotonic-TTL
lease into every published view, a follower whose lease expires
promotes itself past the primary's reserved epoch bound and resumes
replicated in-flight migrations, and a returning ex-primary demotes on
the first higher-epoch view it sees - see :mod:`repro.fleet.election`.
"""

from repro.fleet.election import ElectionState, Role, promotion_offset
from repro.fleet.gateway import (
    FleetGateway,
    FleetUnavailableError,
    GatewayHTTPServer,
    ShardState,
    serve_gateway_http,
)
from repro.fleet.membership import FleetMembership, Member, MemberState
from repro.fleet.migrate import (
    MigrationTask,
    Migrator,
    in_flight_from_entries,
    pending_from_snapshot,
    snapshot_in_flight,
)
from repro.fleet.registry import (
    GatewayConfig,
    ShardSpec,
    load_fleet_config,
    normalize_base_url,
)
from repro.fleet.ring import RING_SPACE, HashRing, stable_hash

__all__ = [
    "ElectionState",
    "FleetGateway",
    "FleetMembership",
    "FleetUnavailableError",
    "GatewayConfig",
    "GatewayHTTPServer",
    "HashRing",
    "Member",
    "MemberState",
    "MigrationTask",
    "Migrator",
    "RING_SPACE",
    "Role",
    "ShardSpec",
    "ShardState",
    "in_flight_from_entries",
    "load_fleet_config",
    "normalize_base_url",
    "pending_from_snapshot",
    "promotion_offset",
    "serve_gateway_http",
    "snapshot_in_flight",
    "stable_hash",
]
