"""repro.fleet: consistent-hash sharded gateway tier over the serve layer.

A :class:`FleetGateway` routes content-addressed job submissions across
N independent :class:`~repro.serve.service.SimulationService` shards
via a :class:`HashRing`, probes shard health, re-routes around shedding
or dead shards, and aggregates fleet-wide metrics - all behind the same
HTTP surface a single service exposes, so existing clients work
unmodified against a gateway URL.
"""

from repro.fleet.gateway import (
    FleetGateway,
    FleetUnavailableError,
    GatewayHTTPServer,
    ShardState,
    serve_gateway_http,
)
from repro.fleet.registry import (
    GatewayConfig,
    ShardSpec,
    load_fleet_config,
)
from repro.fleet.ring import RING_SPACE, HashRing, stable_hash

__all__ = [
    "FleetGateway",
    "FleetUnavailableError",
    "GatewayConfig",
    "GatewayHTTPServer",
    "HashRing",
    "RING_SPACE",
    "ShardSpec",
    "ShardState",
    "load_fleet_config",
    "serve_gateway_http",
    "stable_hash",
]
