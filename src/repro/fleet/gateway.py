"""The fleet gateway: a consistent-hash sharded tier over the serve layer.

:class:`FleetGateway` fronts N independent :class:`~repro.serve.service.
SimulationService` shards - each with its own journal, store, and cache
- and speaks the *same* JSON-over-HTTP surface as a single service, so
:class:`~repro.serve.client.ServiceClient` (and every CLI verb) works
unmodified against a gateway URL.

Routing: a submission's :meth:`~repro.serve.jobs.JobSpec.spec_digest`
(the spec's content hash - deterministic, cheap, identical in every
process) lands on a :class:`~repro.fleet.ring.HashRing` with virtual
nodes, so each shard owns ~1/N of the key space and membership changes
remap only ~1/N of the keys.  All requests for one content key hit one
shard, which is what makes the shard-local result store and memory
tier behave like a fleet-wide cache.

Health: a background prober sweeps every shard's ``/readyz``:

* a shard that answers **503** (shedding/draining) is *alive* but
  paced - it is skipped for new submissions until its ``Retry-After``
  gate expires, and submissions it sheds re-route to the next ring
  replica immediately,
* a shard that stops answering is quarantined **DOWN** after
  ``down_after_probes`` consecutive failures and rejoins only after
  ``recover_after_probes`` consecutive ready answers,
* when a shard goes DOWN the gateway **fails over**: every accepted job
  mapped to it whose outcome the client still needs is re-submitted to
  the next replica.  Job specs are content-addressed and simulations
  deterministic, so a re-run lands a bit-identical result - accepted
  jobs are never lost, merely recomputed.

The gateway keeps its job table in memory only: shards are the durable
tier (write-ahead journals, atomic stores), the gateway is a stateless
router plus a routing table that can be rebuilt by resubmitting.

``/metrics`` aggregates the fleet: summed per-shard counters and
numeric gauges, per-shard breakdowns, and gateway-level ``fleet.*``
counters (reroutes, shard_down, failovers) plus ring-balance gauges.
"""

from __future__ import annotations

import enum
import itertools
import logging
import threading
import time
from dataclasses import dataclass, field
from http.server import ThreadingHTTPServer
from typing import Any, Optional
from urllib.parse import parse_qs, urlparse

from repro.errors import ReproError
from repro.experiments.runner import code_version
from repro.fleet.registry import GatewayConfig, ShardSpec
from repro.fleet.ring import HashRing
from repro.serve import telemetry as tm
from repro.serve.client import (
    ServiceClient,
    ServiceClientError,
    ServiceOverloadedError,
)
from repro.serve.jobs import JobSpec
from repro.serve.service import AdmissionError
from repro.serve.telemetry import Telemetry
from repro.serve.wire import JsonRequestHandler

logger = logging.getLogger("repro.fleet")

#: job states after which a shard-side job will never change again.
_TERMINAL = ("done", "failed", "cancelled", "poisoned")
#: terminal states that must NOT be recomputed on failover: a failure
#: is deterministic and a cancellation is a client decision.
_NO_FAILOVER = ("failed", "cancelled", "poisoned")


class FleetUnavailableError(AdmissionError):
    """No shard can accept the submission right now (HTTP 503).

    Same contract as the service's admission errors: nothing was
    created anywhere, the request is safe to retry verbatim after the
    advertised delay.
    """

    status = 503


class ShardState(str, enum.Enum):
    """The prober's verdict on one shard."""

    #: answering ready probes; full routing member.
    UP = "up"
    #: alive but answering 503 (shedding/draining); skipped for new
    #: submissions until its Retry-After gate expires.
    SHEDDING = "shedding"
    #: quarantined: stopped answering probes/requests entirely.
    DOWN = "down"


class ShardHandle:
    """Mutable runtime state of one shard (guarded by the gateway lock)."""

    def __init__(self, spec: ShardSpec, client: ServiceClient) -> None:
        self.spec = spec
        self.client = client
        #: optimistic: the first probe sweep corrects this immediately.
        self.state = ShardState.UP
        self.consecutive_failures = 0
        self.consecutive_successes = 0
        #: monotonic gate while SHEDDING (honours the shard's Retry-After).
        self.not_before = 0.0
        self.code_version: Optional[str] = None
        self.last_error: Optional[str] = None


@dataclass
class GatewayJob:
    """The gateway's routing entry for one accepted submission."""

    gateway_id: str
    #: the verbatim client payload - what a failover re-submits.
    payload: dict[str, Any]
    #: spec content digest; the ring routing key.
    key: str
    #: current shard (None while orphaned awaiting re-route).
    shard_name: Optional[str]
    shard_job_id: Optional[str]
    submitted_at: float = 0.0
    #: cached terminal record (a terminal shard job never changes).
    last_record: Optional[dict[str, Any]] = None
    #: the result document was successfully returned to a client.
    served_result: bool = False
    #: times this job was re-submitted after losing its shard.
    failovers: int = 0
    workload: str = ""


class FleetGateway:
    """Consistent-hash routing gateway over a static shard registry."""

    def __init__(self, config: GatewayConfig) -> None:
        self.config = config
        self.telemetry = Telemetry()
        self.code_version = code_version()
        self._ring = HashRing(
            (s.name for s in config.shards), vnodes=config.vnodes
        )
        self._shards: dict[str, ShardHandle] = {
            spec.name: ShardHandle(
                spec,
                ServiceClient(
                    spec.url,
                    timeout_s=config.read_timeout_s,
                    connect_timeout_s=config.connect_timeout_s,
                    retries=0,
                ),
            )
            for spec in config.shards
        }
        self._jobs: dict[str, GatewayJob] = {}
        self._seq = itertools.count(1)
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._prober: Optional[threading.Thread] = None
        #: version sets already warned about (warn once per combination).
        self._warned_versions: set[frozenset] = set()

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> "FleetGateway":
        self.probe_once()  # synchronous first sweep: honest initial states
        self._prober = threading.Thread(
            target=self._probe_loop, name="repro-fleet-prober", daemon=True
        )
        self._prober.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._prober is not None:
            self._prober.join(timeout=timeout)

    def __enter__(self) -> "FleetGateway":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- health probing -------------------------------------------------------
    def _probe_loop(self) -> None:
        while not self._stop.wait(self.config.probe_interval_s):
            try:
                self.probe_once()
            except Exception:  # one bad sweep must not kill the prober
                self.telemetry.count("fleet.probe_errors")

    def probe_once(self) -> None:
        """One sweep: probe every shard, then retry orphaned jobs."""
        for shard in self._shards.values():
            self._probe_shard(shard)
        self._reroute_orphans()

    def _probe_shard(self, shard: ShardHandle) -> None:
        self.telemetry.count(tm.FLEET_PROBES)
        try:
            shard.client.request_with_budget("GET", "/readyz")
        except ServiceOverloadedError as exc:
            # it answered: alive, just not ready (shedding/draining).
            self._note_shed(shard, exc.retry_after_s)
            return
        except (ReproError, OSError) as exc:
            self._note_failure(shard, str(exc))
            return
        self._note_ready(shard)

    def _note_shed(self, shard: ShardHandle, retry_after_s: float) -> None:
        """Shard answered 429/503: pace it, and clear any quarantine."""
        with self._lock:
            shard.consecutive_failures = 0
            was_down = shard.state is ShardState.DOWN
            shard.state = ShardState.SHEDDING
            shard.not_before = time.monotonic() + max(0.0, retry_after_s)
        self.telemetry.event(
            "fleet",
            "shard_shedding",
            shard=shard.spec.name,
            retry_after_s=retry_after_s,
            was_down=was_down,
        )

    def _note_failure(self, shard: ShardHandle, error: str) -> None:
        """A probe or request could not reach the shard at all."""
        with self._lock:
            shard.consecutive_successes = 0
            shard.consecutive_failures += 1
            shard.last_error = error
            went_down = (
                shard.state is not ShardState.DOWN
                and shard.consecutive_failures >= self.config.down_after_probes
            )
            if went_down:
                shard.state = ShardState.DOWN
        if went_down:
            self.telemetry.count(tm.FLEET_SHARD_DOWN)
            self.telemetry.event(
                "fleet", "shard_down", shard=shard.spec.name, error=error
            )
            logger.warning(
                "shard %s (%s) quarantined: %s",
                shard.spec.name,
                shard.spec.url,
                error,
            )
            self._failover_shard(shard)

    def _note_ready(self, shard: ShardHandle) -> None:
        recovered = False
        with self._lock:
            shard.consecutive_failures = 0
            shard.last_error = None
            if shard.state is ShardState.UP:
                if shard.code_version is not None:
                    return
                # first successful contact: fall through to version fetch
            elif shard.state is ShardState.SHEDDING:
                shard.state = ShardState.UP
                shard.not_before = 0.0
            else:  # DOWN: require a streak of ready answers to rejoin
                shard.consecutive_successes += 1
                if shard.consecutive_successes < self.config.recover_after_probes:
                    return
                shard.state = ShardState.UP
                shard.not_before = 0.0
                recovered = True
        if recovered:
            self.telemetry.count(tm.FLEET_SHARD_RECOVERED)
            self.telemetry.event("fleet", "shard_recovered", shard=shard.spec.name)
            logger.info("shard %s rejoined the fleet", shard.spec.name)
        self._refresh_version(shard)

    def _refresh_version(self, shard: ShardHandle) -> None:
        """Record the shard's ``/healthz`` code version; warn on skew."""
        try:
            doc, _ = shard.client.request_with_budget("GET", "/healthz")
        except (ReproError, OSError):
            return
        with self._lock:
            shard.code_version = doc.get("code_version")
        self._check_versions()

    def _check_versions(self) -> None:
        # only shard-vs-shard skew matters: shards compute and cache the
        # results, the gateway merely routes, so its own version is not
        # part of the compatibility set.
        with self._lock:
            versions = {
                s.spec.name: s.code_version
                for s in self._shards.values()
                if s.code_version
            }
            observed = frozenset(versions.values())
            if len(observed) <= 1 or observed in self._warned_versions:
                return
            self._warned_versions.add(observed)
        self.telemetry.count(tm.FLEET_VERSION_MISMATCH)
        self.telemetry.event(
            "fleet",
            "version_mismatch",
            gateway=self.code_version,
            shards=versions,
        )
        logger.warning(
            "fleet is running mixed code versions (results will not be "
            "cache-compatible across shards): gateway=%s shards=%s",
            self.code_version,
            versions,
        )

    # -- routing --------------------------------------------------------------
    def _eligible(self, shard: ShardHandle, now: float) -> bool:
        if shard.state is ShardState.DOWN:
            return False
        if shard.state is ShardState.SHEDDING and shard.not_before > now:
            return False
        return True

    def _route_submit(
        self,
        payload: dict[str, Any],
        key: str,
        exclude: frozenset = frozenset(),
    ) -> tuple[ShardHandle, dict[str, Any]]:
        """Submit ``payload`` to the first willing shard in ring order.

        Walks the key's replica preference list: quarantined shards and
        shards inside their Retry-After gate are skipped, a shard that
        sheds (429/503) is paced and skipped, a shard that is
        unreachable is charged a failure (possibly quarantining it) -
        in every case the next distinct ring replica is tried.  A 4xx
        from a shard (bad spec) propagates unchanged.  Raises
        :class:`FleetUnavailableError` when no shard will take it.
        """
        order = self._ring.preference(key)
        budget_spent = 0.0
        shed_hint: Optional[float] = None
        for name in order:
            if name in exclude:
                continue
            shard = self._shards[name]
            with self._lock:
                eligible = self._eligible(shard, time.monotonic())
                gate = shard.not_before
            if not eligible:
                if shard.state is ShardState.SHEDDING:
                    wait = max(0.0, gate - time.monotonic())
                    shed_hint = wait if shed_hint is None else min(shed_hint, wait)
                continue
            try:
                record, budget_spent = shard.client.request_with_budget(
                    "POST", "/jobs", payload, budget_spent
                )
            except ServiceOverloadedError as exc:
                self._note_shed(shard, exc.retry_after_s)
                shed_hint = (
                    exc.retry_after_s
                    if shed_hint is None
                    else min(shed_hint, exc.retry_after_s)
                )
                continue
            except ServiceClientError as exc:
                if exc.status == 0:  # unreachable; never acted on the spec
                    self._note_failure(shard, str(exc))
                    continue
                raise  # a real verdict (400 bad spec, ...) - pass through
            if name != order[0]:
                self.telemetry.count(tm.FLEET_REROUTES)
            return shard, record
        retry_after = shed_hint if shed_hint else self.config.shed_retry_after_s
        raise FleetUnavailableError(
            f"no shard available for key {key[:12]}.. "
            f"({len(order) - len(exclude)} candidate(s) down or shedding)",
            max(retry_after, 0.05),
        )

    # -- failover -------------------------------------------------------------
    def _failover_shard(self, shard: ShardHandle) -> None:
        """Re-route every job the dead shard still owed an outcome for.

        Skipped: jobs whose cached terminal state is failed/cancelled/
        poisoned (deterministic verdicts - recomputing is pointless or
        wrong) and done jobs whose result document a client already
        fetched.  Everything else - queued, running, or done-but-
        unfetched - is orphaned and re-submitted to a surviving
        replica; determinism makes the recomputed result bit-identical.
        """
        with self._lock:
            victims = []
            for entry in self._jobs.values():
                if entry.shard_name != shard.spec.name:
                    continue
                state = (entry.last_record or {}).get("state")
                if state in _NO_FAILOVER:
                    continue
                if state == "done" and entry.served_result:
                    continue
                entry.shard_name = None
                entry.shard_job_id = None
                entry.last_record = None
                victims.append(entry)
        for entry in victims:
            self._try_reroute(entry, exclude=frozenset({shard.spec.name}))

    def _reroute_orphans(self) -> None:
        with self._lock:
            orphans = [e for e in self._jobs.values() if e.shard_name is None]
        for entry in orphans:
            self._try_reroute(entry)

    def _try_reroute(
        self, entry: GatewayJob, exclude: frozenset = frozenset()
    ) -> bool:
        """Re-submit an orphaned job; False leaves it for the next sweep."""
        with self._lock:
            if entry.shard_name is not None:  # another thread beat us to it
                return True
        try:
            shard, record = self._route_submit(entry.payload, entry.key, exclude)
        except (AdmissionError, ServiceClientError, ReproError):
            return False
        with self._lock:
            entry.shard_name = shard.spec.name
            entry.shard_job_id = record["job_id"]
            entry.failovers += 1
            if record.get("state") in _TERMINAL:
                entry.last_record = dict(record)
        self.telemetry.count(tm.FLEET_FAILOVERS)
        self.telemetry.count(tm.FLEET_REROUTES)
        self.telemetry.event(
            entry.gateway_id,
            "failover",
            shard=shard.spec.name,
            shard_job_id=record["job_id"],
            key=entry.key,
        )
        return True

    # -- client API (mirrors SimulationService for the HTTP layer) ------------
    def submit_dict(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Validate, route by content key, and track one submission."""
        spec = JobSpec.from_dict(payload)  # 400 on malformed payloads
        key = spec.spec_digest()
        shard, record = self._route_submit(dict(payload), key)
        with self._lock:
            gateway_id = f"gw-{next(self._seq):08d}"
            entry = GatewayJob(
                gateway_id=gateway_id,
                payload=dict(payload),
                key=key,
                shard_name=shard.spec.name,
                shard_job_id=record["job_id"],
                submitted_at=time.time(),
                workload=spec.workload,
            )
            if record.get("state") in _TERMINAL:
                entry.last_record = dict(record)
            self._jobs[gateway_id] = entry
        self.telemetry.count(tm.FLEET_JOBS_ROUTED)
        self.telemetry.event(
            gateway_id,
            "routed",
            shard=shard.spec.name,
            shard_job_id=record["job_id"],
            key=key,
            workload=spec.workload,
        )
        return self._rewrite(entry, record)

    def _entry(self, gateway_id: str) -> GatewayJob:
        with self._lock:
            entry = self._jobs.get(gateway_id)
        if entry is None:
            raise KeyError(gateway_id)
        return entry

    def _rewrite(
        self, entry: GatewayJob, record: dict[str, Any]
    ) -> dict[str, Any]:
        """A shard record presented under the gateway's job id."""
        out = dict(record)
        out["job_id"] = entry.gateway_id
        out["shard"] = entry.shard_name
        out["failovers"] = entry.failovers
        return out

    def _synthetic(self, entry: GatewayJob, state: str) -> dict[str, Any]:
        """A record for a job the gateway cannot currently ask a shard
        about (orphaned mid-failover); clients keep polling it."""
        return {
            "job_id": entry.gateway_id,
            "state": state,
            "key": entry.key,
            "spec": dict(entry.payload),
            "submitted_at": entry.submitted_at,
            "started_at": None,
            "finished_at": None,
            "attempts": 0,
            "cache_hit": False,
            "error": None,
            "worker_id": None,
            "shard": entry.shard_name,
            "failovers": entry.failovers,
        }

    def status(self, gateway_id: str) -> dict[str, Any]:
        """The job's current record (terminal records answer from cache)."""
        entry = self._entry(gateway_id)
        with self._lock:
            cached = entry.last_record
            shard_name, shard_job_id = entry.shard_name, entry.shard_job_id
        if cached is not None:
            return self._rewrite(entry, cached)
        if shard_name is None:
            return self._synthetic(entry, "queued")
        shard = self._shards[shard_name]
        try:
            record, _ = shard.client.request_with_budget(
                "GET", f"/jobs/{shard_job_id}"
            )
        except ServiceClientError as exc:
            if exc.status == 0:
                # shard unreachable: charge the failure (which may
                # quarantine it and re-route this very entry), then
                # answer from whatever state the entry is in now.
                self._note_failure(shard, str(exc))
                with self._lock:
                    cached = entry.last_record
                if cached is not None:
                    return self._rewrite(entry, cached)
                return self._synthetic(entry, "queued")
            if exc.status == 404:
                # the shard forgot the job (restarted against a fresh
                # journal/store): re-submit it through normal routing.
                with self._lock:
                    entry.shard_name = None
                    entry.shard_job_id = None
                self._try_reroute(entry)
                return self._synthetic(entry, "queued")
            raise
        with self._lock:
            if record.get("state") in _TERMINAL:
                entry.last_record = dict(record)
        return self._rewrite(entry, record)

    def result_doc(self, gateway_id: str) -> Optional[dict[str, Any]]:
        """The stored result document (None until available)."""
        entry = self._entry(gateway_id)
        with self._lock:
            shard_name, shard_job_id = entry.shard_name, entry.shard_job_id
        if shard_name is None:
            return None  # mid-failover; the recompute is on its way
        shard = self._shards[shard_name]
        try:
            doc, _ = shard.client.request_with_budget(
                "GET", f"/jobs/{shard_job_id}/result"
            )
        except ServiceClientError as exc:
            if exc.status == 0:
                self._note_failure(shard, str(exc))
                return None
            if exc.status == 404:
                return None
            raise  # 410 quarantined-corrupt and friends pass through
        with self._lock:
            entry.served_result = True
        return doc

    def cancel(self, gateway_id: str) -> bool:
        """Cancel wherever the job lives; False if already finished."""
        entry = self._entry(gateway_id)
        with self._lock:
            cached = entry.last_record
            shard_name, shard_job_id = entry.shard_name, entry.shard_job_id
        if cached is not None and cached.get("state") in _TERMINAL:
            return False
        if shard_name is None:
            # orphaned: cancel locally; the cached terminal state also
            # stops any later failover from resurrecting it.
            with self._lock:
                entry.last_record = self._synthetic(entry, "cancelled")
            self.telemetry.event(gateway_id, "cancelled", orphaned=True)
            return True
        shard = self._shards[shard_name]
        try:
            record, _ = shard.client.request_with_budget(
                "DELETE", f"/jobs/{shard_job_id}"
            )
        except ServiceClientError as exc:
            if exc.status == 409:
                return False
            if exc.status == 0:
                self._note_failure(shard, str(exc))
                with self._lock:
                    if (entry.last_record or {}).get("state") in _TERMINAL:
                        return False
                    entry.last_record = self._synthetic(entry, "cancelled")
                self.telemetry.event(gateway_id, "cancelled", shard_lost=True)
                return True
            raise
        with self._lock:
            entry.last_record = dict(record)
        self.telemetry.event(gateway_id, "cancelled", shard=shard_name)
        return True

    def jobs(self) -> list[dict[str, Any]]:
        """Fleet-wide job summaries under gateway ids (one bulk call per
        reachable shard; unreachable shards fall back to cached/synthetic
        state)."""
        summaries: dict[str, dict[str, Any]] = {}
        for shard in self._shards.values():
            with self._lock:
                if shard.state is ShardState.DOWN:
                    continue
            try:
                listing, _ = shard.client.request_with_budget("GET", "/jobs")
            except (ReproError, OSError):
                continue
            for item in listing.get("jobs", []):
                summaries[f"{shard.spec.name}:{item['job_id']}"] = item
        out = []
        with self._lock:
            entries = list(self._jobs.values())
        for entry in entries:
            cached = entry.last_record
            live = (
                summaries.get(f"{entry.shard_name}:{entry.shard_job_id}")
                if entry.shard_name
                else None
            )
            base = cached or live or self._synthetic(entry, "queued")
            out.append(
                {
                    "job_id": entry.gateway_id,
                    "state": base.get("state", "queued"),
                    "workload": entry.workload or base.get("workload", ""),
                    "attempts": base.get("attempts", 0),
                    "cache_hit": bool(base.get("cache_hit")),
                    "shard": entry.shard_name,
                    "failovers": entry.failovers,
                }
            )
        return out

    # -- observability --------------------------------------------------------
    def shard_states(self) -> dict[str, str]:
        with self._lock:
            return {
                name: shard.state.value for name, shard in self._shards.items()
            }

    def healthz_payload(self) -> dict[str, Any]:
        with self._lock:
            versions = {
                name: shard.code_version
                for name, shard in self._shards.items()
            }
        return {
            "ok": True,
            "role": "gateway",
            "code_version": self.code_version,
            "draining": False,
            "shards": self.shard_states(),
            "shard_versions": versions,
        }

    def readiness(self) -> tuple[bool, dict[str, Any]]:
        """Ready iff at least one shard can accept a submission now."""
        now = time.monotonic()
        with self._lock:
            eligible = [
                name
                for name, shard in self._shards.items()
                if self._eligible(shard, now)
            ]
        detail = {
            "ready": bool(eligible),
            "reasons": [] if eligible else ["no shard is up and admitting"],
            "eligible_shards": eligible,
            "shards": self.shard_states(),
        }
        return bool(eligible), detail

    def metrics(self) -> dict[str, Any]:
        """The fleet aggregate: summed shard counters/gauges + breakdowns.

        Shard counter names never collide with the gateway's own
        ``fleet.*`` namespace, so the merged ``counters`` map is exactly
        "sum of reachable shards, plus gateway routing counters"; the
        raw per-shard documents ride along under ``fleet.shards`` so
        operators (and tests) can audit the aggregation.
        """
        per_shard: dict[str, Optional[dict[str, Any]]] = {}
        for name, shard in self._shards.items():
            try:
                doc, _ = shard.client.request_with_budget("GET", "/metrics")
            except (ReproError, OSError):
                doc = None
            per_shard[name] = doc
        counters: dict[str, int] = {}
        gauges: dict[str, Any] = {}
        for doc in per_shard.values():
            if doc is None:
                continue
            for name, value in doc.get("counters", {}).items():
                counters[name] = counters.get(name, 0) + value
            for name, value in doc.get("gauges", {}).items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                gauges[name] = gauges.get(name, 0) + value
        shares = self._ring.shares()
        states = self.shard_states()
        with self._lock:
            shard_meta = {
                name: {
                    "url": shard.spec.url,
                    "state": states[name],
                    "code_version": shard.code_version,
                    "last_error": shard.last_error,
                    "ring_share": shares.get(name, 0.0),
                    "metrics": per_shard[name],
                }
                for name, shard in self._shards.items()
            }
            orphaned = sum(1 for e in self._jobs.values() if e.shard_name is None)
            jobs_tracked = len(self._jobs)
        gauges.update(
            {
                "fleet_size": len(self._shards),
                "shards_up": sum(1 for s in states.values() if s == "up"),
                "shards_shedding": sum(
                    1 for s in states.values() if s == "shedding"
                ),
                "shards_down": sum(1 for s in states.values() if s == "down"),
                "ring_vnodes": self.config.vnodes,
                "ring_max_share": max(shares.values()) if shares else 0.0,
                "ring_min_share": min(shares.values()) if shares else 0.0,
                "gateway_jobs_tracked": jobs_tracked,
                "gateway_jobs_orphaned": orphaned,
            }
        )
        snapshot = self.telemetry.snapshot(gauges)
        counters.update(snapshot["counters"])
        snapshot["counters"] = counters
        snapshot["fleet"] = {"shards": shard_meta, "ring_shares": shares}
        return snapshot


# -- HTTP surface -------------------------------------------------------------


class GatewayHTTPServer(ThreadingHTTPServer):
    """HTTP server bound to one :class:`FleetGateway`."""

    daemon_threads = True
    request_queue_size = 256

    def __init__(self, address: tuple[str, int], gateway: FleetGateway):
        super().__init__(address, _GatewayHandler)
        self.gateway = gateway

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _GatewayHandler(JsonRequestHandler):
    """The service surface, answered by routing instead of executing."""

    server: GatewayHTTPServer

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        gateway = self.server.gateway
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["healthz"]:
                self.send_json(200, gateway.healthz_payload())
            elif parts == ["readyz"]:
                ready, detail = gateway.readiness()
                if ready:
                    self.send_json(200, detail)
                else:
                    self.send_retry_after(
                        503, detail, gateway.config.shed_retry_after_s
                    )
            elif parts == ["metrics"]:
                self.send_json(200, gateway.metrics())
            elif parts == ["events"]:
                query = parse_qs(url.query)
                since = int(query.get("since", ["0"])[0])
                limit = int(query.get("limit", ["1000"])[0])
                events = gateway.telemetry.events_since(since, limit)
                next_since = events[-1]["seq"] if events else since
                self.send_json(200, {"events": events, "next_since": next_since})
            elif parts == ["jobs"]:
                self.send_json(200, {"jobs": gateway.jobs()})
            elif len(parts) == 2 and parts[0] == "jobs":
                self.send_json(200, gateway.status(parts[1]))
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "result":
                doc = gateway.result_doc(parts[1])
                if doc is None:
                    record = gateway.status(parts[1])
                    self.send_json_error(
                        404, f"{parts[1]} has no result ({record['state']})"
                    )
                else:
                    self.send_json(200, doc)
            else:
                self.send_json_error(404, f"no route for GET {url.path}")
        except KeyError as exc:
            self.send_json_error(404, f"unknown job {exc.args[0]!r}")
        except ServiceClientError as exc:
            # a shard's verdict (410 corrupt, 4xx): pass it through
            self.send_json_error(exc.status or 502, str(exc))
        except (ValueError, ReproError) as exc:
            self.send_json_error(400, str(exc))

    def do_POST(self) -> None:  # noqa: N802
        gateway = self.server.gateway
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["jobs"]:
                record = gateway.submit_dict(self.read_json_body())
                done = record.get("state") == "done" and record.get("cache_hit")
                self.send_json(200 if done else 202, record)
            else:
                self.send_json_error(404, f"no route for POST {url.path}")
        except AdmissionError as exc:
            # fleet-wide unavailability, same contract as a single
            # service shedding: nothing was created, retry verbatim.
            self.send_retry_after(exc.status, {"error": str(exc)}, exc.retry_after_s)
        except ServiceOverloadedError as exc:
            self.send_retry_after(exc.status, {"error": str(exc)}, exc.retry_after_s)
        except ServiceClientError as exc:
            self.send_json_error(exc.status or 502, str(exc))
        except ReproError as exc:
            self.send_json_error(400, str(exc))

    def do_DELETE(self) -> None:  # noqa: N802
        gateway = self.server.gateway
        parts = [p for p in urlparse(self.path).path.split("/") if p]
        try:
            if len(parts) == 2 and parts[0] == "jobs":
                if gateway.cancel(parts[1]):
                    self.send_json(200, gateway.status(parts[1]))
                else:
                    self.send_json_error(409, f"{parts[1]} already finished")
            else:
                self.send_json_error(404, f"no route for DELETE {self.path}")
        except KeyError as exc:
            self.send_json_error(404, f"unknown job {exc.args[0]!r}")
        except ServiceClientError as exc:
            self.send_json_error(exc.status or 502, str(exc))


def serve_gateway_http(
    gateway: FleetGateway, host: str = "127.0.0.1", port: int = 0
) -> GatewayHTTPServer:
    """Bind a gateway server (``port=0`` = ephemeral) on a daemon thread."""
    server = GatewayHTTPServer((host, port), gateway)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-fleet-http", daemon=True
    )
    thread.start()
    return server
