"""The fleet gateway: a consistent-hash sharded tier over the serve layer.

:class:`FleetGateway` fronts N independent :class:`~repro.serve.service.
SimulationService` shards - each with its own journal, store, and cache
- and speaks the *same* JSON-over-HTTP surface as a single service, so
:class:`~repro.serve.client.ServiceClient` (and every CLI verb) works
unmodified against a gateway URL.

Routing: a submission's :meth:`~repro.serve.jobs.JobSpec.spec_digest`
(the spec's content hash - deterministic, cheap, identical in every
process) lands on a :class:`~repro.fleet.ring.HashRing` with virtual
nodes, so each shard owns ~1/N of the key space and membership changes
remap only ~1/N of the keys.  All requests for one content key hit one
shard, which is what makes the shard-local result store and memory
tier behave like a fleet-wide cache.

Health: a background prober sweeps every shard's ``/readyz``:

* a shard that answers **503** (shedding/draining) is *alive* but
  paced - it is skipped for new submissions until its ``Retry-After``
  gate expires, and submissions it sheds re-route to the next ring
  replica immediately,
* a shard that stops answering is quarantined **DOWN** after
  ``down_after_probes`` consecutive failures and rejoins only after
  ``recover_after_probes`` consecutive ready answers,
* when a shard goes DOWN the gateway **fails over**: every accepted job
  mapped to it whose outcome the client still needs is re-submitted to
  the next replica.  Job specs are content-addressed and simulations
  deterministic, so a re-run lands a bit-identical result - accepted
  jobs are never lost, merely recomputed.

The gateway keeps its job table in memory only: shards are the durable
tier (write-ahead journals, atomic stores), the gateway is a stateless
router plus a routing table that can be rebuilt by resubmitting.
Gateway job ids embed the spec digest (``gw-<digest16>-<seq>``), so a
*different* gateway instance handed an id it never minted can **adopt**
the job: walk the digest's ring preference, find the shard-side job by
digest, and reconstruct the routing entry - which is what lets clients
fail over between replicated gateways mid-job.

Membership is **elastic** (see :mod:`repro.fleet.membership`): shards
announce themselves via ``POST /fleet/join``, survive a probation
window of healthy probes, get their ring arc migrated over
(:mod:`repro.fleet.migrate`), and only then join routing; graceful
``POST /fleet/leave`` runs the same migration outward before the
member drops off the ring.  The membership view is journaled (a
restarted gateway replays the fleet) and replicated: a follower
gateway started with ``follow=<primary>`` tails ``GET /fleet/view``
long-polls and applies any higher-epoch view, so two gateways never
disagree on routing.

The gateway tier is **self-healing** (see :mod:`repro.fleet.election`):
the acting primary stamps a monotonic-TTL lease into every view it
publishes, a follower whose lease expires (plus ``election_probes``
failed fetches) promotes itself - epoch-jumping its own fsync'd journal
past the old primary's reserved bound and resuming any replicated
in-flight migration from its cursor - and a returning ex-primary
demotes the moment it observes the higher epoch.  ``GET
/fleet/elections`` serves the audit trail proving exactly one acting
primary minted epochs in any range.

``/metrics`` aggregates the fleet: summed per-shard counters and
numeric gauges, per-shard breakdowns, and gateway-level ``fleet.*``
counters (reroutes, shard_down, failovers, joins, migrations, adopted
jobs) plus ring-balance/epoch gauges and the migration audit trail.
"""

from __future__ import annotations

import enum
import itertools
import logging
import threading
import time
from dataclasses import dataclass, field
from http.server import ThreadingHTTPServer
from typing import Any, Callable, Mapping, Optional
from urllib.parse import parse_qs, quote, urlparse

from repro.chaos.network import network_injector
from repro.errors import ConfigurationError, ReproError
from repro.experiments.runner import code_version
from repro.fleet.election import ElectionState, Role
from repro.fleet.membership import FleetMembership, MemberState
from repro.fleet.migrate import (
    MigrationTask,
    Migrator,
    in_flight_from_entries,
    pending_from_snapshot,
    snapshot_in_flight,
)
from repro.fleet.registry import GatewayConfig, ShardSpec
from repro.fleet.ring import HashRing
from repro.serve import telemetry as tm
from repro.serve.client import (
    ServiceClient,
    ServiceClientError,
    ServiceOverloadedError,
)
from repro.serve.jobs import JobSpec
from repro.serve.service import AdmissionError
from repro.serve.telemetry import Telemetry
from repro.serve.wire import JsonRequestHandler

logger = logging.getLogger("repro.fleet")

#: job states after which a shard-side job will never change again.
_TERMINAL = ("done", "failed", "cancelled", "poisoned")
#: terminal states that must NOT be recomputed on failover: a failure
#: is deterministic and a cancellation is a client decision.
_NO_FAILOVER = ("failed", "cancelled", "poisoned")


class FleetUnavailableError(AdmissionError):
    """No shard can accept the submission right now (HTTP 503).

    Same contract as the service's admission errors: nothing was
    created anywhere, the request is safe to retry verbatim after the
    advertised delay.
    """

    status = 503


class ShardState(str, enum.Enum):
    """The prober's verdict on one shard."""

    #: answering ready probes; full routing member.
    UP = "up"
    #: alive but answering 503 (shedding/draining); skipped for new
    #: submissions until its Retry-After gate expires.
    SHEDDING = "shedding"
    #: quarantined: stopped answering probes/requests entirely.
    DOWN = "down"


class ShardHandle:
    """Mutable runtime state of one shard (guarded by the gateway lock)."""

    def __init__(self, spec: ShardSpec, client: ServiceClient) -> None:
        self.spec = spec
        self.client = client
        #: optimistic: the first probe sweep corrects this immediately.
        self.state = ShardState.UP
        self.consecutive_failures = 0
        self.consecutive_successes = 0
        #: monotonic gate while SHEDDING (honours the shard's Retry-After).
        self.not_before = 0.0
        self.code_version: Optional[str] = None
        self.last_error: Optional[str] = None


@dataclass
class GatewayJob:
    """The gateway's routing entry for one accepted submission."""

    gateway_id: str
    #: the verbatim client payload - what a failover re-submits.
    payload: dict[str, Any]
    #: spec content digest; the ring routing key.
    key: str
    #: current shard (None while orphaned awaiting re-route).
    shard_name: Optional[str]
    shard_job_id: Optional[str]
    submitted_at: float = 0.0
    #: cached terminal record (a terminal shard job never changes).
    last_record: Optional[dict[str, Any]] = None
    #: the result document was successfully returned to a client.
    served_result: bool = False
    #: times this job was re-submitted after losing its shard.
    failovers: int = 0
    workload: str = ""


class FleetGateway:
    """Consistent-hash routing gateway over an elastic shard membership."""

    def __init__(
        self,
        config: GatewayConfig,
        journal_hook: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.config = config
        self.telemetry = Telemetry()
        self.code_version = code_version()
        self._lock = threading.RLock()
        self._stop = threading.Event()
        #: woken on every membership epoch bump (the /fleet/view long-poll).
        self._view_cond = threading.Condition()
        #: lease/election state machine; created before the membership
        #: table so seed mutations land in the minted-epoch audit.
        self._election = ElectionState(
            name=config.gateway_name or "gateway",
            role=Role.FOLLOWER if config.follow else Role.PRIMARY,
            advertise_url=config.advertise_url,
            lease_ttl_s=config.lease_ttl_s,
            election_probes=config.election_probes,
            epoch_reserve=config.epoch_reserve,
            now=time.monotonic(),
        )
        if config.follow:
            self._election.acting_url = config.follow
        #: the single source of truth for who is in the fleet; the static
        #: config shards seed the first epoch of a fresh journal.
        self.membership = FleetMembership(
            config.membership_journal,
            seeds=config.shards,
            on_append=journal_hook,
            on_epoch=self._election.note_minted,
        )
        self._shards: dict[str, ShardHandle] = {}
        self._ring = HashRing((), vnodes=config.vnodes)
        self._sync_handles_locked()
        self._jobs: dict[str, GatewayJob] = {}
        self._seq = itertools.count(1)
        self._prober: Optional[threading.Thread] = None
        self._replication: Optional[threading.Thread] = None
        #: url -> client used by the replication thread (follower polls
        #: and primary peer-watch); cached so hint-chasing is cheap.
        self._replication_clients: dict[str, ServiceClient] = {}
        #: latest in-flight migration snapshot replicated from the
        #: acting primary's view - what a promotion resumes from.
        self._replicated_inflight: list[dict[str, Any]] = []
        #: node -> monotonic gate before which the prober must not
        #: respawn that member's stalled migration again.
        self._respawn_at: dict[str, float] = {}
        #: version sets already warned about (warn once per combination).
        self._warned_versions: set[frozenset] = set()
        #: serializes arc migrations (overlapping ring deltas compose badly).
        self._migration_sem = threading.Lock()
        #: mid -> in-flight MigrationTask (readiness + double-read checks).
        self._live_migrations: dict[str, MigrationTask] = {}
        #: completed migration audit documents, oldest first.
        self._migration_audits: list[dict[str, Any]] = []
        #: (from_ring, to_ring) of every migration this process saw -
        #: the double-read candidates for keys caught in a handoff.
        self._migration_rings: list[tuple[HashRing, HashRing]] = []
        #: migrations recovered from the journal, resumed by start().
        self._pending_resume = in_flight_from_entries(
            self.membership.extra_entries
        )
        for member in self.membership.members():
            if member.state is MemberState.SYNCING and not any(
                p["node"] == member.name for p in self._pending_resume
            ):
                # killed between the SYNCING transition and the start
                # record: the migration never began, begin it afresh.
                self._pending_resume.append(
                    {
                        "mid": f"join:{member.name}:e{member.epoch}",
                        "kind": "join",
                        "node": member.name,
                        "done_keys": set(),
                    }
                )
        #: 503 on /readyz until the replayed fleet's migrations resume.
        self._resuming = bool(self._pending_resume)

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> "FleetGateway":
        for pending in self._pending_resume:
            self._spawn_migration(
                pending["kind"],
                pending["node"],
                done_keys=pending["done_keys"],
                mid=pending["mid"],
            )
        self._pending_resume = []
        self._resuming = False
        self.probe_once()  # synchronous first sweep: honest initial states
        self._prober = threading.Thread(
            target=self._probe_loop, name="repro-fleet-prober", daemon=True
        )
        self._prober.start()
        # always started: as a follower it tails the acting primary's
        # view (and promotes on lease expiry); as a primary it watches
        # peers and known replicas for a higher-epoch rival (demotion).
        self._replication = threading.Thread(
            target=self._replication_loop,
            name="repro-fleet-replication",
            daemon=True,
        )
        self._replication.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        with self._view_cond:
            self._view_cond.notify_all()
        for thread in (self._prober, self._replication):
            if thread is not None:
                thread.join(timeout=timeout)
        self.membership.close()

    def __enter__(self) -> "FleetGateway":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- elastic membership ---------------------------------------------------
    def _sync_handles_locked(self) -> None:
        """Reconcile shard handles + ring with the membership table.

        Handles exist for every non-LEFT member (probation members are
        probed, syncing members are migration endpoints) but the ring
        carries only ACTIVE members - the routing flip *is* the ACTIVE
        transition.
        """
        routable = {m.name: m for m in self.membership.routable()}
        for name, member in routable.items():
            handle = self._shards.get(name)
            if handle is None or handle.spec.url != member.url:
                self._shards[name] = ShardHandle(
                    ShardSpec(name, member.url),
                    ServiceClient(
                        member.url,
                        timeout_s=self.config.read_timeout_s,
                        connect_timeout_s=self.config.connect_timeout_s,
                        retries=0,
                    ),
                )
        for name in [n for n in self._shards if n not in routable]:
            del self._shards[name]
        active = set(self.membership.active_names())
        if active != set(self._ring.nodes):
            self._ring = HashRing(active, vnodes=self.config.vnodes)

    def _handles(self) -> list[ShardHandle]:
        with self._lock:
            return list(self._shards.values())

    def _client_for(self, name: str) -> Optional[ServiceClient]:
        with self._lock:
            handle = self._shards.get(name)
        return None if handle is None else handle.client

    def _notify_view(self) -> None:
        with self._view_cond:
            self._view_cond.notify_all()

    def _primary_hint(self) -> dict[str, Any]:
        """The 503 body a non-primary answers membership requests with.

        The ``primary`` URL comes from the *latest adopted view's
        lease* (falling back to the static ``follow`` config before
        first contact), so an announcer chasing the hint lands on the
        post-election acting primary, not on whoever this gateway was
        originally configured to follow.
        """
        lease = self._election.last_lease or {}
        return {
            "error": "this gateway is not the acting primary; "
            "announce to the primary",
            "primary": self._election.acting_url
            or lease.get("url")
            or self.config.follow,
            "primary_name": lease.get("holder"),
            "role": self._election.role.value,
            "epoch": self.membership.epoch,
        }

    def _fenced_body(self) -> dict[str, Any]:
        """The 503 body a fenced primary answers membership requests with."""
        self.telemetry.count(tm.FLEET_FENCED_REJECTS)
        return {
            "error": "primary is fenced (no follower lease renewal within "
            "the TTL); membership is frozen pending re-contact",
            "fenced": True,
            "epoch": self.membership.epoch,
        }

    def join(self, payload: dict[str, Any]) -> tuple[int, dict[str, Any]]:
        """Handle one ``POST /fleet/join``; returns (status, body).

        Idempotent: a member re-announcing its current identity gets
        its current state back without an epoch bump, which is what
        lets shards re-announce on a timer to heal gateway restarts.
        """
        if not self._election.is_primary():
            return 503, self._primary_hint()
        if not self._election.may_mint(
            self.membership.epoch + 1, time.monotonic()
        ):
            return 503, self._fenced_body()
        name = str(payload.get("shard_name", ""))
        url = str(payload.get("url", ""))
        joiner_version = payload.get("code_version")
        try:
            spec = ShardSpec(name, url)  # validates + normalizes
        except ConfigurationError as exc:
            self.telemetry.count(tm.FLEET_JOINS_REJECTED)
            return 400, {"error": str(exc)}
        with self._lock:
            existing = self.membership.get(spec.name)
            if (
                existing is not None
                and existing.url == spec.url
                and existing.state is not MemberState.LEFT
            ):
                return 200, {
                    "shard_name": spec.name,
                    "state": existing.state.value,
                    "epoch": self.membership.epoch,
                }
            for member in self.membership.routable():
                if member.url == spec.url and member.name != spec.name:
                    self.telemetry.count(tm.FLEET_JOINS_REJECTED)
                    return 409, {
                        "error": f"url {spec.url} already registered as "
                        f"shard {member.name!r}"
                    }
            fleet_versions = {
                h.code_version
                for h in self._shards.values()
                if h.code_version
                and self.membership.get(h.spec.name) is not None
                and self.membership.get(h.spec.name).state
                is MemberState.ACTIVE
            } or {self.code_version}
            if (
                joiner_version is not None
                and joiner_version not in fleet_versions
                and not self.config.allow_version_skew
            ):
                self.telemetry.count(tm.FLEET_JOINS_REJECTED)
                self.telemetry.event(
                    "fleet",
                    "join_rejected",
                    shard=spec.name,
                    reason="version skew",
                    joiner=joiner_version,
                    fleet=sorted(fleet_versions),
                )
                return 403, {
                    "error": f"code_version {joiner_version!r} does not match "
                    f"the fleet ({sorted(fleet_versions)}); results would not "
                    "be cache-compatible (pass --allow-version-skew to admit)"
                }
            self.membership.upsert(
                spec.name,
                spec.url,
                code_version=joiner_version,
                state=MemberState.PROBATION,
            )
            self._sync_handles_locked()
            epoch = self.membership.epoch
        self.telemetry.count(tm.FLEET_JOINS)
        self.telemetry.count(tm.FLEET_EPOCH_BUMPS)
        self.telemetry.event(
            "fleet", "member_joined", shard=spec.name, url=spec.url, epoch=epoch
        )
        logger.info("shard %s (%s) joined on probation", spec.name, spec.url)
        self._notify_view()
        return 202, {
            "shard_name": spec.name,
            "state": MemberState.PROBATION.value,
            "epoch": epoch,
            "probation_probes": self.config.probation_probes,
        }

    def leave(self, payload: dict[str, Any]) -> tuple[int, dict[str, Any]]:
        """Handle one ``POST /fleet/leave`` (graceful drain)."""
        if not self._election.is_primary():
            return 503, self._primary_hint()
        if not self._election.may_mint(
            self.membership.epoch + 1, time.monotonic()
        ):
            return 503, self._fenced_body()
        name = str(payload.get("shard_name", ""))
        with self._lock:
            member = self.membership.get(name)
            if member is None:
                return 404, {"error": f"unknown shard {name!r}"}
            if member.state is MemberState.LEFT:
                return 200, {"shard_name": name, "state": "left"}
            on_ring = name in self._ring.nodes and len(self._ring) > 1
            if not on_ring:
                # probation/syncing member, or the last shard standing:
                # nothing to migrate off the ring, drop it immediately.
                self.membership.set_state(name, MemberState.LEFT)
                self._sync_handles_locked()
        self.telemetry.count(tm.FLEET_LEAVES)
        self.telemetry.count(tm.FLEET_EPOCH_BUMPS)
        self.telemetry.event("fleet", "member_leaving", shard=name, migrate=on_ring)
        self._notify_view()
        if on_ring:
            # the member keeps serving its arc while the migrator copies
            # it out; the LEFT transition (= the routing flip) happens in
            # _run_migration once the copy lands.
            self._spawn_migration("leave", name)
            return 202, {"shard_name": name, "state": "leaving"}
        return 200, {"shard_name": name, "state": "left"}

    def _note_probation(self, shard: ShardHandle) -> None:
        """Count one healthy probe toward a probation member's admission."""
        # only an acting, un-fenced primary mutates membership: a
        # follower's probes must never mint epochs of their own.
        if not self._election.may_mint(
            self.membership.epoch + 1, time.monotonic()
        ):
            return
        member = self.membership.get(shard.spec.name)
        if member is None or member.state is not MemberState.PROBATION:
            return
        member.healthy_probes += 1
        if member.healthy_probes < self.config.probation_probes:
            return
        with self._lock:
            self.membership.set_state(shard.spec.name, MemberState.SYNCING)
        self.telemetry.count(tm.FLEET_EPOCH_BUMPS)
        self.telemetry.event(
            "fleet", "member_syncing", shard=shard.spec.name
        )
        logger.info(
            "shard %s passed probation; migrating its arc", shard.spec.name
        )
        self._notify_view()
        self._spawn_migration("join", shard.spec.name)

    # -- arc migration --------------------------------------------------------
    def _spawn_migration(
        self,
        kind: str,
        node: str,
        done_keys: Optional[set] = None,
        mid: Optional[str] = None,
    ) -> threading.Thread:
        if kind == "join":
            # gate the prober's stalled-migration respawn: the spawned
            # thread may not have registered in _live_migrations yet.
            self._respawn_at[node] = time.monotonic() + max(
                2 * self.config.probe_interval_s, 1.0
            )
        thread = threading.Thread(
            target=self._run_migration,
            args=(kind, node, set(done_keys or ()), mid),
            name=f"repro-fleet-migrate-{node}",
            daemon=True,
        )
        thread.start()
        return thread

    def _run_migration(
        self, kind: str, node: str, done_keys: set, mid: Optional[str]
    ) -> None:
        """Copy the arc, then flip routing (the member state transition)."""
        with self._migration_sem:
            with self._lock:
                current = self._ring
                target: Optional[HashRing] = None
                if kind == "join":
                    if node not in current.nodes:
                        target = current.with_node(node)
                elif node in current.nodes and len(current) > 1:
                    target = current.without_node(node)
                if mid is None:
                    mid = f"{kind}:{node}:e{self.membership.epoch}"
                task = MigrationTask(
                    mid=mid, kind=kind, node=node, done_keys=done_keys
                )
                self._live_migrations[mid] = task
            try:
                if target is not None:
                    audit = Migrator(
                        self._client_for,
                        journal_append=self.membership.append_entry,
                        telemetry=self.telemetry,
                        stop=self._stop,
                    ).run(task, current, target)
                else:
                    audit = task.audit()
            finally:
                with self._lock:
                    self._live_migrations.pop(mid, None)
            with self._lock:
                self._migration_audits.append(audit)
                if target is not None:
                    self._migration_rings.append((current, target))
                member = self.membership.get(node)
                flipped = False
                may_flip = self._election.may_mint(
                    self.membership.epoch + 1, time.monotonic()
                )
                # a join whose copy skipped *anything* (unreachable
                # source, failed copies - e.g. a partition landing mid
                # arc) must NOT flip: the joiner would take over arc
                # keys it holds no data for.  It stays SYNCING and the
                # prober respawns the migration once the sources come
                # back; already-copied keys re-import as no-ops.
                arc_incomplete = kind == "join" and bool(task.skipped)
                if kind == "join":
                    if (
                        may_flip
                        and not arc_incomplete
                        and member is not None
                        and member.state is MemberState.SYNCING
                    ):
                        self.membership.set_state(node, MemberState.ACTIVE)
                        self.telemetry.count(tm.FLEET_MEMBERS_PROMOTED)
                        flipped = True
                elif (
                    may_flip
                    and member is not None
                    and member.state is not MemberState.LEFT
                ):
                    self.membership.set_state(node, MemberState.LEFT)
                    flipped = True
                if flipped:
                    self._sync_handles_locked()
        if flipped:
            self.telemetry.count(tm.FLEET_EPOCH_BUMPS)
        elif arc_incomplete or not may_flip:
            logger.warning(
                "migration %s finished without flipping (%s); the prober "
                "will retry",
                mid,
                f"{audit['skips']} arc key(s) skipped"
                if arc_incomplete
                else "fenced",
            )
        self.telemetry.event("fleet", "migration_done", **audit)
        logger.info(
            "migration %s done: %d key(s) moved, %d skipped",
            mid,
            audit["keys_migrated"],
            audit["skips"],
        )
        self._notify_view()
        if kind == "leave" and flipped:
            self._reroute_from(node)

    def _reroute_from(self, name: str) -> None:
        """Orphan + re-route jobs tracked on a member that left."""
        with self._lock:
            victims = []
            for entry in self._jobs.values():
                if entry.shard_name != name:
                    continue
                state = (entry.last_record or {}).get("state")
                if state in _NO_FAILOVER:
                    continue
                if state == "done" and entry.served_result:
                    continue
                entry.shard_name = None
                entry.shard_job_id = None
                entry.last_record = None
                victims.append(entry)
        for entry in victims:
            self._try_reroute(entry, exclude=frozenset({name}))

    def migration_audit(self) -> dict[str, Any]:
        """Every migration this gateway ran (the accounting document)."""
        with self._lock:
            return {
                "completed": [dict(a) for a in self._migration_audits],
                "live": [
                    {"mid": t.mid, "kind": t.kind, "node": t.node}
                    for t in self._live_migrations.values()
                ],
                "epoch": self.membership.epoch,
            }

    # -- view replication -----------------------------------------------------
    def wait_view(
        self,
        since: int = 0,
        wait_s: float = 0.0,
        replica: Optional[str] = None,
    ) -> dict[str, Any]:
        """The membership view, long-polling until ``epoch > since``.

        A follower tails this: the bounded wait returns the current
        (possibly unchanged) view on timeout so the poll loop never
        hangs past its budget.  A poll carrying the ``replica``
        parameter (even empty) is a *follower* poll: it renews the
        primary's lease, extends its promised epoch bound, and registers
        the follower's advertise URL for the primary's peer watch.  The
        published view is stamped with the lease, the publisher's role,
        and the in-flight migration cursors a promoted follower resumes
        from.
        """
        if replica is not None and self._election.is_primary():
            self._election.note_follower_poll(
                self.membership.epoch, replica or None, time.monotonic()
            )
            self.telemetry.count(tm.FLEET_LEASE_RENEWALS)
        deadline = time.monotonic() + min(max(wait_s, 0.0), 30.0)
        with self._view_cond:
            while (
                self.membership.epoch <= since
                and not self._stop.is_set()
            ):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._view_cond.wait(remaining)
        view = self.membership.view()
        view["role"] = self._election.role.value
        if self._election.is_primary():
            view["lease"] = self._election.lease_for(view["epoch"])
            view["acting_primary"] = self._election.advertise_url
            with self._lock:
                live = list(self._live_migrations.values())
            view["migrations"] = {"in_flight": snapshot_in_flight(live)}
        else:
            # a follower relays what it knows so a client polling the
            # wrong gateway still learns who the acting primary is.
            if self._election.last_lease is not None:
                view["lease"] = dict(self._election.last_lease)
            view["acting_primary"] = self._election.acting_url
            with self._lock:
                view["migrations"] = {
                    "in_flight": [dict(i) for i in self._replicated_inflight]
                }
        return view

    def _replication_client(self, url: str) -> ServiceClient:
        client = self._replication_clients.get(url)
        if client is None:
            client = ServiceClient(
                url,
                timeout_s=max(self.config.read_timeout_s, 15.0),
                connect_timeout_s=self.config.connect_timeout_s,
                retries=0,
            )
            self._replication_clients[url] = client
        return client

    def _replication_loop(self) -> None:
        """Follower: tail the acting primary.  Primary: watch for rivals.

        One thread serves both roles, so a gateway switches between them
        on promotion/demotion without thread churn.
        """
        while not self._stop.is_set():
            try:
                if self._election.is_primary():
                    self._watch_peers_once()
                    self._stop.wait(
                        max(
                            0.5,
                            min(
                                self.config.probe_interval_s,
                                self.config.lease_ttl_s / 2.0,
                            ),
                        )
                    )
                else:
                    self._follow_once()
            except Exception:  # one bad round must not kill replication
                self.telemetry.count("fleet.replication_errors")
                self._stop.wait(min(1.0, self.config.probe_interval_s))

    def _follow_once(self) -> None:
        """One follower poll: renew the lease or count toward election."""
        target = self._election.acting_url or self.config.follow
        if not target:
            self._stop.wait(min(1.0, self.config.probe_interval_s))
            return
        since = self.membership.epoch
        wait_s = max(0.5, min(10.0, self.config.lease_ttl_s / 2.0))
        # the *effective* advertise URL (set_advertise_url backfills it
        # for ephemeral-port gateways), so the primary's peer watch can
        # poll us back even when --advertise-url was never configured.
        replica = quote(self._election.advertise_url or "", safe="")
        path = f"/fleet/view?since={since}&wait_s={wait_s:g}&replica={replica}"
        try:
            view, _ = self._replication_client(target).request_with_budget(
                "GET", path
            )
        except (ReproError, OSError):
            if self._election.note_probe_failure(time.monotonic()):
                self._promote()
            else:
                self._stop.wait(min(1.0, self.config.probe_interval_s))
            return
        chase = self._election.note_view(view, target, time.monotonic())
        inflight = (view.get("migrations") or {}).get("in_flight")
        if isinstance(inflight, list):
            with self._lock:
                self._replicated_inflight = [
                    dict(item) for item in inflight if isinstance(item, dict)
                ]
        self._apply_remote_view(view)
        if chase:
            logger.info("lease names a different acting primary: %s", chase)

    def _watch_peers_once(self) -> None:
        """Poll peers + known replicas for a higher-epoch view (demotion).

        A restarted ex-primary discovers its successor through this:
        the successor's peer watch polls *us* with ``replica=<its
        url>``, we record that URL and poll it back, observe the higher
        epoch in its lease-stamped view, and demote.
        """
        own = (self._election.advertise_url or "").rstrip("/")
        targets: list[str] = []
        for url in (*self.config.peers, self.config.follow or ""):
            url = url.rstrip("/")
            if url and url != own and url not in targets:
                targets.append(url)
        for url in list(self._election.replicas):
            url = url.rstrip("/")
            if url and url != own and url not in targets:
                targets.append(url)
        replica = quote(own, safe="")
        for url in targets:
            if self._stop.is_set() or not self._election.is_primary():
                return
            try:
                view, _ = self._replication_client(url).request_with_budget(
                    "GET", f"/fleet/view?since=0&wait_s=0&replica={replica}"
                )
            except (ReproError, OSError):
                continue
            try:
                epoch = int(view.get("epoch", 0))
            except (TypeError, ValueError):
                continue
            lease = view.get("lease")
            holder = (
                lease.get("holder") if isinstance(lease, Mapping) else None
            )
            if epoch > self.membership.epoch and holder != self._election.name:
                self._demote(view, source_url=url)
                return

    def _apply_remote_view(self, view: Mapping[str, Any]) -> bool:
        """Adopt a higher-epoch remote view into the local table."""
        try:
            applied = self.membership.apply_view(view)
        except ConfigurationError:
            return False
        if applied:
            with self._lock:
                self._sync_handles_locked()
            self.telemetry.count(tm.FLEET_VIEWS_APPLIED)
            self.telemetry.count(tm.FLEET_EPOCH_BUMPS)
            self.telemetry.event(
                "fleet", "view_applied", epoch=view.get("epoch")
            )
            self._notify_view()
        return applied

    # -- election -------------------------------------------------------------
    def _promote(self) -> None:
        """Lease expired + probes failed: become the acting primary.

        The epoch jump (``bump_epoch`` past the old primary's reserved
        bound) is fsync'd into this gateway's own membership journal
        before anything else happens, so even a crash mid-promotion
        leaves a journal whose replay wins ``apply_view`` against the
        fenced old primary.  Replicated in-flight migration cursors are
        re-journaled locally and resumed.
        """
        with self._lock:
            if self._election.is_primary() or self._stop.is_set():
                return
            new_epoch = self._election.promotion_epoch(self.membership.epoch)
            self._election.promote(new_epoch, time.monotonic())
            self.membership.bump_epoch(new_epoch)
            pending = pending_from_snapshot(self._replicated_inflight)
            self._replicated_inflight = []
            self._sync_handles_locked()
        self.telemetry.count(tm.FLEET_ELECTIONS_WON)
        self.telemetry.count(tm.FLEET_EPOCH_BUMPS)
        self.telemetry.event(
            "fleet",
            "promoted",
            gateway=self._election.name,
            epoch=new_epoch,
            resumed_migrations=[p["mid"] for p in pending],
        )
        logger.warning(
            "lease expired: promoting to acting primary at epoch %d "
            "(%d in-flight migration(s) to resume)",
            new_epoch,
            len(pending),
        )
        for item in pending:
            # re-journal the start + cursor so a crash of *this* primary
            # resumes from the same point the old one had reached.
            self.membership.append_entry(
                {
                    "op": "migration_start",
                    "mid": item["mid"],
                    "kind": item["kind"],
                    "node": item["node"],
                    "remap_share": 0.0,
                }
            )
            for key in sorted(item["done_keys"]):
                self.membership.append_entry(
                    {"op": "migrated", "mid": item["mid"], "key": key}
                )
            self._spawn_migration(
                item["kind"],
                item["node"],
                done_keys=item["done_keys"],
                mid=item["mid"],
            )
        self._notify_view()

    def _demote(self, view: Mapping[str, Any], source_url: str) -> None:
        """A higher-epoch acting primary exists: step down and follow it."""
        lease = view.get("lease")
        lease = dict(lease) if isinstance(lease, Mapping) else {}
        try:
            epoch = int(view.get("epoch", 0))
        except (TypeError, ValueError):
            epoch = 0
        holder = lease.get("holder")
        url = lease.get("url") or source_url
        self._election.demote(holder, str(url), epoch, time.monotonic())
        self.telemetry.count(tm.FLEET_DEMOTIONS)
        self.telemetry.event("fleet", "demoted", to=holder, epoch=epoch)
        logger.warning(
            "observed acting primary %r at epoch %d (ours: %d): demoting",
            holder,
            epoch,
            self.membership.epoch,
        )
        self._apply_remote_view(view)
        self._election.note_view(view, source_url, time.monotonic())
        inflight = (view.get("migrations") or {}).get("in_flight")
        if isinstance(inflight, list):
            with self._lock:
                self._replicated_inflight = [
                    dict(item) for item in inflight if isinstance(item, dict)
                ]

    def set_advertise_url(self, url: str) -> None:
        """Backfill the advertise URL once the HTTP port is known.

        Ephemeral-port gateways (tests, dev) cannot put their URL in
        config; the HTTP binder calls this so the lease and the
        follower ``replica=`` registration still carry a reachable
        address.  A configured ``advertise_url`` always wins.
        """
        if not self._election.advertise_url:
            self._election.advertise_url = url.rstrip("/")
            if self._election.is_primary():
                self._election.acting_url = self._election.advertise_url

    def election_audit(self) -> dict[str, Any]:
        """The election audit document (``GET /fleet/elections``)."""
        doc = self._election.audit()
        doc["epoch"] = self.membership.epoch
        doc["fenced"] = self._election.fenced(time.monotonic())
        return doc

    # -- health probing -------------------------------------------------------
    def _probe_loop(self) -> None:
        while not self._stop.wait(self.config.probe_interval_s):
            try:
                self.probe_once()
            except Exception:  # one bad sweep must not kill the prober
                self.telemetry.count("fleet.probe_errors")

    def probe_once(self) -> None:
        """One sweep: probe every shard, then retry orphaned jobs.

        Probation members are probed too - their healthy streak is what
        admits them (see :meth:`_note_probation`).
        """
        for shard in self._handles():
            self._probe_shard(shard)
        self._reroute_orphans()
        self._ensure_syncing_migrations()

    def _ensure_syncing_migrations(self) -> None:
        """Respawn the arc migration of any SYNCING member that has none.

        A join migration can finish without flipping (its sources were
        all unreachable so nothing was copied, or the primary was fenced
        at flip time); the member then sits in SYNCING with no live
        migration and would never activate.  The acting primary retries
        it with a probe-interval backoff.
        """
        now = time.monotonic()
        if not self._election.may_mint(self.membership.epoch + 1, now):
            return
        respawn: list[str] = []
        with self._lock:
            live_nodes = {t.node for t in self._live_migrations.values()}
            pending_nodes = {p["node"] for p in self._pending_resume}
            for member in self.membership.members():
                if member.state is not MemberState.SYNCING:
                    continue
                if member.name in live_nodes or member.name in pending_nodes:
                    continue
                if self._respawn_at.get(member.name, 0.0) > now:
                    continue
                respawn.append(member.name)
        for name in respawn:
            self.telemetry.count(tm.FLEET_MIGRATIONS_RESPAWNED)
            self.telemetry.event("fleet", "migration_respawned", shard=name)
            logger.info("respawning stalled join migration for %s", name)
            self._spawn_migration("join", name)

    def _probe_shard(self, shard: ShardHandle) -> None:
        self.telemetry.count(tm.FLEET_PROBES)
        try:
            shard.client.request_with_budget("GET", "/readyz")
        except ServiceOverloadedError as exc:
            # it answered: alive, just not ready (shedding/draining).
            self._note_shed(shard, exc.retry_after_s)
            return
        except (ReproError, OSError) as exc:
            self._note_failure(shard, str(exc))
            return
        self._note_ready(shard)

    def _note_shed(self, shard: ShardHandle, retry_after_s: float) -> None:
        """Shard answered 429/503: pace it, and clear any quarantine."""
        with self._lock:
            shard.consecutive_failures = 0
            was_down = shard.state is ShardState.DOWN
            shard.state = ShardState.SHEDDING
            shard.not_before = time.monotonic() + max(0.0, retry_after_s)
        self.telemetry.event(
            "fleet",
            "shard_shedding",
            shard=shard.spec.name,
            retry_after_s=retry_after_s,
            was_down=was_down,
        )

    def _note_failure(self, shard: ShardHandle, error: str) -> None:
        """A probe or request could not reach the shard at all."""
        with self._lock:
            shard.consecutive_successes = 0
            shard.consecutive_failures += 1
            shard.last_error = error
            went_down = (
                shard.state is not ShardState.DOWN
                and shard.consecutive_failures >= self.config.down_after_probes
            )
            if went_down:
                shard.state = ShardState.DOWN
        if went_down:
            self.telemetry.count(tm.FLEET_SHARD_DOWN)
            self.telemetry.event(
                "fleet", "shard_down", shard=shard.spec.name, error=error
            )
            logger.warning(
                "shard %s (%s) quarantined: %s",
                shard.spec.name,
                shard.spec.url,
                error,
            )
            self._failover_shard(shard)

    def _note_ready(self, shard: ShardHandle) -> None:
        recovered = False
        self._note_probation(shard)
        with self._lock:
            shard.consecutive_failures = 0
            shard.last_error = None
            if shard.state is ShardState.UP:
                if shard.code_version is not None:
                    return
                # first successful contact: fall through to version fetch
            elif shard.state is ShardState.SHEDDING:
                shard.state = ShardState.UP
                shard.not_before = 0.0
            else:  # DOWN: require a streak of ready answers to rejoin
                shard.consecutive_successes += 1
                if shard.consecutive_successes < self.config.recover_after_probes:
                    return
                shard.state = ShardState.UP
                shard.not_before = 0.0
                recovered = True
        if recovered:
            self.telemetry.count(tm.FLEET_SHARD_RECOVERED)
            self.telemetry.event("fleet", "shard_recovered", shard=shard.spec.name)
            logger.info("shard %s rejoined the fleet", shard.spec.name)
        self._refresh_version(shard)

    def _refresh_version(self, shard: ShardHandle) -> None:
        """Record the shard's ``/healthz`` code version; warn on skew."""
        try:
            doc, _ = shard.client.request_with_budget("GET", "/healthz")
        except (ReproError, OSError):
            return
        with self._lock:
            shard.code_version = doc.get("code_version")
        self._check_versions()

    def _check_versions(self) -> None:
        # only shard-vs-shard skew matters: shards compute and cache the
        # results, the gateway merely routes, so its own version is not
        # part of the compatibility set.
        with self._lock:
            versions = {
                s.spec.name: s.code_version
                for s in self._shards.values()
                if s.code_version
            }
            observed = frozenset(versions.values())
            if len(observed) <= 1 or observed in self._warned_versions:
                return
            self._warned_versions.add(observed)
        self.telemetry.count(tm.FLEET_VERSION_MISMATCH)
        self.telemetry.event(
            "fleet",
            "version_mismatch",
            gateway=self.code_version,
            shards=versions,
        )
        logger.warning(
            "fleet is running mixed code versions (results will not be "
            "cache-compatible across shards): gateway=%s shards=%s",
            self.code_version,
            versions,
        )

    # -- routing --------------------------------------------------------------
    def _eligible(self, shard: ShardHandle, now: float) -> bool:
        if shard.state is ShardState.DOWN:
            return False
        if shard.state is ShardState.SHEDDING and shard.not_before > now:
            return False
        return True

    def _route_submit(
        self,
        payload: dict[str, Any],
        key: str,
        exclude: frozenset = frozenset(),
    ) -> tuple[ShardHandle, dict[str, Any]]:
        """Submit ``payload`` to the first willing shard in ring order.

        Walks the key's replica preference list: quarantined shards and
        shards inside their Retry-After gate are skipped, a shard that
        sheds (429/503) is paced and skipped, a shard that is
        unreachable is charged a failure (possibly quarantining it) -
        in every case the next distinct ring replica is tried.  A 4xx
        from a shard (bad spec) propagates unchanged.  Raises
        :class:`FleetUnavailableError` when no shard will take it.
        """
        with self._lock:
            ring = self._ring  # membership swaps rings; snapshot one
        order = ring.preference(key)
        budget_spent = 0.0
        shed_hint: Optional[float] = None
        for name in order:
            if name in exclude:
                continue
            with self._lock:
                shard = self._shards.get(name)
                if shard is None:  # left the fleet since preference()
                    continue
                eligible = self._eligible(shard, time.monotonic())
                gate = shard.not_before
            if not eligible:
                if shard.state is ShardState.SHEDDING:
                    wait = max(0.0, gate - time.monotonic())
                    shed_hint = wait if shed_hint is None else min(shed_hint, wait)
                continue
            try:
                record, budget_spent = shard.client.request_with_budget(
                    "POST", "/jobs", payload, budget_spent
                )
            except ServiceOverloadedError as exc:
                self._note_shed(shard, exc.retry_after_s)
                shed_hint = (
                    exc.retry_after_s
                    if shed_hint is None
                    else min(shed_hint, exc.retry_after_s)
                )
                continue
            except ServiceClientError as exc:
                if exc.status == 0:  # unreachable; never acted on the spec
                    self._note_failure(shard, str(exc))
                    continue
                raise  # a real verdict (400 bad spec, ...) - pass through
            if name != order[0]:
                self.telemetry.count(tm.FLEET_REROUTES)
            return shard, record
        retry_after = shed_hint if shed_hint else self.config.shed_retry_after_s
        raise FleetUnavailableError(
            f"no shard available for key {key[:12]}.. "
            f"({len(order) - len(exclude)} candidate(s) down or shedding)",
            max(retry_after, 0.05),
        )

    # -- failover -------------------------------------------------------------
    def _failover_shard(self, shard: ShardHandle) -> None:
        """Re-route every job the dead shard still owed an outcome for.

        Skipped: jobs whose cached terminal state is failed/cancelled/
        poisoned (deterministic verdicts - recomputing is pointless or
        wrong) and done jobs whose result document a client already
        fetched.  Everything else - queued, running, or done-but-
        unfetched - is orphaned and re-submitted to a surviving
        replica; determinism makes the recomputed result bit-identical.
        """
        with self._lock:
            victims = []
            for entry in self._jobs.values():
                if entry.shard_name != shard.spec.name:
                    continue
                state = (entry.last_record or {}).get("state")
                if state in _NO_FAILOVER:
                    continue
                if state == "done" and entry.served_result:
                    continue
                entry.shard_name = None
                entry.shard_job_id = None
                entry.last_record = None
                victims.append(entry)
        for entry in victims:
            self._try_reroute(entry, exclude=frozenset({shard.spec.name}))

    def _reroute_orphans(self) -> None:
        with self._lock:
            orphans = [e for e in self._jobs.values() if e.shard_name is None]
        for entry in orphans:
            self._try_reroute(entry)

    def _try_reroute(
        self, entry: GatewayJob, exclude: frozenset = frozenset()
    ) -> bool:
        """Re-submit an orphaned job; False leaves it for the next sweep."""
        with self._lock:
            if entry.shard_name is not None:  # another thread beat us to it
                return True
        try:
            shard, record = self._route_submit(entry.payload, entry.key, exclude)
        except (AdmissionError, ServiceClientError, ReproError):
            return False
        with self._lock:
            entry.shard_name = shard.spec.name
            entry.shard_job_id = record["job_id"]
            entry.failovers += 1
            if record.get("state") in _TERMINAL:
                entry.last_record = dict(record)
        self.telemetry.count(tm.FLEET_FAILOVERS)
        self.telemetry.count(tm.FLEET_REROUTES)
        self.telemetry.event(
            entry.gateway_id,
            "failover",
            shard=shard.spec.name,
            shard_job_id=record["job_id"],
            key=entry.key,
        )
        return True

    # -- client API (mirrors SimulationService for the HTTP layer) ------------
    def submit_dict(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Validate, route by content key, and track one submission."""
        spec = JobSpec.from_dict(payload)  # 400 on malformed payloads
        key = spec.spec_digest()
        shard, record = self._route_submit(dict(payload), key)
        with self._lock:
            # the digest in the id is what lets a *sibling* gateway
            # adopt this job if a client fails over to it (see _adopt).
            gateway_id = f"gw-{key}-{next(self._seq):06d}"
            entry = GatewayJob(
                gateway_id=gateway_id,
                payload=dict(payload),
                key=key,
                shard_name=shard.spec.name,
                shard_job_id=record["job_id"],
                submitted_at=time.time(),
                workload=spec.workload,
            )
            if record.get("state") in _TERMINAL:
                entry.last_record = dict(record)
            self._jobs[gateway_id] = entry
        self.telemetry.count(tm.FLEET_JOBS_ROUTED)
        self.telemetry.event(
            gateway_id,
            "routed",
            shard=shard.spec.name,
            shard_job_id=record["job_id"],
            key=key,
            workload=spec.workload,
        )
        return self._rewrite(entry, record)

    def _entry(self, gateway_id: str) -> GatewayJob:
        with self._lock:
            entry = self._jobs.get(gateway_id)
        if entry is None:
            entry = self._adopt(gateway_id)
        if entry is None:
            raise KeyError(gateway_id)
        return entry

    def _adopt(self, gateway_id: str) -> Optional[GatewayJob]:
        """Reconstruct a sibling gateway's job from shard state.

        Gateway ids embed the spec digest, and shards list it per job:
        walking the digest's ring preference finds the shard running the
        spec, and its record (which carries the verbatim spec) rebuilds
        a routing entry good enough to poll, fetch, cancel, and fail
        over - so a client that loses its gateway mid-job can finish
        the job through a replica.  Ids that don't parse (including the
        old ``gw-<seq>`` form) stay unknown: adoption never invents
        jobs.
        """
        parts = gateway_id.split("-")
        if len(parts) != 3 or parts[0] != "gw":
            return None
        digest, seq = parts[1], parts[2]
        if len(digest) != 16 or not seq.isdigit():
            return None
        try:
            int(digest, 16)
        except ValueError:
            return None
        with self._lock:
            ring = self._ring  # membership swaps rings; snapshot one
        for name in ring.preference(digest):
            client = self._client_for(name)
            if client is None:
                continue
            try:
                listing, _ = client.request_with_budget("GET", "/jobs")
            except (ReproError, OSError):
                continue
            for item in listing.get("jobs", []):
                if item.get("digest") != digest:
                    continue
                try:
                    record, _ = client.request_with_budget(
                        "GET", f"/jobs/{item['job_id']}"
                    )
                except (ReproError, OSError):
                    continue
                payload = record.get("spec")
                if not isinstance(payload, dict):
                    continue
                entry = GatewayJob(
                    gateway_id=gateway_id,
                    payload=dict(payload),
                    key=digest,
                    shard_name=name,
                    shard_job_id=record["job_id"],
                    submitted_at=float(record.get("submitted_at") or 0.0),
                    workload=str(record.get("spec", {}).get("workload", "")),
                )
                if record.get("state") in _TERMINAL:
                    entry.last_record = dict(record)
                with self._lock:
                    entry = self._jobs.setdefault(gateway_id, entry)
                self.telemetry.count(tm.FLEET_JOBS_ADOPTED)
                self.telemetry.event(
                    gateway_id, "adopted", shard=name, key=digest
                )
                return entry
        return None

    def _rewrite(
        self, entry: GatewayJob, record: dict[str, Any]
    ) -> dict[str, Any]:
        """A shard record presented under the gateway's job id."""
        out = dict(record)
        out["job_id"] = entry.gateway_id
        out["shard"] = entry.shard_name
        out["failovers"] = entry.failovers
        return out

    def _synthetic(self, entry: GatewayJob, state: str) -> dict[str, Any]:
        """A record for a job the gateway cannot currently ask a shard
        about (orphaned mid-failover); clients keep polling it."""
        return {
            "job_id": entry.gateway_id,
            "state": state,
            "key": entry.key,
            "spec": dict(entry.payload),
            "submitted_at": entry.submitted_at,
            "started_at": None,
            "finished_at": None,
            "attempts": 0,
            "cache_hit": False,
            "error": None,
            "worker_id": None,
            "shard": entry.shard_name,
            "failovers": entry.failovers,
        }

    def status(self, gateway_id: str) -> dict[str, Any]:
        """The job's current record (terminal records answer from cache)."""
        entry = self._entry(gateway_id)
        with self._lock:
            cached = entry.last_record
            shard_name, shard_job_id = entry.shard_name, entry.shard_job_id
        if cached is not None:
            return self._rewrite(entry, cached)
        if shard_name is None:
            return self._synthetic(entry, "queued")
        with self._lock:
            shard = self._shards.get(shard_name)
        if shard is None:  # the member left; route the job afresh
            with self._lock:
                entry.shard_name = None
                entry.shard_job_id = None
            self._try_reroute(entry)
            return self._synthetic(entry, "queued")
        try:
            record, _ = shard.client.request_with_budget(
                "GET", f"/jobs/{shard_job_id}"
            )
        except ServiceClientError as exc:
            if exc.status == 0:
                # shard unreachable: charge the failure (which may
                # quarantine it and re-route this very entry), then
                # answer from whatever state the entry is in now.
                self._note_failure(shard, str(exc))
                with self._lock:
                    cached = entry.last_record
                if cached is not None:
                    return self._rewrite(entry, cached)
                return self._synthetic(entry, "queued")
            if exc.status == 404:
                # the shard forgot the job (restarted against a fresh
                # journal/store): re-submit it through normal routing.
                with self._lock:
                    entry.shard_name = None
                    entry.shard_job_id = None
                self._try_reroute(entry)
                return self._synthetic(entry, "queued")
            raise
        with self._lock:
            if record.get("state") in _TERMINAL:
                entry.last_record = dict(record)
        return self._rewrite(entry, record)

    def result_doc(self, gateway_id: str) -> Optional[dict[str, Any]]:
        """The stored result document (None until available).

        A miss on the routed shard falls back to the key's owner under
        every other ring this gateway has migrated between (the
        **double-read**): during an arc handoff the entry provably
        exists on exactly one of the two owners, so reading both means
        no request ever misses mid-migration.
        """
        entry = self._entry(gateway_id)
        with self._lock:
            shard_name, shard_job_id = entry.shard_name, entry.shard_job_id
        if shard_name is None:
            return None  # mid-failover; the recompute is on its way
        with self._lock:
            shard = self._shards.get(shard_name)
        if shard is None:
            return self._double_read(entry, exclude={shard_name})
        try:
            doc, _ = shard.client.request_with_budget(
                "GET", f"/jobs/{shard_job_id}/result"
            )
        except ServiceClientError as exc:
            if exc.status == 0:
                self._note_failure(shard, str(exc))
                return self._double_read(entry, exclude={shard_name})
            if exc.status == 404:
                return self._double_read(entry, exclude={shard_name})
            raise  # 410 quarantined-corrupt and friends pass through
        with self._lock:
            entry.served_result = True
        return doc

    def _double_read_candidates(self, key: str, exclude: set) -> list[str]:
        """The key's owners under rings adjacent to a migration."""
        with self._lock:
            rings = [ring for pair in self._migration_rings for ring in pair]
            # mid-migration the counterpart is the joiner/leaver itself
            live_nodes = [t.node for t in self._live_migrations.values()]
        candidates: list[str] = []
        for ring in rings:
            try:
                owner = ring.primary(key)
            except ReproError:
                continue
            if owner not in exclude and owner not in candidates:
                candidates.append(owner)
        for node in live_nodes:
            if node not in exclude and node not in candidates:
                candidates.append(node)
        return candidates

    def _double_read(
        self, entry: GatewayJob, exclude: set
    ) -> Optional[dict[str, Any]]:
        """Fetch the result from the migration counterpart owner(s)."""
        for name in self._double_read_candidates(entry.key, set(exclude)):
            client = self._client_for(name)
            if client is None:
                continue
            try:
                listing, _ = client.request_with_budget("GET", "/jobs")
            except (ReproError, OSError):
                continue
            for item in listing.get("jobs", []):
                if item.get("digest") != entry.key or item.get("state") != "done":
                    continue
                try:
                    doc, _ = client.request_with_budget(
                        "GET", f"/jobs/{item['job_id']}/result"
                    )
                except (ReproError, OSError):
                    continue
                with self._lock:
                    entry.served_result = True
                self.telemetry.count(tm.FLEET_DOUBLE_READS)
                self.telemetry.event(
                    entry.gateway_id, "double_read", shard=name, key=entry.key
                )
                return doc
        return None

    def cancel(self, gateway_id: str) -> bool:
        """Cancel wherever the job lives; False if already finished."""
        entry = self._entry(gateway_id)
        with self._lock:
            cached = entry.last_record
            shard_name, shard_job_id = entry.shard_name, entry.shard_job_id
        if cached is not None and cached.get("state") in _TERMINAL:
            return False
        with self._lock:
            shard = self._shards.get(shard_name) if shard_name else None
        if shard is None:
            # orphaned (or its member left): cancel locally; the cached
            # terminal state also stops failover from resurrecting it.
            with self._lock:
                entry.last_record = self._synthetic(entry, "cancelled")
            self.telemetry.event(gateway_id, "cancelled", orphaned=True)
            return True
        try:
            record, _ = shard.client.request_with_budget(
                "DELETE", f"/jobs/{shard_job_id}"
            )
        except ServiceClientError as exc:
            if exc.status == 409:
                return False
            if exc.status == 0:
                self._note_failure(shard, str(exc))
                with self._lock:
                    if (entry.last_record or {}).get("state") in _TERMINAL:
                        return False
                    entry.last_record = self._synthetic(entry, "cancelled")
                self.telemetry.event(gateway_id, "cancelled", shard_lost=True)
                return True
            raise
        with self._lock:
            entry.last_record = dict(record)
        self.telemetry.event(gateway_id, "cancelled", shard=shard_name)
        return True

    def jobs(self) -> list[dict[str, Any]]:
        """Fleet-wide job summaries under gateway ids (one bulk call per
        reachable shard; unreachable shards fall back to cached/synthetic
        state)."""
        summaries: dict[str, dict[str, Any]] = {}
        for shard in self._handles():
            with self._lock:
                if shard.state is ShardState.DOWN:
                    continue
            try:
                listing, _ = shard.client.request_with_budget("GET", "/jobs")
            except (ReproError, OSError):
                continue
            for item in listing.get("jobs", []):
                summaries[f"{shard.spec.name}:{item['job_id']}"] = item
        out = []
        with self._lock:
            entries = list(self._jobs.values())
        for entry in entries:
            cached = entry.last_record
            live = (
                summaries.get(f"{entry.shard_name}:{entry.shard_job_id}")
                if entry.shard_name
                else None
            )
            base = cached or live or self._synthetic(entry, "queued")
            out.append(
                {
                    "job_id": entry.gateway_id,
                    "state": base.get("state", "queued"),
                    "workload": entry.workload or base.get("workload", ""),
                    "attempts": base.get("attempts", 0),
                    "cache_hit": bool(base.get("cache_hit")),
                    "shard": entry.shard_name,
                    "failovers": entry.failovers,
                }
            )
        return out

    # -- observability --------------------------------------------------------
    def shard_states(self) -> dict[str, str]:
        with self._lock:
            return {
                name: shard.state.value for name, shard in self._shards.items()
            }

    def healthz_payload(self) -> dict[str, Any]:
        with self._lock:
            versions = {
                name: shard.code_version
                for name, shard in self._shards.items()
            }
        lease = self._election.last_lease or {}
        return {
            "ok": True,
            "role": "gateway",
            "gateway_name": self.config.gateway_name,
            "follower": not self._election.is_primary(),
            "election": {
                "role": self._election.role.value,
                "acting_primary": self._election.acting_url,
                "primary_name": lease.get("holder"),
                "fenced": self._election.fenced(time.monotonic()),
            },
            "epoch": self.membership.epoch,
            "code_version": self.code_version,
            "draining": False,
            "shards": self.shard_states(),
            "shard_versions": versions,
            "members": {
                m.name: m.state.value for m in self.membership.members()
            },
        }

    def _unserved_arcs_locked(self) -> list[str]:
        """Live leave-migrations whose arc has no serving owner.

        During a *join* migration the old owner keeps serving, so the
        arc is always covered; during a *leave* the leaver serves until
        the flip - unless it has meanwhile died, in which case the arc's
        keys are reachable on neither side until the copy lands and the
        ring flips.  Answering 503 then is honest: admitting requests
        would route them into the hole.
        """
        unserved = []
        for task in self._live_migrations.values():
            if task.kind != "leave":
                continue
            handle = self._shards.get(task.node)
            if handle is None or handle.state is ShardState.DOWN:
                unserved.append(task.mid)
        return unserved

    def readiness(self) -> tuple[bool, dict[str, Any]]:
        """Ready iff routing is coherent and a shard can admit.

        Not ready while: the replayed membership journal's in-flight
        migrations have not been resumed yet, a follower has not seen
        its first view, a mid-migration arc has no serving owner, or no
        shard is up and admitting.
        """
        now = time.monotonic()
        reasons: list[str] = []
        if self._resuming:
            reasons.append("replaying membership journal")
        if not self._election.is_primary() and not self.membership.members():
            reasons.append("awaiting first membership view from primary")
        with self._lock:
            eligible = [
                name
                for name, shard in self._shards.items()
                if self._eligible(shard, now)
                and name in self._ring.nodes
            ]
            for mid in self._unserved_arcs_locked():
                reasons.append(f"arc mid-migration with no serving owner: {mid}")
        if not eligible:
            reasons.append("no shard is up and admitting")
        detail = {
            "ready": not reasons,
            "reasons": reasons,
            "eligible_shards": eligible,
            "shards": self.shard_states(),
            "epoch": self.membership.epoch,
        }
        return not reasons, detail

    def metrics(self) -> dict[str, Any]:
        """The fleet aggregate: summed shard counters/gauges + breakdowns.

        Shard counter names never collide with the gateway's own
        ``fleet.*`` namespace, so the merged ``counters`` map is exactly
        "sum of reachable shards, plus gateway routing counters"; the
        raw per-shard documents ride along under ``fleet.shards`` so
        operators (and tests) can audit the aggregation.
        """
        per_shard: dict[str, Optional[dict[str, Any]]] = {}
        for shard in self._handles():
            try:
                doc, _ = shard.client.request_with_budget("GET", "/metrics")
            except (ReproError, OSError):
                doc = None
            per_shard[shard.spec.name] = doc
        counters: dict[str, int] = {}
        gauges: dict[str, Any] = {}
        for doc in per_shard.values():
            if doc is None:
                continue
            for name, value in doc.get("counters", {}).items():
                counters[name] = counters.get(name, 0) + value
            for name, value in doc.get("gauges", {}).items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                gauges[name] = gauges.get(name, 0) + value
        states = self.shard_states()
        with self._lock:
            shares = self._ring.shares()
            shard_meta = {
                name: {
                    "url": shard.spec.url,
                    "state": states.get(name),
                    "code_version": shard.code_version,
                    "last_error": shard.last_error,
                    "ring_share": shares.get(name, 0.0),
                    "metrics": per_shard.get(name),
                }
                for name, shard in self._shards.items()
            }
            orphaned = sum(1 for e in self._jobs.values() if e.shard_name is None)
            jobs_tracked = len(self._jobs)
            fleet_size = len(self._shards)
            live_migrations = len(self._live_migrations)
        member_states = [m.state.value for m in self.membership.members()]
        gauges.update(
            {
                "fleet_size": fleet_size,
                "shards_up": sum(1 for s in states.values() if s == "up"),
                "shards_shedding": sum(
                    1 for s in states.values() if s == "shedding"
                ),
                "shards_down": sum(1 for s in states.values() if s == "down"),
                "ring_vnodes": self.config.vnodes,
                "ring_max_share": max(shares.values()) if shares else 0.0,
                "ring_min_share": min(shares.values()) if shares else 0.0,
                "gateway_jobs_tracked": jobs_tracked,
                "gateway_jobs_orphaned": orphaned,
                "fleet_epoch": self.membership.epoch,
                "members_active": member_states.count("active"),
                "members_probation": member_states.count("probation"),
                "members_syncing": member_states.count("syncing"),
                "members_left": member_states.count("left"),
                "migrations_live": live_migrations,
                "fleet_acting_primary": 1 if self._election.is_primary() else 0,
            }
        )
        snapshot = self.telemetry.snapshot(gauges)
        counters.update(snapshot["counters"])
        injector = network_injector()
        if injector is not None:
            counters.update(injector.snapshot_counters())
        snapshot["counters"] = counters
        snapshot["fleet"] = {
            "shards": shard_meta,
            "ring_shares": shares,
            "epoch": self.membership.epoch,
            "members": {
                m.name: m.state.value for m in self.membership.members()
            },
            "migrations": self.migration_audit(),
            "election": self.election_audit(),
        }
        return snapshot


# -- HTTP surface -------------------------------------------------------------


class GatewayHTTPServer(ThreadingHTTPServer):
    """HTTP server bound to one :class:`FleetGateway`."""

    daemon_threads = True
    request_queue_size = 256

    def __init__(self, address: tuple[str, int], gateway: FleetGateway):
        super().__init__(address, _GatewayHandler)
        self.gateway = gateway

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _GatewayHandler(JsonRequestHandler):
    """The service surface, answered by routing instead of executing."""

    server: GatewayHTTPServer

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        if self.network_fault_precheck():
            return
        gateway = self.server.gateway
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["healthz"]:
                self.send_json(200, gateway.healthz_payload())
            elif parts == ["readyz"]:
                ready, detail = gateway.readiness()
                if ready:
                    self.send_json(200, detail)
                else:
                    self.send_retry_after(
                        503, detail, gateway.config.shed_retry_after_s
                    )
            elif parts == ["metrics"]:
                self.send_json(200, gateway.metrics())
            elif parts == ["events"]:
                query = parse_qs(url.query)
                since = int(query.get("since", ["0"])[0])
                limit = int(query.get("limit", ["1000"])[0])
                events = gateway.telemetry.events_since(since, limit)
                next_since = events[-1]["seq"] if events else since
                self.send_json(200, {"events": events, "next_since": next_since})
            elif parts == ["jobs"]:
                self.send_json(200, {"jobs": gateway.jobs()})
            elif parts == ["fleet", "view"]:
                query = parse_qs(url.query, keep_blank_values=True)
                since = int(query.get("since", ["0"])[0])
                wait_s = float(query.get("wait_s", ["0"])[0])
                replica = query.get("replica", [None])[0]
                self.send_json(200, gateway.wait_view(since, wait_s, replica))
            elif parts == ["fleet", "migrations"]:
                self.send_json(200, gateway.migration_audit())
            elif parts == ["fleet", "elections"]:
                self.send_json(200, gateway.election_audit())
            elif len(parts) == 2 and parts[0] == "jobs":
                self.send_json(200, gateway.status(parts[1]))
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "result":
                doc = gateway.result_doc(parts[1])
                if doc is None:
                    record = gateway.status(parts[1])
                    self.send_json_error(
                        404, f"{parts[1]} has no result ({record['state']})"
                    )
                else:
                    self.send_json(200, doc)
            else:
                self.send_json_error(404, f"no route for GET {url.path}")
        except KeyError as exc:
            self.send_json_error(404, f"unknown job {exc.args[0]!r}")
        except ServiceClientError as exc:
            # a shard's verdict (410 corrupt, 4xx): pass it through
            self.send_json_error(exc.status or 502, str(exc))
        except (ValueError, ReproError) as exc:
            self.send_json_error(400, str(exc))

    def do_POST(self) -> None:  # noqa: N802
        if self.network_fault_precheck():
            return
        gateway = self.server.gateway
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["jobs"]:
                record = gateway.submit_dict(self.read_json_body())
                done = record.get("state") == "done" and record.get("cache_hit")
                self.send_json(200 if done else 202, record)
            elif parts == ["fleet", "join"]:
                status, body = gateway.join(self.read_json_body())
                if status == 503:
                    self.send_retry_after(
                        503, body, gateway.config.shed_retry_after_s
                    )
                else:
                    self.send_json(status, body)
            elif parts == ["fleet", "leave"]:
                status, body = gateway.leave(self.read_json_body())
                if status == 503:
                    self.send_retry_after(
                        503, body, gateway.config.shed_retry_after_s
                    )
                else:
                    self.send_json(status, body)
            else:
                self.send_json_error(404, f"no route for POST {url.path}")
        except AdmissionError as exc:
            # fleet-wide unavailability, same contract as a single
            # service shedding: nothing was created, retry verbatim.
            self.send_retry_after(exc.status, {"error": str(exc)}, exc.retry_after_s)
        except ServiceOverloadedError as exc:
            self.send_retry_after(exc.status, {"error": str(exc)}, exc.retry_after_s)
        except ServiceClientError as exc:
            self.send_json_error(exc.status or 502, str(exc))
        except ReproError as exc:
            self.send_json_error(400, str(exc))

    def do_DELETE(self) -> None:  # noqa: N802
        if self.network_fault_precheck():
            return
        gateway = self.server.gateway
        parts = [p for p in urlparse(self.path).path.split("/") if p]
        try:
            if len(parts) == 2 and parts[0] == "jobs":
                if gateway.cancel(parts[1]):
                    self.send_json(200, gateway.status(parts[1]))
                else:
                    self.send_json_error(409, f"{parts[1]} already finished")
            else:
                self.send_json_error(404, f"no route for DELETE {self.path}")
        except KeyError as exc:
            self.send_json_error(404, f"unknown job {exc.args[0]!r}")
        except ServiceClientError as exc:
            self.send_json_error(exc.status or 502, str(exc))


def serve_gateway_http(
    gateway: FleetGateway, host: str = "127.0.0.1", port: int = 0
) -> GatewayHTTPServer:
    """Bind a gateway server (``port=0`` = ephemeral) on a daemon thread."""
    server = GatewayHTTPServer((host, port), gateway)
    gateway.set_advertise_url(server.url)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-fleet-http", daemon=True
    )
    thread.start()
    return server
