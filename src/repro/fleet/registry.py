"""Static shard registry and gateway configuration.

The fleet is described declaratively: a list of named shard URLs plus
routing/probing tunables, loaded either from CLI ``--shards`` URLs
(auto-named ``shard0..shardN-1`` in order, so every gateway instance
derives the same ring) or from a JSON fleet config file::

    {
      "shards": [
        {"name": "a", "url": "http://10.0.0.1:8344"},
        {"name": "b", "url": "http://10.0.0.2:8344"}
      ],
      "vnodes": 64,
      "probe_interval_s": 1.0
    }

Shard *names* are the ring identities: replacing a dead machine while
keeping its shard name keeps the key mapping stable, whereas renaming
a shard deliberately remaps ~1/N of the space (consistent hashing's
minimal-remap property).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Mapping, Optional, Sequence
from urllib.parse import urlsplit, urlunsplit

from repro.errors import ConfigurationError

#: scheme defaults stripped during URL normalization.
_DEFAULT_PORTS = {"http": 80, "https": 443}


def normalize_base_url(url: str) -> str:
    """One canonical spelling per endpoint identity.

    ``http://Host:80/`` and ``http://host`` are the same server; if the
    registry treated them as distinct the duplicate check would pass
    and the ring would carry two names for one store.  Lowercases
    scheme and host, drops the scheme-default port, and strips the
    trailing slash; an explicit non-default port and any path are kept.
    """
    if not url.startswith(("http://", "https://")):
        raise ConfigurationError(
            f"shard url {url!r} must start with http:// or https://"
        )
    parts = urlsplit(url)
    if not parts.hostname:
        raise ConfigurationError(f"shard url {url!r} has no host")
    try:
        port = parts.port
    except ValueError as exc:
        raise ConfigurationError(f"shard url {url!r} has a bad port: {exc}") from exc
    scheme = parts.scheme.lower()
    host = parts.hostname.lower()
    if port is not None and port != _DEFAULT_PORTS.get(scheme):
        host = f"{host}:{port}"
    path = parts.path.rstrip("/")
    return urlunsplit((scheme, host, path, "", "")).rstrip("/")


@dataclass(frozen=True)
class ShardSpec:
    """One shard's identity: ring name + service base URL."""

    name: str
    url: str

    def __post_init__(self) -> None:
        if not self.name or any(c.isspace() for c in self.name):
            raise ConfigurationError("shard name must be non-empty, no whitespace")
        if "/" in self.name or "@" in self.name:
            raise ConfigurationError(
                f"shard name {self.name!r} may not contain '/' or '@'"
            )
        object.__setattr__(self, "url", normalize_base_url(self.url))


@dataclass(frozen=True)
class GatewayConfig:
    """Tunables of one gateway instance."""

    shards: tuple[ShardSpec, ...] = field(default_factory=tuple)
    #: virtual nodes per shard on the hash ring.
    vnodes: int = 64
    #: seconds between health-probe sweeps over the fleet.
    probe_interval_s: float = 1.0
    #: consecutive failed probes/requests before a shard is quarantined.
    down_after_probes: int = 3
    #: consecutive ready probes a DOWN shard needs to rejoin routing.
    recover_after_probes: int = 2
    #: per-shard request timeouts (requests-style split).
    connect_timeout_s: float = 2.0
    read_timeout_s: float = 30.0
    #: ``Retry-After`` hint when the whole fleet is unavailable/shedding.
    shed_retry_after_s: float = 1.0
    #: consecutive healthy ``/readyz`` probes a /fleet/join candidate
    #: needs before the migrator starts syncing its ring arc.
    probation_probes: int = 2
    #: admit joiners whose code_version differs from the active fleet's
    #: (results would not be cache-compatible; off by default).
    allow_version_skew: bool = False
    #: membership journal path; None keeps membership in memory only.
    membership_journal: Optional[str] = None
    #: primary gateway URL this instance tails /fleet/view from; set =
    #: this gateway is a read-replica follower for membership changes.
    follow: Optional[str] = None
    #: this instance's name (targeted by the process.gateway_kill
    #: chaos point; surfaced in /healthz).
    gateway_name: Optional[str] = None
    #: lease TTL the primary stamps into published views; a follower
    #: whose lease expires (plus ``election_probes`` failed fetches)
    #: promotes itself, and a primary a full TTL past its last follower
    #: renewal fences itself (see repro.fleet.election).
    lease_ttl_s: float = 5.0
    #: consecutive failed view fetches (after lease expiry) before a
    #: follower promotes.
    election_probes: int = 3
    #: epochs reserved ahead of the last follower-observed epoch; the
    #: primary never mints past the advertised bound, the promoting
    #: follower jumps beyond it - what keeps minted epochs disjoint.
    epoch_reserve: int = 1024
    #: sibling gateway URLs this instance watches for higher-epoch
    #: primaries (a restarted ex-primary demotes through these even
    #: before any follower polls it).
    peers: tuple[str, ...] = field(default_factory=tuple)
    #: this gateway's own base URL as peers/followers should reach it;
    #: stamped into the lease so clients can chase the acting primary.
    advertise_url: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.shards and self.follow is None and not self.membership_journal:
            raise ConfigurationError(
                "a fleet needs at least one shard (or --follow / a "
                "membership journal to learn members dynamically)"
            )
        names = [s.name for s in self.shards]
        dupes = sorted({n for n in names if names.count(n) > 1})
        if dupes:
            raise ConfigurationError(f"duplicate shard names: {dupes}")
        urls = [s.url for s in self.shards]
        dupe_urls = sorted({u for u in urls if urls.count(u) > 1})
        if dupe_urls:
            raise ConfigurationError(f"duplicate shard urls: {dupe_urls}")
        if self.vnodes < 1:
            raise ConfigurationError("vnodes must be >= 1")
        if self.probe_interval_s <= 0:
            raise ConfigurationError("probe_interval_s must be > 0")
        if self.down_after_probes < 1:
            raise ConfigurationError("down_after_probes must be >= 1")
        if self.recover_after_probes < 1:
            raise ConfigurationError("recover_after_probes must be >= 1")
        if self.probation_probes < 1:
            raise ConfigurationError("probation_probes must be >= 1")
        if self.lease_ttl_s <= 0:
            raise ConfigurationError("lease_ttl_s must be > 0")
        if self.election_probes < 1:
            raise ConfigurationError("election_probes must be >= 1")
        if self.epoch_reserve < 1:
            raise ConfigurationError("epoch_reserve must be >= 1")
        if self.follow is not None:
            object.__setattr__(self, "follow", normalize_base_url(self.follow))
        peers = self.peers
        if peers is None:
            peers = ()
        if not isinstance(peers, (list, tuple)):
            raise ConfigurationError("peers must be an array of gateway URLs")
        object.__setattr__(
            self, "peers", tuple(normalize_base_url(str(u)) for u in peers)
        )
        if self.advertise_url is not None:
            object.__setattr__(
                self, "advertise_url", normalize_base_url(self.advertise_url)
            )

    # -- construction ---------------------------------------------------------
    @classmethod
    def from_shard_urls(cls, urls: Sequence[str], **kwargs: Any) -> "GatewayConfig":
        """Auto-name shards ``shard0..shardN-1`` in the given URL order.

        The order is the identity: every gateway started with the same
        ``--shards`` list derives the same ring.
        """
        shards = tuple(
            ShardSpec(name=f"shard{i}", url=url) for i, url in enumerate(urls)
        )
        return cls(shards=shards, **kwargs)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "GatewayConfig":
        if not isinstance(payload, Mapping):
            raise ConfigurationError("fleet config must be a JSON object")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(f"unknown fleet config fields: {unknown}")
        raw_shards = payload.get("shards", [])
        if not isinstance(raw_shards, (list, tuple)):
            raise ConfigurationError("fleet config 'shards' must be an array")
        shards = []
        for raw in raw_shards:
            if not isinstance(raw, Mapping):
                raise ConfigurationError("each shard must be a JSON object")
            extra = sorted(set(raw) - {"name", "url"})
            if extra:
                raise ConfigurationError(f"unknown shard fields: {extra}")
            try:
                shards.append(ShardSpec(**dict(raw)))
            except TypeError as exc:
                raise ConfigurationError(f"bad shard spec: {exc}") from exc
        kwargs = {k: v for k, v in payload.items() if k != "shards"}
        try:
            return cls(shards=tuple(shards), **kwargs)
        except TypeError as exc:
            raise ConfigurationError(f"bad fleet config: {exc}") from exc

    def to_dict(self) -> dict[str, Any]:
        return {
            "shards": [{"name": s.name, "url": s.url} for s in self.shards],
            "vnodes": self.vnodes,
            "probe_interval_s": self.probe_interval_s,
            "down_after_probes": self.down_after_probes,
            "recover_after_probes": self.recover_after_probes,
            "connect_timeout_s": self.connect_timeout_s,
            "read_timeout_s": self.read_timeout_s,
            "shed_retry_after_s": self.shed_retry_after_s,
            "probation_probes": self.probation_probes,
            "allow_version_skew": self.allow_version_skew,
            "membership_journal": self.membership_journal,
            "follow": self.follow,
            "gateway_name": self.gateway_name,
            "lease_ttl_s": self.lease_ttl_s,
            "election_probes": self.election_probes,
            "epoch_reserve": self.epoch_reserve,
            "peers": list(self.peers),
            "advertise_url": self.advertise_url,
        }


def load_fleet_config(source: str) -> GatewayConfig:
    """A config from inline JSON (starts with ``{``) or a file path."""
    text = source.strip()
    if not text.startswith("{"):
        path = Path(text)
        if not path.is_file():
            raise ConfigurationError(f"fleet config file not found: {source!r}")
        text = path.read_text(encoding="utf-8")
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"invalid fleet config JSON: {exc}") from exc
    return GatewayConfig.from_dict(payload)
