"""Lease-based primary election for replicated fleet gateways.

The membership tier (:mod:`repro.fleet.membership`) already replicates
the epoch-versioned view from a primary to its followers and resolves
divergence by *strictly-higher-epoch-wins*.  This module adds the piece
ROADMAP item 2 left open: a follower that can **become** primary
without operator action, with no split-brain.

The protocol, all monotonic-clock driven (never wall clock):

* The primary stamps a **lease** into every view it publishes:
  ``{"holder", "url", "epoch", "ttl_s", "epoch_bound"}``.  A follower's
  successful view fetch renews its local copy of the lease
  (``deadline = now + ttl_s``).
* A follower whose lease has expired **and** which has then seen
  ``election_probes`` consecutive failed fetches promotes itself: it
  bumps its own journal's epoch to a value *above* anything the old
  primary is permitted to mint, resumes replicated in-flight
  migrations, and starts accepting join/leave.
* Split-brain safety comes from **epoch reservation**.  A follower poll
  at epoch ``E`` advances the primary's *promised bound* to
  ``E + epoch_reserve``; the primary never mints an epoch beyond the
  bound it has advertised, and *fences itself entirely* (refusing
  membership mutations) once ``ttl_s`` passes without a follower
  renewal.  The follower promotes to ``bound + 1 + offset(name)``
  (a deterministic per-name offset so two followers promoting in the
  same round pick distinct epochs), which is strictly above every epoch
  the fenced primary can have minted - so epochs minted by distinct
  acting primaries never collide, and ``apply_view``'s existing
  higher-epoch rule is sufficient to demote the old primary when the
  partition heals.  A primary that has *never* seen a follower has no
  bound and never fences: solo gateways are unaffected.

The reserve must exceed the number of membership mutations a primary
can perform inside one lease TTL (each requires a probe or join round
trip, so the default of 1024 is orders of magnitude above reality);
the residual assumption, documented in ``docs/fleet.md``, is that a
partition severing the primary's view *publications* also severs the
follower *polls* that would extend its bound - true of symmetric link
failures and of every ``network.partition`` chaos schedule.

:class:`ElectionState` is a pure state machine - every method takes
``now`` explicitly - so the hypothesis property tier drives thousands
of partition/heal schedules through it without HTTP or threads.  It
also keeps the **election audit**: every role transition and every
minted epoch range, served at ``GET /fleet/elections``, which is what
lets an acceptance test assert "exactly one acting primary per epoch"
across a whole fleet's merged audits.
"""

from __future__ import annotations

import enum
import hashlib
import threading
from typing import Any, Mapping, Optional

#: seed for the deterministic per-name promotion offset.
ELECTION_SEED = 0xE1EC
#: promotion offsets are drawn in [0, OFFSET_SPAN); prime, so distinct
#: names collide with probability ~1/997 per pair.
OFFSET_SPAN = 997


def promotion_offset(name: str, span: int = OFFSET_SPAN) -> int:
    """A stable per-name epoch offset, disambiguating same-round promotions."""
    digest = hashlib.sha256(f"{ELECTION_SEED}:{name}".encode()).digest()
    return int.from_bytes(digest[:4], "big") % max(1, span)


class Role(str, enum.Enum):
    """What this gateway currently is, lease-wise."""

    #: holds the lease: mints epochs, accepts join/leave.
    PRIMARY = "primary"
    #: tails an acting primary's view; promotes on lease expiry.
    FOLLOWER = "follower"


def lease_doc(
    holder: str,
    url: Optional[str],
    epoch: int,
    ttl_s: float,
    epoch_bound: int,
) -> dict[str, Any]:
    """The serializable lease stamped into every published view."""
    return {
        "holder": holder,
        "url": url,
        "epoch": int(epoch),
        "ttl_s": float(ttl_s),
        "epoch_bound": int(epoch_bound),
    }


class ElectionState:
    """One gateway's lease/election state machine (clock injected).

    Thread-safe and standalone: it never calls back into the gateway or
    the membership table, so either may invoke it under their own locks.
    """

    def __init__(
        self,
        name: str,
        role: Role,
        advertise_url: Optional[str] = None,
        lease_ttl_s: float = 5.0,
        election_probes: int = 3,
        epoch_reserve: int = 1024,
        now: float = 0.0,
    ) -> None:
        self.name = name
        self.advertise_url = advertise_url
        self.lease_ttl_s = float(lease_ttl_s)
        self.election_probes = int(election_probes)
        self.epoch_reserve = int(epoch_reserve)
        self._lock = threading.Lock()
        self._role = role
        #: follower: when the last-renewed lease runs out (boot grace =
        #: one full TTL, so a follower never promotes before first contact).
        self._lease_deadline = now + self.lease_ttl_s
        self._failed_probes = 0
        #: follower: highest epoch_bound (and view epoch) ever observed.
        self._bound_seen = 0
        #: follower: the acting primary's URL (chases lease holders).
        self.acting_url: Optional[str] = None
        #: follower: the last lease document observed (the hint source).
        self.last_lease: Optional[dict[str, Any]] = None
        #: primary: the bound advertised to followers; mints stay <= it.
        self._promised: Optional[int] = None
        #: primary: monotonic time of the last follower view poll.
        self._last_renewal: Optional[float] = None
        #: primary: follower advertise-URLs seen -> last poll time.
        self.replicas: dict[str, float] = {}
        #: audit: every role transition, oldest first.
        self.transitions: list[dict[str, Any]] = [
            {"event": "seed", "role": role.value, "holder": name, "epoch": 0}
        ]
        #: audit: merged [lo, hi] ranges of epochs this gateway minted.
        self.minted: list[list[int]] = []

    # -- queries --------------------------------------------------------------
    @property
    def role(self) -> Role:
        with self._lock:
            return self._role

    def is_primary(self) -> bool:
        with self._lock:
            return self._role is Role.PRIMARY

    # -- follower side --------------------------------------------------------
    def note_view(
        self, view: Mapping[str, Any], source_url: str, now: float
    ) -> Optional[str]:
        """Record one successful view fetch from the acting primary.

        Renews the local lease and tracks the advertised epoch bound.
        Returns a URL to **chase** when the lease names a different
        acting primary than the one just polled (post-promotion
        redirect), else None.
        """
        lease = view.get("lease")
        chase: Optional[str] = None
        with self._lock:
            self._failed_probes = 0
            ttl = self.lease_ttl_s
            if isinstance(lease, Mapping):
                self.last_lease = dict(lease)
                try:
                    ttl = float(lease.get("ttl_s", ttl)) or ttl
                except (TypeError, ValueError):
                    pass
                try:
                    self._bound_seen = max(
                        self._bound_seen, int(lease.get("epoch_bound", 0))
                    )
                except (TypeError, ValueError):
                    pass
                holder = lease.get("holder")
                url = lease.get("url")
                if (
                    isinstance(url, str)
                    and url
                    and holder != self.name
                    and url.rstrip("/") != source_url.rstrip("/")
                ):
                    chase = url.rstrip("/")
            try:
                self._bound_seen = max(self._bound_seen, int(view.get("epoch", 0)))
            except (TypeError, ValueError):
                pass
            self._lease_deadline = now + ttl
            if chase is not None and self._role is Role.FOLLOWER:
                self.acting_url = chase
        return chase

    def note_probe_failure(self, now: float) -> bool:
        """Count one failed fetch; True = this follower should promote."""
        with self._lock:
            self._failed_probes += 1
            return (
                self._role is Role.FOLLOWER
                and now >= self._lease_deadline
                and self._failed_probes >= self.election_probes
            )

    def promotion_epoch(self, current_epoch: int) -> int:
        """The epoch a promotion must jump to: strictly above every
        epoch the fenced old primary can have minted."""
        with self._lock:
            floor = max(int(current_epoch), self._bound_seen)
        return floor + 1 + promotion_offset(self.name)

    def promote(self, new_epoch: int, now: float) -> None:
        """Become the acting primary at ``new_epoch``."""
        with self._lock:
            self._role = Role.PRIMARY
            self._failed_probes = 0
            self._promised = None  # no follower has polled *this* primary yet
            self._last_renewal = None
            self.acting_url = self.advertise_url
            self.transitions.append(
                {
                    "event": "promoted",
                    "role": Role.PRIMARY.value,
                    "holder": self.name,
                    "epoch": int(new_epoch),
                    "at_s": float(now),
                }
            )

    def demote(
        self,
        holder: Optional[str],
        url: Optional[str],
        epoch: int,
        now: float,
    ) -> None:
        """Step down to follower of the higher-epoch primary observed."""
        with self._lock:
            self._role = Role.FOLLOWER
            self._failed_probes = 0
            self._lease_deadline = now + self.lease_ttl_s
            self._bound_seen = max(self._bound_seen, int(epoch))
            if url:
                self.acting_url = url.rstrip("/")
            self.transitions.append(
                {
                    "event": "demoted",
                    "role": Role.FOLLOWER.value,
                    "holder": holder or "?",
                    "epoch": int(epoch),
                    "at_s": float(now),
                }
            )

    # -- primary side ---------------------------------------------------------
    def note_follower_poll(
        self, epoch: int, replica_url: Optional[str], now: float
    ) -> None:
        """A follower fetched the view: renew the lease, extend the bound."""
        with self._lock:
            if self._role is not Role.PRIMARY:
                return
            self._last_renewal = now
            bound = int(epoch) + self.epoch_reserve
            self._promised = bound if self._promised is None else max(
                self._promised, bound
            )
            if replica_url:
                self.replicas[replica_url.rstrip("/")] = now

    def may_mint(self, next_epoch: int, now: float) -> bool:
        """May this gateway mint ``next_epoch`` right now?

        False while not primary, while past the advertised bound, or
        while **fenced** - a primary with followers that has gone a full
        TTL without any follower renewal must assume one of them is
        promoting and stops mutating membership (jobs still route).
        """
        with self._lock:
            if self._role is not Role.PRIMARY:
                return False
            if self._promised is None:
                return True  # solo primary: no follower, no bound, no fence
            if (
                self._last_renewal is not None
                and now - self._last_renewal > self.lease_ttl_s
            ):
                return False
            return int(next_epoch) <= self._promised

    def fenced(self, now: float) -> bool:
        """True when a primary is refusing mints pending re-contact."""
        with self._lock:
            if self._role is not Role.PRIMARY or self._promised is None:
                return False
            return (
                self._last_renewal is not None
                and now - self._last_renewal > self.lease_ttl_s
            )

    def note_minted(self, epoch: int) -> None:
        """Record one epoch this gateway minted (the audit trail)."""
        value = int(epoch)
        with self._lock:
            if self.minted and self.minted[-1][1] == value - 1:
                self.minted[-1][1] = value
            else:
                self.minted.append([value, value])

    def lease_for(self, epoch: int) -> dict[str, Any]:
        """The lease to stamp into a view published at ``epoch``."""
        with self._lock:
            bound = (
                self._promised
                if self._promised is not None
                else int(epoch) + self.epoch_reserve
            )
            return lease_doc(
                self.name, self.advertise_url, epoch, self.lease_ttl_s, bound
            )

    # -- audit ----------------------------------------------------------------
    def audit(self) -> dict[str, Any]:
        """The election audit document (``GET /fleet/elections``)."""
        with self._lock:
            return {
                "gateway": self.name,
                "role": self._role.value,
                "transitions": [dict(t) for t in self.transitions],
                "minted": [list(r) for r in self.minted],
                "promised_bound": self._promised,
                "bound_seen": self._bound_seen,
                "acting_url": self.acting_url,
                "lease": dict(self.last_lease) if self.last_lease else None,
                "replicas": sorted(self.replicas),
            }
