"""Dynamic fleet membership: the journaled, epoch-versioned shard view.

PR 7's gateway routed over a *static* registry frozen at startup; this
module is what makes the fleet elastic.  A :class:`FleetMembership` is
the single source of truth for who is in the fleet:

* every member carries a lifecycle state (:class:`MemberState`) -
  ``probation`` while the gateway collects healthy ``/readyz`` probes
  from a new joiner, ``syncing`` while the store migrator copies the
  joiner's ring arc over, ``active`` once it serves traffic, and
  ``left`` after a graceful drain,
* every mutation bumps a monotonically increasing **epoch** and is
  durably appended to a membership journal using the exact frame
  discipline of :class:`~repro.serve.journal.JobJournal` (checksummed,
  fsync'd, torn-tail tolerant), so a gateway restart replays the fleet
  instead of forgetting it,
* the serializable :meth:`FleetMembership.view` document is what a
  secondary gateway tails over ``GET /fleet/view`` - two gateways that
  agree on the view (higher epoch wins) derive the identical hash ring
  and therefore never disagree on routing.

The journal is shared with the migrator's cursor records: entries with
``op == "member"`` mutate the table, any other op is preserved verbatim
for the owner to replay (see :attr:`FleetMembership.extra_entries`).
That sharing is deliberate - the ``process.gateway_kill`` chaos point
hooks the journal's ``on_append``, and per-key migration cursor records
give it the record-ordinal granularity to SIGKILL a gateway *mid*-
migration, not just between membership changes.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Optional

from repro.errors import ConfigurationError
from repro.fleet.registry import ShardSpec
from repro.serve.journal import JobJournal


class MemberState(str, enum.Enum):
    """Lifecycle of one fleet member (distinct from probe health)."""

    #: announced via /fleet/join; collecting healthy readiness probes.
    PROBATION = "probation"
    #: passed probation; the migrator is copying its ring arc over.
    SYNCING = "syncing"
    #: full routing member: on the hash ring, receiving submissions.
    ACTIVE = "active"
    #: gracefully departed (or replaced); off the ring, kept for audit.
    LEFT = "left"


@dataclass
class Member:
    """One shard's membership record (state is lifecycle, not health)."""

    name: str
    url: str
    code_version: Optional[str] = None
    state: MemberState = MemberState.PROBATION
    #: epoch of the mutation that last touched this member.
    epoch: int = 0
    #: consecutive healthy probes while on probation (runtime only).
    healthy_probes: int = field(default=0, compare=False)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "url": self.url,
            "code_version": self.code_version,
            "state": self.state.value,
            "epoch": self.epoch,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Member":
        if not isinstance(payload, Mapping):
            raise ConfigurationError("member record must be a JSON object")
        try:
            state = MemberState(payload.get("state", "probation"))
        except ValueError as exc:
            raise ConfigurationError(
                f"unknown member state {payload.get('state')!r}"
            ) from exc
        spec = ShardSpec(
            str(payload.get("name", "")), str(payload.get("url", ""))
        )  # reuse the registry's name/url validation + normalization
        return cls(
            name=spec.name,
            url=spec.url,
            code_version=payload.get("code_version"),
            state=state,
            epoch=int(payload.get("epoch", 0)),
        )


class FleetMembership:
    """Epoch-versioned member table, durably journaled when given a path.

    Thread-safe and self-contained: it never calls back into the
    gateway, so the gateway may hold its own lock across any method
    here without deadlock risk.  With ``journal_path=None`` the table
    is memory-only (unit tests, follower gateways that tail a primary).
    """

    def __init__(
        self,
        journal_path: Optional[str | Path] = None,
        seeds: Iterable[ShardSpec] = (),
        on_append: Optional[Callable[[int], None]] = None,
        on_epoch: Optional[Callable[[int], None]] = None,
    ) -> None:
        self._lock = threading.RLock()
        self._members: dict[str, Member] = {}
        self._epoch = 0
        #: called with every epoch this instance *mints* itself (not
        #: epochs adopted via apply_view) - the election audit trail.
        #: Must not call back into membership (invoked under the lock).
        self._on_epoch = on_epoch
        #: journal entries that are not membership ops (migration
        #: cursors); the owning gateway replays these after __init__.
        self.extra_entries: list[dict[str, Any]] = []
        #: replayed-member count (observability; 0 on a fresh journal).
        self.replayed = 0
        self.journal: Optional[JobJournal] = None
        if journal_path is not None:
            self.journal = JobJournal(journal_path, on_append=on_append)
            self._replay()
        if not self._members:
            # fresh fleet: the static registry seeds the first epoch as
            # full members (they were vetted by config, not probation).
            for spec in seeds:
                self._mutate_locked(
                    Member(
                        name=spec.name, url=spec.url, state=MemberState.ACTIVE
                    )
                )

    # -- journal replay -------------------------------------------------------
    def _replay(self) -> None:
        assert self.journal is not None
        replay = self.journal.replay()
        for entry in replay.entries:
            op = entry.get("op")
            if op == "epoch":
                # a bare epoch advance (promotion jump, or a view whose
                # epoch exceeds every member record's own epoch).
                try:
                    self._epoch = max(self._epoch, int(entry.get("epoch", 0)))
                except (TypeError, ValueError):
                    pass
                continue
            if op != "member":
                self.extra_entries.append(entry)
                continue
            try:
                member = Member.from_dict(entry.get("member", {}))
            except ConfigurationError:
                continue  # a torn-tail survivor cannot be half-applied
            self._members[member.name] = member
            self._epoch = max(self._epoch, member.epoch)
            self.replayed += 1
        if replay.entries:
            self._compact_locked()

    def _compact_locked(self) -> None:
        if self.journal is None:
            return
        entries = [
            {"op": "member", "member": m.to_dict()}
            for m in self._members.values()
        ]
        # the table epoch can run ahead of every member's own epoch
        # (promotion jumps); persist it so a replay lands on the same
        # epoch, not on max(member epochs).
        entries.append({"op": "epoch", "epoch": self._epoch})
        self.journal.compact(entries)

    # -- mutation -------------------------------------------------------------
    def _mutate_locked(self, member: Member) -> Member:
        """Apply + journal one member change; bumps the epoch."""
        self._epoch += 1
        member.epoch = self._epoch
        self._members[member.name] = member
        if self.journal is not None:
            self.journal.append({"op": "member", "member": member.to_dict()})
        if self._on_epoch is not None:
            self._on_epoch(self._epoch)
        return member

    def bump_epoch(self, to_epoch: int) -> int:
        """Jump the epoch forward (a promotion), durably journaled.

        The new epoch is ``max(current + 1, to_epoch)`` - the jump is
        what puts a promoted follower's view strictly above anything
        the fenced old primary minted, so ``apply_view`` demotes the
        old primary the moment it sees this view.
        """
        with self._lock:
            self._epoch = max(self._epoch + 1, int(to_epoch))
            if self.journal is not None:
                self.journal.append({"op": "epoch", "epoch": self._epoch})
            if self._on_epoch is not None:
                self._on_epoch(self._epoch)
            return self._epoch

    def upsert(
        self,
        name: str,
        url: str,
        code_version: Optional[str] = None,
        state: MemberState = MemberState.PROBATION,
    ) -> Member:
        """Insert or update one member; bumps the epoch and journals."""
        spec = ShardSpec(name, url)  # validate + normalize
        with self._lock:
            previous = self._members.get(spec.name)
            member = Member(
                name=spec.name,
                url=spec.url,
                code_version=code_version,
                state=state,
            )
            if previous is not None:
                member.healthy_probes = previous.healthy_probes
            return self._mutate_locked(member)

    def set_state(self, name: str, state: MemberState) -> Member:
        """Transition one member's lifecycle state (epoch bump + journal)."""
        with self._lock:
            member = self._members.get(name)
            if member is None:
                raise KeyError(name)
            member.state = state
            return self._mutate_locked(member)

    def append_entry(self, entry: dict[str, Any]) -> None:
        """Durably append a non-membership entry (migration cursors)."""
        with self._lock:
            if self.journal is not None:
                self.journal.append(entry)

    # -- queries --------------------------------------------------------------
    @property
    def epoch(self) -> int:
        with self._lock:
            return self._epoch

    def get(self, name: str) -> Optional[Member]:
        with self._lock:
            return self._members.get(name)

    def members(self) -> list[Member]:
        with self._lock:
            return list(self._members.values())

    def active_names(self) -> list[str]:
        with self._lock:
            return sorted(
                m.name
                for m in self._members.values()
                if m.state is MemberState.ACTIVE
            )

    def routable(self) -> list[Member]:
        """Members that need shard handles (everything but LEFT)."""
        with self._lock:
            return [
                m
                for m in self._members.values()
                if m.state is not MemberState.LEFT
            ]

    # -- replication ----------------------------------------------------------
    def view(self) -> dict[str, Any]:
        """The serializable membership document a secondary tails."""
        with self._lock:
            return {
                "epoch": self._epoch,
                "members": [
                    m.to_dict() for m in sorted(
                        self._members.values(), key=lambda m: m.name
                    )
                ],
            }

    def apply_view(self, view: Mapping[str, Any]) -> bool:
        """Adopt a remote view when its epoch is higher; returns applied.

        Higher epoch wins, ties and stale views are ignored - the
        invariant two replicated gateways rely on for never disagreeing
        about the ring.  The whole table is replaced (the view is a
        snapshot, not a delta) and journaled if this side persists.
        """
        if not isinstance(view, Mapping):
            raise ConfigurationError("membership view must be a JSON object")
        try:
            epoch = int(view.get("epoch", 0))
        except (TypeError, ValueError) as exc:
            raise ConfigurationError("membership view epoch must be an int") from exc
        members = [Member.from_dict(raw) for raw in view.get("members", [])]
        with self._lock:
            if epoch <= self._epoch:
                return False
            self._members = {m.name: m for m in members}
            self._epoch = epoch
            if self.journal is not None:
                for member in members:
                    self.journal.append(
                        {"op": "member", "member": member.to_dict()}
                    )
                # the view epoch may exceed every member record's epoch
                # (the publisher promoted); make the replayed epoch match.
                self.journal.append({"op": "epoch", "epoch": epoch})
        return True

    def close(self) -> None:
        with self._lock:
            if self.journal is not None:
                self.journal.close()
