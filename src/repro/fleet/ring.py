"""Consistent-hash ring with virtual nodes (stdlib only).

The gateway's routing core: shard names are placed on a 64-bit ring at
``vnodes`` positions each, a key is routed to the owner of the first
virtual node at or after its own hash position, and failover walks the
ring to the next *distinct* shard.  The two properties the fleet
depends on:

* **balance** - with enough virtual nodes every shard owns ~1/N of the
  key space (the exact per-shard share is computable from the ring's
  arc lengths; see :meth:`HashRing.shares`),
* **minimal remap** - adding or removing a shard only remaps the keys
  whose owning arcs changed, ~1/N of the space, instead of reshuffling
  everything the way ``hash(key) % N`` would.

All positions come from SHA-256 (:func:`stable_hash`), never from
Python's seeded ``hash()``, so every process - gateway restarts,
tests, a second gateway instance in front of the same fleet - computes
the identical ring and routes every key the same way.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Optional

from repro.errors import ConfigurationError

#: size of the hash space; positions are the first 8 bytes of SHA-256.
RING_SPACE = 1 << 64


def stable_hash(text: str) -> int:
    """A 64-bit ring position, identical in every process.

    ``hashlib`` rather than ``hash()``: the latter is salted per
    process (PYTHONHASHSEED), which would silently break deterministic
    routing across gateway restarts.
    """
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent-hash ring mapping string keys onto named nodes."""

    def __init__(self, nodes: Iterable[str] = (), vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ConfigurationError("vnodes must be >= 1")
        self.vnodes = int(vnodes)
        self._nodes: set[str] = set()
        self._positions: list[int] = []
        self._owners: list[str] = []
        for node in nodes:
            self.add(node)

    # -- membership -----------------------------------------------------------
    @property
    def nodes(self) -> frozenset[str]:
        return frozenset(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add(self, node: str) -> None:
        if not node:
            raise ConfigurationError("node name must be non-empty")
        if node in self._nodes:
            raise ConfigurationError(f"node {node!r} is already on the ring")
        self._nodes.add(node)
        self._rebuild()

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            raise ConfigurationError(f"node {node!r} is not on the ring")
        self._nodes.remove(node)
        self._rebuild()

    def _rebuild(self) -> None:
        points = sorted(
            (stable_hash(f"{node}#{i}"), node)
            for node in self._nodes
            for i in range(self.vnodes)
        )
        self._positions = [position for position, _ in points]
        self._owners = [owner for _, owner in points]

    # -- routing --------------------------------------------------------------
    def _start_index(self, key: str) -> int:
        # first virtual node at-or-after the key's position (wrapping);
        # bisect_left keeps "key lands exactly on a vnode" owned by it.
        return bisect.bisect_left(self._positions, stable_hash(key)) % len(
            self._positions
        )

    def primary(self, key: str) -> str:
        """The shard that owns ``key``."""
        if not self._owners:
            raise ConfigurationError("ring is empty")
        return self._owners[self._start_index(key)]

    def preference(self, key: str, n: Optional[int] = None) -> list[str]:
        """Up to ``n`` distinct nodes in ring order starting at the owner.

        The failover order: ``preference(key)[0]`` is the primary and
        each subsequent entry is the next distinct shard walking the
        ring clockwise - the shard a key remaps to if everything before
        it is down.  Deterministic for a fixed membership set.
        """
        if not self._owners:
            return []
        want = len(self._nodes) if n is None else min(int(n), len(self._nodes))
        start = self._start_index(key)
        order: list[str] = []
        seen: set[str] = set()
        for offset in range(len(self._owners)):
            node = self._owners[(start + offset) % len(self._owners)]
            if node not in seen:
                seen.add(node)
                order.append(node)
                if len(order) == want:
                    break
        return order

    # -- membership deltas ----------------------------------------------------
    def copy(self) -> "HashRing":
        return HashRing(self._nodes, vnodes=self.vnodes)

    def with_node(self, node: str) -> "HashRing":
        """A new ring with ``node`` added (this ring is untouched).

        The migrator routes against the *current* ring while copying
        data toward the ownership this hypothetical ring defines, and
        only then flips the live ring - so the delta between the two is
        exactly the data that must move.
        """
        ring = self.copy()
        ring.add(node)
        return ring

    def without_node(self, node: str) -> "HashRing":
        """A new ring with ``node`` removed (this ring is untouched)."""
        ring = self.copy()
        ring.remove(node)
        return ring

    def diff_share(self, other: "HashRing") -> float:
        """Exact fraction of the key space whose primary owner differs.

        Computed from arc boundaries, not sampling: between any two
        consecutive positions of the *merged* vnode sets each ring's
        primary is constant, so comparing owners interval-by-interval
        measures the remap volume precisely.  This is the quantity the
        minimal-remap property bounds (~1/N on a single join/leave) and
        what the migration audit reports as ``remap_share``.
        """
        if not self._owners or not other._owners:
            return 0.0 if (not self._owners and not other._owners) else 1.0
        boundaries = sorted(set(self._positions) | set(other._positions))
        diff = 0
        previous = boundaries[-1]
        for position in boundaries:
            arc = (position - previous) % RING_SPACE
            if arc == 0 and len(boundaries) > 1:
                previous = position
                continue
            # every key strictly inside (previous, position] routes to
            # the owner of the first vnode at-or-after ``position``.
            mine = self._owners[
                bisect.bisect_left(self._positions, position)
                % len(self._positions)
            ]
            theirs = other._owners[
                bisect.bisect_left(other._positions, position)
                % len(other._positions)
            ]
            if mine != theirs:
                diff += arc if len(boundaries) > 1 else RING_SPACE
            previous = position
        return diff / RING_SPACE

    # -- balance --------------------------------------------------------------
    def shares(self) -> dict[str, float]:
        """Exact fraction of the key space each node owns (sums to 1.0).

        Computed from arc lengths, not sampling: the virtual node at
        position ``p_i`` owns the arc ``(p_{i-1}, p_i]``, wrapping at
        the top of the 64-bit space.
        """
        if not self._owners:
            return {}
        if len(self._owners) == 1:
            return {self._owners[0]: 1.0}
        shares = dict.fromkeys(self._nodes, 0)
        previous = self._positions[-1]
        for position, owner in zip(self._positions, self._owners):
            shares[owner] += (position - previous) % RING_SPACE
            previous = position
        return {node: arc / RING_SPACE for node, arc in shares.items()}
