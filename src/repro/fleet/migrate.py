"""Ring-aware store migration: move exactly the remapped arc, verified.

When membership changes, the consistent-hash ring's minimal-remap
property says precisely which keys change owner: the delta between the
current ring and the hypothetical ring with the member added/removed
(:meth:`~repro.fleet.ring.HashRing.with_node` /
:meth:`~repro.fleet.ring.HashRing.without_node`).  The
:class:`Migrator` walks that arc *before* routing flips:

* **join** - every existing member's store is enumerated and each key
  whose primary under the target ring is the joiner is copied old
  owner -> joiner,
* **leave** - the leaver's whole store is copied out, each key to its
  primary under the ring without the leaver.

Every copy is end-to-end verified: the exporter ships the document
*with* its stored content checksum, the migrator recomputes the hash
over the wire payload before forwarding, and the importing store
recomputes it again before anything touches disk - a transfer that
corrupts a document is dropped (and counted), never planted.  Only
after the whole arc (plus a catch-up sweep for entries written during
the copy) has landed does the caller flip routing, so a request for a
migrated key never misses: before the flip the old owner still serves
it, after the flip the new owner holds the copy, and during the
handoff the gateway double-reads from both.

Per-key progress is journaled through the membership journal
(``{"op": "migrated", "mid": ..., "key": ...}`` cursor records framed
and fsync'd like every other entry), so a gateway SIGKILLed
mid-migration resumes from the last copied key instead of starting
over - and so the ``process.gateway_kill`` chaos point, which hooks
the journal's ``on_append``, can kill it *between* any two keys.

A source that dies mid-copy is not fatal: its keys are skipped and
counted (:data:`~repro.serve.telemetry.FLEET_MIGRATION_KEY_SKIPS`);
content-addressed determinism means a later read of a skipped key
recomputes a bit-identical result.
"""

from __future__ import annotations

import logging
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Optional

from repro.errors import ReproError
from repro.fleet.ring import HashRing
from repro.serve import telemetry as tm
from repro.serve.client import ServiceClient, ServiceClientError
from repro.serve.store import CHECKSUM_FIELD, doc_checksum
from repro.serve.telemetry import Telemetry

logger = logging.getLogger("repro.fleet")

#: extra enumeration passes after the main copy (entries written while
#: the arc was in flight); each pass only touches keys not yet moved.
MAX_CATCHUP_SWEEPS = 3


@dataclass
class MigrationTask:
    """One arc migration's identity and resumable cursor."""

    #: migration id - stable across a crash/resume (journal-matched).
    mid: str
    #: ``"join"`` (copy toward the new member) or ``"leave"`` (copy out).
    kind: str
    #: the member joining or leaving.
    node: str
    #: keys already copied (seeded from journal cursor records on resume).
    done_keys: set[str] = field(default_factory=set)
    #: keys that could not be copied (dead source, corrupt entry).
    skipped: list[dict[str, str]] = field(default_factory=list)
    #: keys copied by *this* run (excludes resumed cursor entries).
    keys_migrated: int = 0
    #: copies that found the destination already populated (idempotent).
    already_present: int = 0
    #: enumeration passes performed (1 main + catch-up sweeps).
    sweeps: int = 0
    #: exact fraction of the key space this migration remaps.
    remap_share: float = 0.0
    error: Optional[str] = None

    def audit(self) -> dict[str, Any]:
        """The migration's accounting document (journaled + /metrics)."""
        return {
            "mid": self.mid,
            "kind": self.kind,
            "node": self.node,
            "remap_share": self.remap_share,
            "keys_migrated": self.keys_migrated,
            "keys_resumed": max(0, len(self.done_keys) - self.keys_migrated),
            "already_present": self.already_present,
            "skips": len(self.skipped),
            "skipped": list(self.skipped),
            "sweeps": self.sweeps,
            "error": self.error,
        }


class Migrator:
    """Copies one remapped arc between shard stores, key by key.

    Deliberately decoupled from the gateway: it sees shards only
    through ``client_for`` (name -> :class:`ServiceClient` or ``None``
    when the shard has no handle) and persists its cursor through
    ``journal_append``, so unit tests can drive it against fake shards
    and the gateway can run it on a background thread while holding
    none of its locks.
    """

    def __init__(
        self,
        client_for: Callable[[str], Optional[ServiceClient]],
        journal_append: Optional[Callable[[dict[str, Any]], None]] = None,
        telemetry: Optional[Telemetry] = None,
        stop: Optional[threading.Event] = None,
    ) -> None:
        self._client_for = client_for
        self._journal_append = journal_append
        self._telemetry = telemetry
        self._stop = stop

    # -- helpers --------------------------------------------------------------
    def _count(self, name: str, value: int = 1) -> None:
        if self._telemetry is not None:
            self._telemetry.count(name, value)

    def _journal(self, entry: dict[str, Any]) -> None:
        if self._journal_append is not None:
            self._journal_append(entry)

    def _stopped(self) -> bool:
        return self._stop is not None and self._stop.is_set()

    def _list_keys(self, shard_name: str) -> Optional[list[str]]:
        """The shard's store keys, or None when it cannot be asked."""
        client = self._client_for(shard_name)
        if client is None:
            return None
        try:
            doc, _ = client.request_with_budget("GET", "/store/keys")
        except (ReproError, OSError):
            return None
        keys = doc.get("keys")
        return [str(k) for k in keys] if isinstance(keys, list) else None

    def _assignments(
        self, task: MigrationTask, current: HashRing, target: HashRing
    ) -> Iterable[tuple[str, str, str]]:
        """Yield ``(source, key, destination)`` copies still to make.

        For a join only keys whose *target-ring* primary is the joiner
        move (the minimal-remap arc); for a leave everything the leaver
        holds moves to its target-ring primary - the leaver may hold
        non-primary keys from earlier reroutes, and orphaning those
        would silently shrink the fleet-wide cache.
        """
        if task.kind == "join":
            for source in sorted(current.nodes):
                if source == task.node:
                    continue
                keys = self._list_keys(source)
                if keys is None:
                    task.skipped.append(
                        {"key": "*", "source": source, "reason": "unreachable"}
                    )
                    continue
                for key in keys:
                    if key in task.done_keys:
                        continue
                    if target.primary(key) == task.node:
                        yield source, key, task.node
        else:
            keys = self._list_keys(task.node)
            if keys is None:
                task.skipped.append(
                    {"key": "*", "source": task.node, "reason": "unreachable"}
                )
                return
            for key in keys:
                if key in task.done_keys:
                    continue
                yield task.node, key, target.primary(key)

    def _copy_key(self, source: str, key: str, destination: str) -> bool:
        """Export, re-verify, and import one entry; False = skipped."""
        src = self._client_for(source)
        dst = self._client_for(destination)
        if src is None or dst is None:
            return False
        try:
            entry, _ = src.request_with_budget("GET", f"/store/entries/{key}")
        except (ReproError, OSError):
            # dead/corrupt source (410 = quarantined): recompute covers it
            return False
        doc = entry.get("doc")
        if not isinstance(doc, dict):
            return False
        advertised = doc.get(CHECKSUM_FIELD)
        body = {k: v for k, v in doc.items() if k != CHECKSUM_FIELD}
        if advertised is None or doc_checksum(body) != advertised:
            logger.warning(
                "migration: %s from %s failed checksum in transit", key, source
            )
            return False
        try:
            dst.request_with_budget(
                "POST",
                f"/store/entries/{key}",
                {"doc": doc, "trace_b64": entry.get("trace_b64")},
            )
        except (ReproError, OSError):
            return False
        return True

    # -- the migration --------------------------------------------------------
    def _sweep(
        self, task: MigrationTask, current: HashRing, target: HashRing
    ) -> int:
        """One enumeration pass; returns keys copied this pass."""
        copied = 0
        task.sweeps += 1
        for source, key, destination in self._assignments(task, current, target):
            if self._stopped():
                break
            if destination == source:
                task.done_keys.add(key)
                continue
            if self._copy_key(source, key, destination):
                task.done_keys.add(key)
                task.keys_migrated += 1
                copied += 1
                self._count(tm.FLEET_KEYS_MIGRATED)
                # the resumable cursor: a gateway killed right after
                # this fsync restarts with the key already marked done.
                self._journal({"op": "migrated", "mid": task.mid, "key": key})
            else:
                task.skipped.append(
                    {"key": key, "source": source, "reason": "copy failed"}
                )
                self._count(tm.FLEET_MIGRATION_KEY_SKIPS)
        return copied

    def run(
        self, task: MigrationTask, current: HashRing, target: HashRing
    ) -> dict[str, Any]:
        """Copy the whole remapped arc; returns the audit document.

        Loops catch-up sweeps until a pass copies nothing (bounded by
        :data:`MAX_CATCHUP_SWEEPS`): jobs keep completing on the old
        owner while the main pass runs, and those late entries belong
        to the new owner too.  The caller flips routing only after this
        returns - the copy itself changes no routing state.
        """
        task.remap_share = current.diff_share(target)
        self._count(tm.FLEET_MIGRATIONS_STARTED)
        self._journal(
            {
                "op": "migration_start",
                "mid": task.mid,
                "kind": task.kind,
                "node": task.node,
                "remap_share": task.remap_share,
            }
        )
        try:
            while self._sweep(task, current, target) > 0:
                if self._stopped() or task.sweeps >= MAX_CATCHUP_SWEEPS:
                    break
        except Exception as exc:  # keep the audit trail even on a bug
            task.error = str(exc)
            logger.exception("migration %s failed", task.mid)
        audit = task.audit()
        self._journal({"op": "migration_done", "mid": task.mid, "audit": audit})
        if task.error is None:
            self._count(tm.FLEET_MIGRATIONS_COMPLETED)
        return audit


def snapshot_in_flight(tasks: Iterable[MigrationTask]) -> list[dict[str, Any]]:
    """Serializable snapshots of live migrations (for /fleet/view).

    Followers store the latest snapshot alongside each adopted view;
    a follower that *promotes* replays these through
    :func:`pending_from_snapshot` to resume the dead primary's
    migrations from their replicated cursors instead of from scratch.
    """
    return [
        {
            "mid": task.mid,
            "kind": task.kind,
            "node": task.node,
            "done_keys": sorted(task.done_keys),
        }
        for task in tasks
    ]


def pending_from_snapshot(
    items: Iterable[Mapping[str, Any]],
) -> list[dict[str, Any]]:
    """Resumable migration descriptors from a replicated snapshot.

    Same shape as :func:`in_flight_from_entries` returns, so the
    gateway's resume path treats journal-recovered and
    replication-recovered migrations identically.  Malformed items are
    dropped - a promotion must not die on a torn snapshot; re-copying
    from an empty cursor is always safe (copies are idempotent).
    """
    pending: list[dict[str, Any]] = []
    for item in items:
        if not isinstance(item, Mapping):
            continue
        node = item.get("node")
        if not isinstance(node, str) or not node:
            continue
        raw_keys = item.get("done_keys", [])
        done = (
            {str(k) for k in raw_keys}
            if isinstance(raw_keys, (list, tuple))
            else set()
        )
        pending.append(
            {
                "mid": str(item.get("mid") or f"resume:{node}"),
                "kind": str(item.get("kind", "join")),
                "node": node,
                "done_keys": done,
            }
        )
    return pending


def in_flight_from_entries(
    entries: Iterable[dict[str, Any]],
) -> list[dict[str, Any]]:
    """Unfinished migrations recovered from journal extra-entries.

    Pairs ``migration_start`` records with their ``migration_done`` and
    returns the unmatched starts, each carrying the ``done_keys`` set
    accumulated from its cursor records - exactly what a restarted
    gateway needs to resume where the dead one stopped.
    """
    starts: dict[str, dict[str, Any]] = {}
    cursors: dict[str, set[str]] = {}
    for entry in entries:
        op = entry.get("op")
        mid = entry.get("mid")
        if not isinstance(mid, str):
            continue
        if op == "migration_start":
            starts[mid] = entry
        elif op == "migration_done":
            starts.pop(mid, None)
            cursors.pop(mid, None)
        elif op == "migrated" and isinstance(entry.get("key"), str):
            cursors.setdefault(mid, set()).add(entry["key"])
    return [
        {
            "mid": mid,
            "kind": str(entry.get("kind", "join")),
            "node": str(entry.get("node", "")),
            "done_keys": cursors.get(mid, set()),
        }
        for mid, entry in starts.items()
        if entry.get("node")
    ]
