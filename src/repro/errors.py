"""Exception hierarchy for the UVM reproduction library.

Every error raised by ``repro`` derives from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class AddressError(ReproError):
    """An address fell outside any managed range or was misaligned."""


class AllocationError(ReproError):
    """The managed-memory allocator could not satisfy a request."""


class OutOfDeviceMemoryError(AllocationError):
    """GPU physical memory is exhausted and nothing is evictable.

    In the real driver this manifests as an allocation failure from the
    PMA; in the simulator it indicates the configured device is too small
    for the working set even with eviction (e.g. a single VABlock larger
    than device memory).
    """


class FaultBufferOverflowError(ReproError):
    """More faults were outstanding than the hardware buffer can track.

    The real hardware silently drops and re-raises faults; the simulator
    models that path, so this error only fires on internal logic bugs.
    """


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class DeadlockError(SimulationError):
    """No runnable work remains but warp streams are still unfinished.

    Raised when every remaining warp is stalled and the driver has no
    pending faults to service - this indicates a lost wakeup in a policy
    implementation and should never occur with the stock policies.
    """


class TraceError(ReproError):
    """A trace query or export operation was invalid."""


class ChaosError(SimulationError):
    """A deliberately injected fault (see :mod:`repro.chaos`).

    Raised when an injected failure exhausts its modelled recovery path
    (e.g. a DMA transfer that keeps failing past the in-driver retry
    bound).  The serve supervisor treats it as an infrastructure
    failure - retryable - rather than a deterministic job error, because
    the chaos plan bounds how many attempts it perturbs.
    """


class CheckpointError(ReproError):
    """A simulation checkpoint could not be written or restored."""


class JournalError(ReproError):
    """The write-ahead job journal could not be written or replayed.

    Replay itself is tolerant (a torn tail is truncated, not raised);
    this error covers I/O failures of the journal file - an unwritable
    directory, a failed compaction rename - that make durability
    guarantees impossible to uphold.
    """


class CorruptResultError(ReproError):
    """A stored result failed its integrity check and was quarantined.

    The entry has been moved aside (``<store>/quarantine/``) so the key
    reads as a miss afterwards; re-submitting the same spec recomputes
    and re-stores it.
    """
