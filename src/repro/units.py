"""Fundamental units and geometry constants of the UVM system.

All sizes are in bytes and all simulated times are in **nanoseconds**
(integers where possible) to avoid floating-point drift when millions of
events are accumulated.  Human-facing reporting converts to microseconds,
the unit the paper uses throughout.

The geometry constants mirror the NVIDIA UVM driver on x86 hosts as
described in Section III of the paper:

* the host OS page is 4 KB,
* faulted pages are "upgraded" to 64 KB *big pages* by stage one of the
  prefetcher (emulating Power9 page size on x86, Section IV-A),
* memory is allocated and evicted at 2 MB *VABlock* granularity,
* the default fault batch is 256 faults and the default density
  threshold of the tree prefetcher is 51 (a 1-100 percentage).
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# Size units
# --------------------------------------------------------------------------
KiB: int = 1024
MiB: int = 1024 * KiB
GiB: int = 1024 * MiB

#: Host OS page size on x86, the granularity of a single far-fault.
PAGE_SIZE: int = 4 * KiB

#: "Big page" size used by prefetch stage one (64 KB, Power9 emulation).
BIG_PAGE_SIZE: int = 64 * KiB

#: Virtual address block: the allocation/eviction granularity of UVM.
VABLOCK_SIZE: int = 2 * MiB

#: 4 KB pages per 64 KB big page.
PAGES_PER_BIG_PAGE: int = BIG_PAGE_SIZE // PAGE_SIZE  # 16

#: 4 KB pages per 2 MB VABlock (the leaves of the density tree).
PAGES_PER_VABLOCK: int = VABLOCK_SIZE // PAGE_SIZE  # 512

#: Big pages per VABlock (level-5 subtrees of the density tree).
BIG_PAGES_PER_VABLOCK: int = VABLOCK_SIZE // BIG_PAGE_SIZE  # 32

#: Depth of the density tree: log2(2MB / 4KB) = 9 levels of edges,
#: i.e. the tree has levels 0 (leaves) .. 9 (root) inclusive.
DENSITY_TREE_LEVELS: int = 9

#: Default number of faults drained from the fault buffer per batch.
DEFAULT_BATCH_SIZE: int = 256

#: Default density threshold (percent) for the tree-based prefetcher.
DEFAULT_DENSITY_THRESHOLD: int = 51

# --------------------------------------------------------------------------
# Time units (simulated).  Base unit: nanoseconds.
# --------------------------------------------------------------------------
NS: int = 1
US: int = 1000
MS: int = 1000 * US
S: int = 1000 * MS


def ns_to_us(t_ns: float) -> float:
    """Convert simulated nanoseconds to microseconds (paper's unit)."""
    return t_ns / US


def ns_to_ms(t_ns: float) -> float:
    """Convert simulated nanoseconds to milliseconds."""
    return t_ns / MS


def us(t: float) -> int:
    """Express ``t`` microseconds in base (nanosecond) units."""
    return round(t * US)


def bytes_to_pages(nbytes: int) -> int:
    """Number of whole 4 KB pages covering ``nbytes`` (ceiling division)."""
    return -(-nbytes // PAGE_SIZE)


def pages_to_bytes(npages: int) -> int:
    """Total bytes spanned by ``npages`` 4 KB pages."""
    return npages * PAGE_SIZE


def human_size(nbytes: float) -> str:
    """Render a byte count the way the paper's axes do (e.g. ``'1.5MB'``)."""
    for unit, div in (("GB", GiB), ("MB", MiB), ("KB", KiB)):
        if nbytes >= div:
            value = nbytes / div
            return f"{value:.4g}{unit}"
    return f"{nbytes:.0f}B"


def human_time_us(t_ns: float) -> str:
    """Render a simulated duration in the paper's microsecond convention."""
    t_us = ns_to_us(t_ns)
    if t_us >= 1e6:
        return f"{t_us / 1e6:.3g}s"
    if t_us >= 1e3:
        return f"{t_us / 1e3:.3g}ms"
    return f"{t_us:.3g}us"
