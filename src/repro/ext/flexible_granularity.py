"""Flexible allocation-granularity sweeps (paper Section VI-B).

"Addressing allocation granularity, 2MB blocks may be too coarse for
allocations and evictions for irregular applications ... This allocation
size can lead to many evictions and inefficient use of GPU memory."

The whole stack is parameterized on the VABlock size (the density tree
depth, big-page upgrade, PMA accounting, and eviction granule all
follow), so this module just sweeps it for an irregular, oversubscribed
workload and reports the transfer amplification and eviction volume -
quantifying exactly the paper's hypothesis that finer granules tame the
random-access eviction blow-up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.experiments.runner import ExperimentSetup, simulate
from repro.trace.export import render_series
from repro.units import KiB, MiB, human_size
from repro.workloads.synthetic import RandomAccess

DEFAULT_GRANULES: tuple[int, ...] = (256 * KiB, 512 * KiB, 1 * MiB, 2 * MiB)


@dataclass
class GranularityRow:
    vablock_bytes: int
    total_time_us: float
    evictions: int
    pages_evicted: int
    transferred_bytes: int
    data_bytes: int

    @property
    def amplification(self) -> float:
        return self.transferred_bytes / self.data_bytes if self.data_bytes else 0.0


@dataclass
class GranularityResult:
    oversubscription: float
    rows: list[GranularityRow] = field(default_factory=list)

    def render(self) -> str:
        table = [
            (
                human_size(r.vablock_bytes),
                r.total_time_us,
                r.evictions,
                r.pages_evicted,
                f"{r.amplification:.1f}x",
            )
            for r in self.rows
        ]
        return render_series(
            table,
            headers=("VABlock", "time(us)", "evictions", "pages evicted", "bytes moved"),
            title=(
                "Granularity ablation - random access at "
                f"{self.oversubscription:.0%} oversubscription"
            ),
        )


def run_granularity_ablation(
    setup: Optional[ExperimentSetup] = None,
    granules: Sequence[int] = DEFAULT_GRANULES,
    oversubscription: float = 1.25,
) -> GranularityResult:
    """Sweep the allocation granule for oversubscribed random access."""
    from dataclasses import replace

    base = setup or ExperimentSetup().with_gpu(memory_bytes=64 * MiB)
    data_bytes = int(base.gpu.memory_bytes * oversubscription)
    result = GranularityResult(oversubscription=oversubscription)
    for granule in granules:
        cfg = replace(base, vablock_bytes=granule)
        run = simulate(RandomAccess(data_bytes), cfg)
        result.rows.append(
            GranularityRow(
                vablock_bytes=granule,
                total_time_us=run.total_time_ns / 1000.0,
                evictions=run.evictions,
                pages_evicted=run.pages_evicted,
                transferred_bytes=run.dma.total_bytes,
                data_bytes=data_bytes,
            )
        )
    return result
