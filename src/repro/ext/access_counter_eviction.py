"""GPU memory-access-aware eviction (paper Section VI-B).

The stock LRU's pathology: "data that is accessed on the GPU but does
not cause a page fault ... will not upgrade its location in the LRU
list", so "the hottest data will theoretically be migrated to the GPU
the fastest, after which it will descend to the bottom of the list
towards eventual eviction."

"NVIDIA has included support for multiple-granularity access counters
for GPU-level memory access on GPUs since the Volta architecture ...
This is an interesting feature that is not currently being utilized but
could potentially be used for smarter and more effective eviction."

This policy is that utilization: the simulated device counts *all*
accesses per VABlock (not just faulting ones), and the victim is the
backed block with the fewest accesses since it last became a candidate.
It exposes the same interface as
:class:`~repro.core.eviction.LruEvictionPolicy`, so the driver swaps it
in via ``DriverConfig(eviction_policy="access_counter")``.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.errors import OutOfDeviceMemoryError, SimulationError


class AccessCounterEviction:
    """Evicts the coldest backed VABlock by device access counters."""

    def __init__(self, access_counters: np.ndarray, protect_window: int = 48) -> None:
        if access_counters is None:
            raise SimulationError("access counters are not being tracked")
        self.access_counters = access_counters
        #: counter snapshot at the time each block became backed, so the
        #: temperature is accesses *since residency*, not lifetime.
        self._baseline: dict[int, int] = {}
        #: insertion sequence per block: freshly backed blocks have had
        #: no chance to accumulate accesses, so the newest
        #: ``protect_window`` insertions are protected from victimhood
        #: (otherwise the policy evicts every allocation before first
        #: use - the exact evict-before-use pathology it should cure).
        self._inserted_at: dict[int, int] = {}
        self._seq = 0
        self.protect_window = protect_window
        self.promotions = 0  # interface parity; fault promotions are moot
        self.insertions = 0
        self.removals = 0

    def __len__(self) -> int:
        return len(self._baseline)

    def __contains__(self, vablock_id: int) -> bool:
        return vablock_id in self._baseline

    def insert(self, vablock_id: int) -> None:
        if vablock_id in self._baseline:
            raise SimulationError(f"VABlock {vablock_id} already tracked")
        self._baseline[vablock_id] = int(self.access_counters[vablock_id])
        self._inserted_at[vablock_id] = self._seq
        self._seq += 1
        self.insertions += 1

    def touch(self, vablock_id: int) -> None:
        """Fault-driven promotion is a no-op: temperature comes from the
        hardware counters, which is the whole point."""
        if vablock_id not in self._baseline:
            raise SimulationError(f"touch of untracked VABlock {vablock_id}")
        self.promotions += 1

    def remove(self, vablock_id: int) -> None:
        if vablock_id not in self._baseline:
            raise SimulationError(f"remove of untracked VABlock {vablock_id}")
        del self._baseline[vablock_id]
        del self._inserted_at[vablock_id]
        self.removals += 1

    def temperature(self, vablock_id: int) -> int:
        """Accesses observed since the block became resident."""
        return int(self.access_counters[vablock_id]) - self._baseline[vablock_id]

    def select_victim(self, exclude: Iterable[int] = ()) -> Optional[int]:
        excluded = set(exclude)
        protected_after = self._seq - self.protect_window
        best: Optional[int] = None
        best_key = None
        fallback: Optional[int] = None
        fallback_key = None
        for vb, inserted in self._inserted_at.items():
            if vb in excluded:
                continue
            # coldest first; ties break toward the oldest insertion,
            # degrading gracefully to LRU when counters are uninformative.
            key = (self.temperature(vb), inserted)
            if inserted < protected_after:
                if best_key is None or key < best_key:
                    best, best_key = vb, key
            elif fallback_key is None or key < fallback_key:
                fallback, fallback_key = vb, key
        return best if best is not None else fallback

    def evict_victim(self, exclude: Iterable[int] = ()) -> int:
        victim = self.select_victim(exclude)
        if victim is None:
            raise OutOfDeviceMemoryError(
                "no evictable VABlock: device memory exhausted by pinned blocks"
            )
        self.remove(victim)
        return victim

    def order(self) -> list[int]:
        """Blocks sorted coldest-first (the eviction order)."""
        return sorted(self._baseline, key=self.temperature)
