"""Thrashing detection with the pin-remote remedy.

The real UVM driver ships a thrashing module (``uvm_perf_thrashing.c``)
the paper does not analyze: when a VABlock cycles between eviction and
re-fault too quickly, the driver stops migrating it and instead *pins*
its pages where they are, remote-mapping them to the faulting processor.
That is precisely the remedy for Section V's worst case ("evict and
re-fault is a worst-case performance scenario") - instead of hauling a
2 MB allocation back for a 4 KB touch, the touch crosses the
interconnect.

The detector here is deliberately simple and fault-driven, like the
driver's: a block becomes *thrashing* once it has been evicted
``evict_threshold`` times and its latest re-fault arrives within
``window_ns`` of its last eviction.  Once flagged, subsequent faults on
the block are serviced as remote mappings (no allocation, no migration,
no future eviction).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass
class ThrashingDetector:
    """Per-VABlock evict/re-fault cycle detection."""

    #: evictions of one block before it is eligible for pinning.
    evict_threshold: int = 3
    #: a re-fault within this window of the block's last eviction marks
    #: the cycle as thrashing (simulated ns).
    window_ns: int = 5_000_000

    def __post_init__(self) -> None:
        if self.evict_threshold < 1:
            raise ConfigurationError("evict_threshold must be >= 1")
        if self.window_ns <= 0:
            raise ConfigurationError("window_ns must be positive")
        self._evictions: dict[int, int] = {}
        self._last_evict_ns: dict[int, int] = {}
        self._pinned: set[int] = set()

    @property
    def pinned_blocks(self) -> int:
        return len(self._pinned)

    def record_eviction(self, vablock_id: int, now_ns: int) -> None:
        """The driver evicted ``vablock_id`` at ``now_ns``."""
        self._evictions[vablock_id] = self._evictions.get(vablock_id, 0) + 1
        self._last_evict_ns[vablock_id] = now_ns

    def on_fault(self, vablock_id: int, now_ns: int) -> None:
        """A fault arrived for ``vablock_id``: flag thrashing cycles."""
        if vablock_id in self._pinned:
            return
        count = self._evictions.get(vablock_id, 0)
        if count < self.evict_threshold:
            return
        last = self._last_evict_ns.get(vablock_id)
        if last is not None and now_ns - last <= self.window_ns:
            self._pinned.add(vablock_id)

    def should_pin(self, vablock_id: int) -> bool:
        """Whether faults on this block should be remote-mapped."""
        return vablock_id in self._pinned
