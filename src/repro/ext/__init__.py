"""Implemented extensions: the paper's Section VI-B "potential paths".

Each module realizes one of the improvement directions the paper
sketches, as a drop-in policy against the same driver, so the ablation
benchmarks can quantify the headroom the authors hypothesize:

* :mod:`~repro.ext.access_counter_eviction` - GPU memory-access-aware
  eviction using the Volta access counters the paper notes are unused,
* :mod:`~repro.ext.adaptive_prefetch` - threshold auto-tuning from the
  observed fault/eviction load,
* :mod:`~repro.ext.origin_prefetch` - a per-origin stream prefetcher
  enabled by the "increased fault origin information" the paper asks
  hardware vendors for,
* :mod:`~repro.ext.flexible_granularity` - sweeps of the allocation/
  eviction granule exercising the configurable-VABlock support.
"""

from repro.ext.access_counter_eviction import AccessCounterEviction
from repro.ext.adaptive_prefetch import AdaptiveThresholdController
from repro.ext.counter_migration import CounterMigrationController
from repro.ext.origin_prefetch import OriginStreamPrefetcher
from repro.ext.flexible_granularity import run_granularity_ablation
from repro.ext.thrashing import ThrashingDetector

__all__ = [
    "AccessCounterEviction",
    "AdaptiveThresholdController",
    "CounterMigrationController",
    "OriginStreamPrefetcher",
    "ThrashingDetector",
    "run_granularity_ablation",
]
