"""Access-counter-triggered migration of hot remote pages.

Volta's access counters do more than inform eviction: the real driver
uses **access counter notifications** to migrate pages that the GPU
keeps touching *remotely* (sysmem mappings) into local memory - the
second half of the Section VI-B story ("this information could also
potentially be used for better prefetching inference, assuming the
additional data access and transfer does not have prohibitive
overhead").

The controller watches per-VABlock access counters for blocks holding
remote mappings; when a block accumulates ``promote_threshold`` remote
touches since it was last examined, its remote pages are promoted to
resident local copies (one bulk migration), trading a one-time transfer
for HBM-speed re-touches.  Hysteresis: a block is only promoted once
per ``cooldown`` examinations, so a thrashing-pinned block cannot
ping-pong back and forth with the thrashing detector.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class CounterMigrationController:
    """Promote remote-mapped VABlocks that the GPU keeps touching."""

    #: remote touches of one block between examinations that trigger
    #: promotion (the access-counter notification granularity).
    promote_threshold: int = 2048
    #: examinations to skip after a promotion decision for a block
    #: (hysteresis against pin/promote ping-pong).
    cooldown: int = 4

    def __post_init__(self) -> None:
        if self.promote_threshold < 1:
            raise ConfigurationError("promote_threshold must be >= 1")
        if self.cooldown < 0:
            raise ConfigurationError("cooldown must be >= 0")
        self._baseline: dict[int, int] = {}
        self._cooldown: dict[int, int] = {}
        self.promotions = 0

    def candidates(
        self,
        access_counters: np.ndarray,
        remote_mapped: np.ndarray,
        pages_per_vablock: int,
    ) -> list[int]:
        """VABlocks whose remote traffic since last check earns promotion."""
        remote_per_block = remote_mapped.reshape(-1, pages_per_vablock).sum(axis=1)
        hot: list[int] = []
        for vb in np.flatnonzero(remote_per_block):
            vb = int(vb)
            if self._cooldown.get(vb, 0) > 0:
                self._cooldown[vb] -= 1
                continue
            seen = int(access_counters[vb])
            base = self._baseline.setdefault(vb, seen)
            if seen - base >= self.promote_threshold:
                hot.append(vb)
                self._baseline[vb] = seen
                self._cooldown[vb] = self.cooldown
        return hot

    def note_promotion(self, vablock_id: int) -> None:
        self.promotions += 1
        self._cooldown[vablock_id] = self.cooldown
