"""Adaptive prefetch-threshold tuning (paper Section VI-B).

"For allocation sizes under the GPU memory limitations, there is little
reason not to use highly aggressive prefetching to emulate the direct
transfer.  In contrast, oversubscribed sizes could disable prefetching
entirely, or infer from the fault/eviction load how effective
prefetching is and tune the prefetching threshold accordingly."

The controller watches the driver's counters between service passes:

* no evictions observed -> drive the threshold down toward
  ``aggressive_threshold`` (default 1: fetch whole VABlocks eagerly),
* eviction pressure -> drive it up toward ``conservative_threshold``
  (default 100: effectively big-page-upgrade-only prefetching),

with hysteresis so a single eviction burst does not whipsaw the policy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import counters as C
from repro.errors import ConfigurationError
from repro.sim.stats import CounterSet


@dataclass
class AdaptiveThresholdController:
    """Eviction-pressure-driven density-threshold controller."""

    initial_threshold: int = 51
    aggressive_threshold: int = 1
    conservative_threshold: int = 100
    #: managed-allocation footprint as a fraction of device memory.  The
    #: driver knows every ``cudaMallocManaged`` size up front, and the
    #: paper's own heuristic keys on it: "for allocation sizes under the
    #: GPU memory limitations, there is little reason not to use highly
    #: aggressive prefetching...  In contrast, oversubscribed sizes could
    #: disable prefetching entirely" (Section VI-B).
    managed_fraction: float = 0.0
    #: footprint fraction beyond which aggression is ruled out a priori.
    footprint_guard: float = 0.95
    #: evictions per observation window that count as "pressure".
    pressure_evictions: int = 1
    #: device-memory fill fraction beyond which aggression is reckless
    #: even before the first eviction lands.
    capacity_guard: float = 0.85
    #: threshold step per quiet observation (descent toward aggression;
    #: pressure jumps straight to conservative - asymmetric on purpose
    #: so one bad window ends the aggression immediately while
    #: re-earning it takes sustained quiet).
    step_down: int = 25

    def __post_init__(self) -> None:
        for name in ("initial_threshold", "aggressive_threshold", "conservative_threshold"):
            value = getattr(self, name)
            if not 1 <= value <= 100:
                raise ConfigurationError(f"{name} must be in 1..100, got {value}")
        self.threshold = self.initial_threshold
        self._last_evictions = 0
        self.adjustments: list[int] = []

    @property
    def prefetch_conservative(self) -> bool:
        """True when the controller has backed off to big-page-only."""
        return self.threshold >= self.conservative_threshold

    def observe(self, counters: CounterSet, used_fraction: float = 0.0) -> int:
        """Update from cumulative counters; returns the new threshold.

        ``used_fraction`` is the device-memory fill level: nearing
        capacity is treated as pressure even before evictions start, so
        the warm-up phase of an oversubscribed run never goes aggressive.
        """
        evictions = counters[C.EVICTIONS]
        window_evictions = evictions - self._last_evictions
        self._last_evictions = evictions
        pressure = (
            window_evictions >= self.pressure_evictions
            or used_fraction >= self.capacity_guard
            or self.managed_fraction >= self.footprint_guard
        )
        if pressure:
            self.threshold = self.conservative_threshold
        else:
            self.threshold = max(
                self.threshold - self.step_down, self.aggressive_threshold
            )
        self.adjustments.append(self.threshold)
        return self.threshold
