"""Fault-origin stream prefetching (paper Section VI-B).

"Another level of information that offers SM ID, logical thread ID, or
related information sufficient to pinpoint a specific area of execution
... could open the door for existing prefetching methods from
literature."

This what-if predictor assumes that richer hardware: each fault carries
its originating stream (the simulator's ground truth, which the stock
driver policies never read).  A classic stride detector runs per origin:
when an origin's successive faulted pages advance by a stable stride,
the predictor fetches ``depth`` strides ahead (clamped to the serviced
VABlock, since physical backing is per-block).

It deliberately has *no* density stage, so comparing it against the
tree prefetcher isolates what origin information alone buys: precise
per-stream lead, but no block-saturation inference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class _OriginState:
    last_page: int
    stride: int = 0
    confirmations: int = 0


class OriginStreamPrefetcher:
    """Per-origin stride detection over the fault stream."""

    def __init__(
        self,
        pages_per_big_page: int = 16,
        depth: int = 8,
        min_confirmations: int = 1,
        max_origins: int = 65536,
    ) -> None:
        if depth < 1:
            raise ConfigurationError("depth must be >= 1")
        if min_confirmations < 1:
            raise ConfigurationError("min_confirmations must be >= 1")
        self.pages_per_big_page = pages_per_big_page
        self.depth = depth
        self.min_confirmations = min_confirmations
        self.max_origins = max_origins
        self._origins: dict[int, _OriginState] = {}
        self.predictions = 0

    def _observe(self, origin: int, page: int) -> _OriginState:
        state = self._origins.get(origin)
        if state is None:
            if len(self._origins) >= self.max_origins:
                self._origins.clear()  # crude table reset under pressure
            state = _OriginState(last_page=page)
            self._origins[origin] = state
            return state
        stride = page - state.last_page
        if stride != 0 and stride == state.stride:
            state.confirmations += 1
        else:
            state.stride = stride
            state.confirmations = 0 if stride == 0 else 1
        state.last_page = page
        return state

    def prefetch_pages(self, residency, vbin) -> np.ndarray:
        """Predict ahead for each origin with a confirmed stride.

        The origin is the faulting SM: the granularity Section VI-B says
        the hardware could plausibly expose ("SM ID, logical thread ID,
        or related information sufficient to pinpoint a specific area of
        execution").
        """
        start, stop = residency.space.page_span_of_vablock(vbin.vablock_id)
        predicted: set[int] = set()
        demand = set(int(p) for p in vbin.pages)
        for page, origin in zip(vbin.pages, vbin.sm_ids):
            state = self._observe(int(origin), int(page))
            if state.stride == 0 or state.confirmations < self.min_confirmations:
                continue
            for k in range(1, self.depth + 1):
                target = int(page) + k * state.stride
                if not start <= target < stop:
                    break  # backing is per-VABlock; stop at the edge
                if target in demand or residency.resident[target]:
                    continue
                predicted.add(target)
        self.predictions += len(predicted)
        return np.array(sorted(predicted), dtype=np.int64)
