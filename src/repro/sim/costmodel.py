"""Calibrated latency model for UVM driver operations.

The paper instruments the open-source UVM driver on a Titan V and reports
wall-clock costs; we have no GPU, so each primitive operation gets a
latency constant calibrated against the paper's published anchors:

* an isolated far-fault costs 30-45 us end to end (Section I, citing
  Zheng et al. and confirmed by the authors' instrumentation),
* UVM shows a 400-600 us floor for sub-100 KB data (Section III-C),
* PMA allocation is "a call into the proprietary NVIDIA driver" whose
  cost is high but amortized by over-allocation caching (Section III-D),
* un-prefetched UVM achieves roughly an order of magnitude less effective
  bandwidth than explicit ``cudaMemcpy`` (Fig. 1),
* replays and buffer flushes are the dominant *policy* costs for random
  access (Fig. 3 vs Fig. 5).

Counts of operations (faults, batches, transfers, evictions) come from the
mechanism simulation and are exact; only these per-operation latencies are
modelled.  All values are integer nanoseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError
from repro.units import GiB, KiB, MiB, PAGE_SIZE, US


@dataclass(frozen=True)
class CostModel:
    """Per-operation simulated latencies (ns) and interconnect parameters."""

    # -- session-level -------------------------------------------------------
    #: One-time cost of the first GPU->host fault interrupt path: channel
    #: setup, ISR registration warm-up, first driver wakeup.  Produces the
    #: 400-600 us floor the paper observes for tiny data sizes.
    session_base_ns: int = 320_000

    #: Driver wakeup for a fault-service pass (interrupt + kernel scheduling).
    driver_wakeup_ns: int = 9_000

    # -- pre/post-processing (Section III-C) ----------------------------------
    #: Fixed cost to read the fault-pointer queue head state for a batch.
    batch_fetch_fixed_ns: int = 3_000

    #: Per-fault cost to read a fault entry out of the GPU fault buffer
    #: over the interconnect and cache it on the host.
    fault_read_ns: int = 320

    #: Poll iteration when a fault entry's "ready" flag is not yet set.
    fault_poll_ns: int = 900

    #: Fixed + per-fault cost of sorting/binning a batch into VABlock bins
    #: ("sorting cost for batches is roughly constant due to the nature of
    #: sorting and the relatively small size of batches").
    sort_fixed_ns: int = 2_500
    sort_per_fault_ns: int = 18

    #: Bookkeeping/logical checks per fault during preprocessing, including
    #: duplicate detection.
    preprocess_per_fault_ns: int = 110

    # -- fault servicing (Section III-D) --------------------------------------
    #: A call into the proprietary driver's physical memory allocator.
    #: Expensive and latency-sensitive; the PMA over-allocates to cache
    #: physical memory precisely because of this cost.
    pma_call_ns: int = 26_000

    #: Bytes reserved per PMA call (over-allocation cache refill size).
    pma_chunk_bytes: int = 32 * MiB

    #: Zeroing a newly allocated 4 KB GPU page.
    zero_page_ns: int = 70

    #: Host-side staging copy per 4 KB page before DMA.
    stage_page_ns: int = 140

    #: Per-fault fixed service cost: permission checks, page-state walks,
    #: residency updates, duplicate-service filtering.  Charged for
    #: demand-faulted pages only; prefetched pages ride the same staging
    #: chunks with per-page costs alone.
    service_per_fault_ns: int = 2_600

    #: Launching one DMA transfer (command submission + doorbell + setup).
    dma_setup_ns: int = 5_500

    #: Host-device interconnect bandwidth in bytes/second (PCIe 3.0 x16
    #: effective ~12 GB/s, the paper's platform).
    interconnect_bytes_per_s: int = 12_000_000_000

    #: Page-table update per 4 KB page (PTE write + bookkeeping).
    map_page_ns: int = 120

    #: Fixed per-VABlock mapping cost: page-directory touch, lock
    #: acquisition, consistency bookkeeping.
    map_vablock_fixed_ns: int = 1_400

    #: GPU TLB invalidate issued per VABlock mapping change.
    tlb_invalidate_ns: int = 2_400

    #: GPU membar to publish mappings (issued once per service pass over a
    #: VABlock).
    membar_ns: int = 2_800

    #: Unmapping a page during eviction or migration unmap-from-source.
    unmap_page_ns: int = 95

    # -- replay policy (Section III-E) ----------------------------------------
    #: Issuing one replay notification to the GPU.
    replay_issue_ns: int = 14_000

    #: Fixed + per-entry cost of flushing the hardware fault buffer
    #: (remote queue management; the batch-flush policy pays this).
    flush_fixed_ns: int = 7_000
    flush_per_entry_ns: int = 160

    #: Latency before a replay notification takes effect on the SMs.
    replay_delivery_ns: int = 2_000

    # -- eviction (Section V-A) ------------------------------------------------
    #: Fixed cost per VABlock eviction: LRU unlink, lock drop/retake dance
    #: that restarts the faulting path, allocation release.
    evict_fixed_ns: int = 9_500

    # -- CPU-side fault path ------------------------------------------------------
    #: Handling one host page fault on GPU-resident data (Linux fault ->
    #: UVM vm_ops -> migrate): charged per faulted 64 KB region, the
    #: granularity the driver migrates back at.  This is the ping-pong
    #: path naive UVM ports hit when the host inspects results between
    #: kernel launches.
    host_fault_group_ns: int = 9_000

    # -- remote (zero-copy) mapping ---------------------------------------------------
    #: Effective bandwidth of GPU accesses to remote-mapped host memory
    #: (Section III-A's "remote mapping" behaviour).  Zero-copy achieves
    #: roughly half the link's streaming rate; traffic is charged here
    #: instead of migrating pages.
    remote_access_bytes_per_s: int = 6_000_000_000

    #: Bytes that actually cross the link per remote page *touch*: unlike
    #: migration (always a full 4 KB page), zero-copy moves only the
    #: coalesced cachelines the warp requests - the key to EMOGI-style
    #: wins on sparse out-of-core access.
    remote_touch_bytes: int = 1_024

    # -- explicit-transfer baseline (Fig. 1) ------------------------------------
    #: cudaMemcpy launch overhead per call.
    memcpy_setup_ns: int = 9_000

    #: Effective explicit-copy bandwidth (pinned-ish staging path).
    memcpy_bytes_per_s: int = 12_000_000_000

    # -- GPU-side compute ---------------------------------------------------------
    #: Compute cost per page-touch access once data is resident.  Small:
    #: the paper's page-touch kernels are bandwidth/fault-bound.
    access_ns: int = 25

    def __post_init__(self) -> None:
        for name in (
            "session_base_ns",
            "interconnect_bytes_per_s",
            "memcpy_bytes_per_s",
            "pma_chunk_bytes",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"CostModel.{name} must be positive")
        if self.pma_chunk_bytes % PAGE_SIZE:
            raise ConfigurationError("pma_chunk_bytes must be page aligned")

    # -- composite helpers ------------------------------------------------------
    def transfer_ns(self, nbytes: int) -> int:
        """DMA wire time for ``nbytes`` (excluding per-transfer setup)."""
        if nbytes < 0:
            raise ConfigurationError(f"negative transfer size {nbytes}")
        return round(nbytes * 1e9 / self.interconnect_bytes_per_s)

    def dma_transfer_ns(self, nbytes: int, transfers: int = 1) -> int:
        """Setup plus wire time for moving ``nbytes`` in ``transfers`` ops."""
        if transfers <= 0:
            raise ConfigurationError(f"transfers must be >= 1, got {transfers}")
        return transfers * self.dma_setup_ns + self.transfer_ns(nbytes)

    def explicit_copy_ns(self, nbytes: int, calls: int = 1) -> int:
        """Cost of an explicit (``cudaMemcpy``-style) transfer baseline."""
        if calls <= 0:
            raise ConfigurationError(f"calls must be >= 1, got {calls}")
        return calls * self.memcpy_setup_ns + round(
            nbytes * 1e9 / self.memcpy_bytes_per_s
        )

    def isolated_fault_estimate_ns(self) -> int:
        """Back-of-envelope latency of a single isolated 4 KB far-fault.

        Used by calibration tests to keep defaults inside the paper's
        30-45 us anchor band (PMA cached, one-page batch).
        """
        return (
            self.driver_wakeup_ns
            + self.batch_fetch_fixed_ns
            + self.fault_read_ns
            + self.sort_fixed_ns
            + self.sort_per_fault_ns
            + self.preprocess_per_fault_ns
            + self.service_per_fault_ns
            + self.zero_page_ns
            + self.stage_page_ns
            + self.dma_transfer_ns(PAGE_SIZE)
            + self.map_vablock_fixed_ns
            + self.map_page_ns
            + self.tlb_invalidate_ns
            + self.membar_ns
            + self.replay_issue_ns
        )

    def with_overrides(self, **kwargs) -> "CostModel":
        """Return a copy with selected constants replaced."""
        return replace(self, **kwargs)


#: Cost model tuned to the paper's Titan V + PCIe 3.0 x16 platform.
TITAN_V_PCIE3 = CostModel()

#: A faster-interconnect what-if (NVLink-class, Section II mentions the
#: Power9/NVLink comparison literature).
NVLINK_CLASS = CostModel(
    interconnect_bytes_per_s=45_000_000_000,
    memcpy_bytes_per_s=45_000_000_000,
    dma_setup_ns=3_500,
)
